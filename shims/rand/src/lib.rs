//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins no network registry, so the handful of `rand`
//! APIs the benchmarks and tests consume are vendored here: a seeded
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), the
//! [`SeedableRng`] constructor trait, and [`RngExt::random_range`] over
//! primitive integer ranges. Streams are deterministic per seed, which
//! is exactly what the workload generators require for reproducibility.

#![warn(missing_docs)]

use core::ops::Range;

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "empty range in random_range");
                let span = (high - low) as u128;
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "empty range in random_range");
                let span = (high as i128 - low as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as $u;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`, renamed `RngExt` in rand 0.10).
pub trait RngExt: RngCore {
    /// Uniform draw from `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range.start, range.end, self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Zipf-distributed ranks over `{0, 1, …, n-1}` with skew `theta` in
/// `(0, 1)` — the classic YCSB / Gray et al. "quick zipf" sampler
/// (offline stand-in for `rand_distr::Zipf`).
///
/// Rank 0 is the most popular item; the probability of rank `k` is
/// proportional to `1 / (k + 1)^theta`. Construction is `O(n)` (the
/// harmonic normaliser is precomputed), sampling is `O(1)`. YCSB's
/// default skew is `theta = 0.99`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `theta` (must satisfy
    /// `n > 0` and `0 < theta < 1`).
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta > 0.0 && theta < 1.0,
            "Zipf skew must lie in (0, 1), got {theta}"
        );
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 1.0 / 2f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of ranks the sampler draws from.
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `0..n`, skewed toward 0.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n > 1 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64 —
    /// the drop-in replacement for `rand::rngs::StdRng` in this
    /// workspace (statistical quality is ample for workload shuffling;
    /// nothing here is cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.random_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds_across_types() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(-5..7i64);
            assert!((-5..7).contains(&x));
            let y = rng.random_range(0..3usize);
            assert!(y < 3);
            let z = rng.random_range(10..11u32);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..=12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks_and_stays_in_range() {
        let zipf = super::Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 1000];
        for _ in 0..200_000 {
            let r = zipf.sample(&mut rng) as usize;
            assert!(r < 1000);
            counts[r] += 1;
        }
        // Rank 0 should dominate (~1/zeta ≈ 13% of draws at theta=.99)
        // and the head should vastly outdraw the tail.
        assert!(
            counts[0] > counts[1],
            "head not dominant: {:?}",
            &counts[..4]
        );
        assert!(counts[0] > 10_000, "rank 0 drew only {}", counts[0]);
        // At theta=0.99 the top-10 ranks hold ~40% of the mass while the
        // 500-item tail holds ~9% — a 4× ratio; assert 3× for slack.
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[500..].iter().sum();
        assert!(head > tail * 3, "head={head} tail={tail}");
    }

    #[test]
    fn zipf_deterministic_and_single_rank_ok() {
        let zipf = super::Zipf::new(8, 0.5);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let va: Vec<u64> = (0..64).map(|_| zipf.sample(&mut a)).collect();
        let vb: Vec<u64> = (0..64).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(va, vb);
        let one = super::Zipf::new(1, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..32 {
            assert_eq!(one.sample(&mut rng), 0);
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.8)).count();
        assert!((75_000..=85_000).contains(&hits), "hits={hits}");
    }
}
