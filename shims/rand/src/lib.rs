//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins no network registry, so the handful of `rand`
//! APIs the benchmarks and tests consume are vendored here: a seeded
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), the
//! [`SeedableRng`] constructor trait, and [`RngExt::random_range`] over
//! primitive integer ranges. Streams are deterministic per seed, which
//! is exactly what the workload generators require for reproducibility.

#![warn(missing_docs)]

use core::ops::Range;

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "empty range in random_range");
                let span = (high - low) as u128;
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "empty range in random_range");
                let span = (high as i128 - low as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as $u;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`, renamed `RngExt` in rand 0.10).
pub trait RngExt: RngCore {
    /// Uniform draw from `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range.start, range.end, self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64 —
    /// the drop-in replacement for `rand::rngs::StdRng` in this
    /// workspace (statistical quality is ample for workload shuffling;
    /// nothing here is cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.random_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds_across_types() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(-5..7i64);
            assert!((-5..7).contains(&x));
            let y = rng.random_range(0..3usize);
            assert!(y < 3);
            let z = rng.random_range(10..11u32);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..=12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.8)).count();
        assert!((75_000..=85_000).contains(&hits), "hits={hits}");
    }
}
