//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the surface the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]` and
//! `arg in strategy` bindings), [`Strategy`] with `prop_map`, integer
//! [`core::ops::Range`] strategies, tuple strategies up to arity 4,
//! `prop::collection::vec`, `prop::bool::weighted`, and the
//! `prop_assert*` macros.
//!
//! Semantics: each property runs `cases` times over a deterministic
//! PRNG stream (seeded from the property name), so failures are
//! reproducible run-to-run. There is no shrinking — on failure the
//! offending input is printed verbatim and the panic is propagated.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

/// Per-property configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic case generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range in strategy");
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A test-case failure carrying a message (mirrors
/// `proptest::test_runner::TestCaseError` far enough for
/// `map_err(TestCaseError::fail)?` to work).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What a property body returns: `Ok(())` or an explicit failure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident => $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A => 0)
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
    (A => 0, B => 1, C => 2, D => 3, E => 4)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6)
}

/// The `prop::` strategy namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from `len` and
        /// elements drawn from `element`.
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `Vec` strategy: length in `len`, elements from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span.max(1)) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Strategy for `bool` with fixed `true` probability.
        #[derive(Debug)]
        pub struct Weighted {
            p: f64,
        }

        /// `true` with probability `p`.
        pub fn weighted(p: f64) -> Weighted {
            Weighted { p }
        }

        impl Strategy for Weighted {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.unit_f64() < self.p
            }
        }
    }
}

/// Runs `body` over `config.cases` random draws from `strategy`,
/// printing the failing input (and its case number) before propagating
/// any panic. The seed is derived from `name`, so a given property sees
/// the same stream on every run.
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: S,
    mut body: impl FnMut(S::Value) -> TestCaseResult,
) {
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    let mut rng = TestRng::new(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(failure)) => {
                panic!(
                    "proptest case {case}/{} of `{name}` failed: {failure}\ninput: {repr}",
                    config.cases
                );
            }
            Err(panic) => {
                eprintln!(
                    "proptest case {case}/{} of `{name}` failed for input: {repr}",
                    config.cases
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// The proptest entry-point macro: wraps each `#[test] fn name(arg in
/// strategy, ..) { .. }` item in a runner over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[doc = $doc:expr])* #[test] fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config = $cfg;
                $crate::run_cases(
                    &config,
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..10u8, y in -5..5i64) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec((0..3u8, 0..4i64), 0..12)) {
            prop_assert!(v.len() < 12);
            for (a, b) in v {
                prop_assert!(a < 3);
                prop_assert!((0..4).contains(&b));
            }
        }

        #[test]
        fn prop_map_applies(s in (0..5u8).prop_map(|n| n as usize * 2)) {
            prop_assert!(s % 2 == 0 && s < 10);
        }
    }

    #[test]
    fn weighted_bool_is_biased() {
        let strat = prop::bool::weighted(0.9);
        let mut rng = crate::TestRng::new(1);
        let hits = (0..10_000).filter(|_| strat.generate(&mut rng)).count();
        assert!((8_500..=9_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::TestRng::new(5);
        let mut b = crate::TestRng::new(5);
        let strat = prop::collection::vec(0..100u32, 0..20);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
