//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock bench harness covering the API subset the
//! workspace's benches consume: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark runs `sample_size`
//! timed samples after one warm-up and prints min/mean/max (plus
//! elements-per-second when a throughput was declared). No statistics
//! beyond that — the workspace's experiment *binaries* are the
//! measurement surface of record; these benches are smoke-level.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves.
pub use std::hint::black_box;

/// Declared throughput of one benchmark, for ops/s reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs the timed routine and collects per-sample durations.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample (after one untimed warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn report(name: &str, durations: &[Duration], throughput: Option<Throughput>) {
    if durations.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>10.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!(
                "  {:>10.3} MiB/s",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("bench {name:<40} min {min:>12?}  mean {mean:>12?}  max {max:>12?}{rate}",);
}

/// The bench harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        report(name, &b.durations, None);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            durations: Vec::new(),
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.durations,
            self.throughput,
        );
        self
    }

    /// Closes the group (reporting is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a bench group function from config + target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `fn main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("shim/plain", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = tiny
    }

    #[test]
    fn harness_runs_and_samples() {
        group();
        let mut b = Bencher {
            samples: 4,
            durations: Vec::new(),
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.durations.len(), 4);
    }
}
