//! Step-by-step replay of the Theorem 6.1 construction (Figure 1),
//! narrated, for one scheme of your choice.
//!
//! Run with: `cargo run --example theorem_replay [EBR|HP|HE|IBR|VBR|NBR|Leak]`
//! (default: HP, the most instructive failure).

use era::core::ids::ThreadId;
use era::sim::schemes::{SimEbr, SimHe, SimHp, SimIbr, SimLeak, SimNbr, SimScheme, SimVbr};
use era::sim::{HarrisSim, OpKind};

fn scheme_by_name(name: &str) -> Box<dyn SimScheme> {
    match name {
        "EBR" => Box::new(SimEbr::new(2)),
        "HP" => Box::new(SimHp::new(2, 3)),
        "HE" => Box::new(SimHe::new(2, 3)),
        "IBR" => Box::new(SimIbr::new(2)),
        "VBR" => Box::new(SimVbr::new()),
        "NBR" => Box::new(SimNbr::new(2, 1)),
        "Leak" => Box::new(SimLeak),
        other => panic!("unknown scheme {other}"),
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "HP".to_string());
    let scheme = scheme_by_name(&name);
    println!("== Theorem 6.1 construction, narrated, scheme = {name} ==\n");

    let t1 = ThreadId(0);
    let t2 = ThreadId(1);
    let mut sim = HarrisSim::new(scheme);

    println!("stage a: T2 builds the list {{1, 2}}");
    assert!(sim.run_op(t2, OpKind::Insert(1)));
    assert!(sim.run_op(t2, OpKind::Insert(2)));
    let s = sim.sim.heap.sample();
    println!("         active={} retired={}\n", s.active, s.retired);

    println!("T1 invokes delete(3) and pauses right after reading head.next");
    let mut op1 = sim.start_op(t1, OpKind::Delete(3));
    for _ in 0..3 {
        sim.step(&mut op1);
    }
    println!(
        "         T1 now stands on node {:?}\n",
        sim.current_target(&op1)
    );

    println!("stages b–c: T2 runs delete(1)");
    assert!(sim.run_op(t2, OpKind::Delete(1)));
    let s = sim.sim.heap.sample();
    println!("         active={} retired={}\n", s.active, s.retired);

    println!("stages d+: T2 alternates insert(n+1); delete(n) for 40 rounds");
    for (round, n) in (2i64..42).enumerate() {
        assert!(sim.run_op(t2, OpKind::Insert(n + 1)));
        assert!(sim.run_op(t2, OpKind::Delete(n)));
        if round % 10 == 9 {
            let s = sim.sim.heap.sample();
            println!(
                "         round {:>2}: active={} max_active={} retired={}",
                round + 1,
                s.active,
                s.max_active,
                s.retired
            );
        }
    }

    println!("\nsolo run: T1 is now the only effective thread");
    let mut steps = 0usize;
    loop {
        steps += 1;
        if sim.step(&mut op1) {
            println!(
                "         T1 completed after {steps} solo steps, result {:?}",
                op1.result()
            );
            break;
        }
        if !sim.sim.heap.verdict().is_smr() {
            println!("         after {steps} solo steps the oracle reports:");
            for v in &sim.sim.heap.verdict().violations {
                println!("           VIOLATION: {v}");
            }
            break;
        }
        if steps > 1_000_000 {
            println!("         (budget exhausted)");
            break;
        }
    }

    let verdict = sim.sim.heap.verdict();
    let s = sim.sim.heap.sample();
    println!("\nsummary for {name}:");
    println!("  unsafe accesses : {}", verdict.unsafe_accesses.len());
    println!("  violations      : {}", verdict.violations.len());
    println!("  rollbacks       : {}", sim.sim.monitor.rollbacks());
    println!("  retired now     : {}", s.retired);
    println!(
        "  sacrificed      : {}",
        if !verdict.violations.is_empty() {
            "wide applicability (unsafe on Harris's list)"
        } else if sim.sim.monitor.rollbacks() > 0 {
            "easy integration (rollbacks required)"
        } else {
            "robustness (retired nodes unbounded)"
        }
    );
}
