//! RCU-style usage: quiescent-state-based reclamation (QSBR).
//!
//! QSBR has the lowest per-operation overhead of any scheme here — no
//! begin/end barriers at all — but the application must announce
//! *quiescent points* (moments a thread holds no shared references)
//! itself. That placement is an arbitrary-code-location insertion, so
//! by Definition 5.3 QSBR is **not** easily integrated; and a thread
//! that stops announcing blocks all reclamation, so it is **not**
//! robust. It keeps only wide applicability — a corner of the ERA
//! triangle with a single property, showing the theorem is an upper
//! bound, not a guarantee of two.
//!
//! Run with: `cargo run --release --example rcu_style`

use era::ds::HarrisList;
use era::smr::common::Smr;
use era::smr::qsbr::Qsbr;

fn main() {
    let smr = Qsbr::with_threshold(8, 32);
    let list = HarrisList::new(&smr);

    std::thread::scope(|s| {
        for t in 0..4i64 {
            let (list, smr) = (&list, &smr);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                let base = t * 500;
                for k in base..base + 500 {
                    assert!(list.insert(&mut ctx, k));
                    assert!(list.delete(&mut ctx, k));
                    // The RCU discipline: announce quiescence at the
                    // application's own "between requests" points.
                    if k % 16 == 0 {
                        smr.quiescent(&mut ctx);
                    }
                }
                smr.quiescent(&mut ctx);
                smr.flush(&mut ctx);
            });
        }
    });

    let mut ctx = smr.register().unwrap();
    for _ in 0..4 {
        smr.quiescent(&mut ctx);
        smr.flush(&mut ctx);
    }
    let st = smr.stats();
    println!("grace period   : {}", smr.grace_period());
    println!("reclamation    : {st}");
    assert_eq!(st.total_retired, 2_000);
    assert_eq!(st.retired_now, 0, "everything drained at quiescence");
    println!(
        "rcu_style OK — zero per-op barriers, at the price of hand-placed \
         quiescent points (not easy) and stall sensitivity (not robust)"
    );
}
