//! The robustness trade-off, live: what one stalled thread does to each
//! reclamation scheme's memory footprint (§5.1, Definitions 5.1/5.2).
//!
//! A reader pins its scheme's protection unit (EBR: the announced
//! epoch; HP: a hazard slot; HE/IBR: an era) and goes to sleep; a
//! worker churns nodes through a Michael list. Watch the retired
//! population: EBR grows without bound, the protect-based schemes stay
//! flat.
//!
//! Run with: `cargo run --release --example stalled_thread`

use era::smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr};
use era_bench_shim::stall_churn;

// The experiment lives in era-bench; examples are self-contained, so a
// tiny local copy keeps this runnable without dev-dependencies.
mod era_bench_shim {
    use era::ds::MichaelList;
    use era::smr::common::Smr;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    pub fn stall_churn<S: Smr + Sync>(smr: &S, churn: usize) -> (Vec<usize>, usize) {
        let list = MichaelList::new(smr);
        {
            let mut ctx = smr.register().unwrap();
            for k in 0..128 {
                list.insert(&mut ctx, k);
            }
        }
        let stalled = AtomicBool::new(true);
        let pinned = AtomicBool::new(false);
        let done = AtomicBool::new(false);
        let dummy = AtomicUsize::new(0);
        let mut series = Vec::new();
        let mut final_retired = 0;
        std::thread::scope(|s| {
            let (stalled, pinned, done, dummy) = (&stalled, &pinned, &done, &dummy);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                smr.begin_op(&mut ctx);
                let _ = smr.load(&mut ctx, 0, dummy); // pin
                pinned.store(true, Ordering::SeqCst);
                while stalled.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                smr.end_op(&mut ctx);
                done.store(true, Ordering::SeqCst);
            });
            while !pinned.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            let mut ctx = smr.register().unwrap();
            for i in 0..churn {
                let k = 1_000 + (i % 64) as i64;
                let _ = list.insert(&mut ctx, k);
                let _ = list.delete(&mut ctx, k);
                if i % (churn / 8).max(1) == 0 {
                    series.push(smr.stats().retired_now);
                }
            }
            stalled.store(false, Ordering::SeqCst);
            while !done.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            for _ in 0..8 {
                smr.flush(&mut ctx);
            }
            final_retired = smr.stats().retired_now;
        });
        (series, final_retired)
    }
}

fn main() {
    const CHURN: usize = 50_000;
    println!("retired-node population while one reader is stalled mid-operation");
    println!("({CHURN} insert/delete pairs of churn)\n");
    println!("{:<6} {:<60} after unstall", "scheme", "retired over time");

    let ebr = Ebr::with_threshold(4, 16);
    report("EBR", stall_churn(&ebr, CHURN));
    let hp = Hp::with_threshold(4, 3, 16);
    report("HP", stall_churn(&hp, CHURN));
    let he = He::with_params(4, 3, 16, 8);
    report("HE", stall_churn(&he, CHURN));
    let ibr = Ibr::with_params(4, 16, 8);
    report("IBR", stall_churn(&ibr, CHURN));

    println!(
        "\nEBR bought its strong applicability with exactly this failure \
         mode — the ERA theorem says some trade-off like it is unavoidable."
    );
}

fn report(name: &str, (series, final_retired): (Vec<usize>, usize)) {
    let s: Vec<String> = series.iter().map(|v| v.to_string()).collect();
    println!("{:<6} {:<60} {}", name, s.join(" → "), final_retired);
}
