//! A realistic scenario: a concurrent membership cache.
//!
//! The motivating workload from the paper's introduction — a service
//! keeps a hot set of keys (sessions, rate-limit buckets, …) that many
//! threads probe while a few mutate. The cache must not exhaust memory
//! even if a reader thread gets descheduled for a long time, so the
//! reclamation scheme's robustness is a *production* requirement, not a
//! theoretical nicety.
//!
//! We build the cache on Michael's hash set with hazard pointers (the
//! easy + robust corner of the ERA triangle: we gave up Harris-style
//! traversal, i.e. wide applicability) and demonstrate both the
//! workload and the bounded footprint under a stalled reader.
//!
//! Run with: `cargo run --release --example kv_cache`

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use era::ds::HashSet;
use era::smr::common::Smr;
use era::smr::hp::Hp;

const READERS: usize = 4;
const WRITERS: usize = 2;
const OPS: usize = 50_000;
const KEYS: i64 = 4_096;

fn main() {
    let smr = Hp::with_threshold(READERS + WRITERS + 2, 3, 64);
    let cache = HashSet::new(&smr, 256);

    // Warm the cache.
    {
        let mut ctx = smr.register().unwrap();
        for k in (0..KEYS).step_by(2) {
            cache.insert(&mut ctx, k);
        }
    }

    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);
    let stalled = AtomicBool::new(true);

    std::thread::scope(|s| {
        // A "stuck" reader: begins an operation, protects a node, and
        // sleeps — the situation that makes EBR-based caches balloon.
        {
            let (smr, stalled) = (&smr, &stalled);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                smr.begin_op(&mut ctx);
                let dummy = AtomicUsize::new(0);
                let _ = smr.load(&mut ctx, 0, &dummy);
                while stalled.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                smr.end_op(&mut ctx);
            });
        }
        for r in 0..READERS {
            let (cache, smr, hits, misses) = (&cache, &smr, &hits, &misses);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                let mut key = r as i64;
                for _ in 0..OPS {
                    key = (key
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407)
                        >> 33)
                        .rem_euclid(KEYS);
                    if cache.contains(&mut ctx, key) {
                        // SAFETY(ordering): Relaxed — hit/miss tallies,
                        // read after the scope joins every worker.
                        hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for w in 0..WRITERS {
            let (cache, smr) = (&cache, &smr);
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                let mut key = 7_777 + w as i64;
                for i in 0..OPS {
                    key = (key.wrapping_mul(6364136223846793005).wrapping_add(99)).rem_euclid(KEYS);
                    if i % 2 == 0 {
                        let _ = cache.insert(&mut ctx, key);
                    } else {
                        let _ = cache.delete(&mut ctx, key);
                    }
                }
                smr.flush(&mut ctx);
            });
        }
        // Let the workload finish before releasing the stalled reader.
        // (Scope joins the workers; the stalled reader needs the flag.)
        stalled.store(false, Ordering::SeqCst);
    });

    let st = smr.stats();
    println!("cache size      : {}", cache.len());
    println!("reader hits     : {}", hits.load(Ordering::Relaxed));
    println!("reader misses   : {}", misses.load(Ordering::Relaxed));
    println!(
        "retired in-flight: {} (bound: {})",
        st.retired_now,
        smr.robustness_bound()
    );
    println!("total retired   : {}", st.total_retired);
    println!("total reclaimed : {}", st.total_reclaimed);
    assert!(
        st.retired_now <= smr.robustness_bound(),
        "HP's footprint must stay bounded even with a stalled reader"
    );
    println!("kv_cache OK — bounded memory despite the stalled reader");
}
