//! The runtime ERA navigator, live: a stalled reader pins one shard of
//! a sharded key-value store, and the navigator walks that shard
//! through Robust → Degrading → Violating, neutralizes the stalled pin,
//! and brings the footprint back down — while the other shards never
//! notice.
//!
//! Run with: `cargo run --release --example kv_navigator`

use std::sync::atomic::{AtomicBool, Ordering};

use era::kv::{KvConfig, KvStore, ShardHealth};
use era::smr::common::Smr;
use era::smr::ebr::Ebr;

fn main() {
    let schemes: Vec<Ebr> = (0..4).map(|_| Ebr::new(8)).collect();
    let cfg = KvConfig {
        retired_soft: 256,
        retired_hard: 1_024,
        ..KvConfig::default()
    };
    let store = KvStore::new(&schemes, cfg);
    let mut ctx = store.register().unwrap();

    // Find a key routed to shard 0 so the churn below lands there.
    let hot = (0..).find(|&k| store.shard_of(k) == 0).unwrap();
    println!("churning shard 0 (key {hot}) with a reader stalled inside it\n");

    let stop = AtomicBool::new(false);
    let pinned = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (stop, pinned) = (&stop, &pinned);
        let smr = store.scheme(0);
        s.spawn(move || {
            // The stalled reader: pins shard 0's epoch and spins. When
            // the navigator neutralizes it, `needs_restart` fires and
            // the reader restarts its operation — the NBR-style
            // protocol every direct client of a navigated store must
            // follow.
            let mut pin = smr.register().unwrap();
            while !stop.load(Ordering::Acquire) {
                smr.begin_op(&mut pin);
                // SAFETY(ordering): Release — publishes the begin_op
                // above to the main thread's Acquire poll of `pinned`.
                pinned.store(true, Ordering::Release);
                while !stop.load(Ordering::Relaxed) && !smr.needs_restart(&mut pin) {
                    std::hint::spin_loop();
                }
                smr.end_op(&mut pin);
            }
        });
        // Don't start churning until the reader holds its pin, or the
        // whole incident can finish before the stall even begins.
        while !pinned.load(Ordering::Acquire) {
            std::thread::yield_now();
        }

        let mut last = ShardHealth::Robust;
        for round in 0..40 {
            for _ in 0..100 {
                store.put(&mut ctx, hot, round).ok();
                store.remove(&mut ctx, hot).ok();
            }
            store.navigator_tick();
            let health = store.health(0);
            let retired = store.shard_stats()[0].retired_now;
            if health != last {
                let (transitions, neutralizations, _) = store.nav_counters();
                println!(
                    "round {round:>2}: shard 0 {last} -> {health} \
                     (retired {retired}, transitions {transitions}, \
                     neutralized {neutralizations})"
                );
                last = health;
            }
        }
        // SAFETY(ordering): Release — pairs with the pinner's Acquire
        // load of `stop`; everything printed above happens-before exit.
        stop.store(true, Ordering::Release);
    });

    let (transitions, neutralizations, _) = store.nav_counters();
    let healthy: usize = (1..4).map(|i| store.shard_stats()[i].retired_now).sum();
    println!(
        "\nfinal: {transitions} transition(s), {neutralizations} neutralization(s); \
         shards 1-3 retired {healthy} nodes total (untouched by the incident)"
    );
    println!(
        "The navigator holds the Violating shard to a sawtooth bounded by \
         the hard budget, paying with integration burden (the restart \
         protocol) only while — and only where — robustness is under attack."
    );
}
