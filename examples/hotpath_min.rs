//! Min-of-reps single-thread traversal microbenchmark (E9 companion).
//!
//! Measures ns/op for read-heavy searches under EBR/HP/leak across
//! key ranges, with a min-of-many-repetitions estimator: on a shared
//! 1-vCPU host, wall-clock medians swing by ±50% between consecutive
//! runs, but the *minimum* over 31 repetitions tracks the true cost —
//! scheduler noise only ever adds time. EXPERIMENTS.md E9 uses this
//! probe (built identically on both sides, run interleaved A/B) to
//! attribute throughput deltas to the scheme hot paths.
//!
//! Run with: `cargo run --release --example hotpath_min`

use std::time::Instant;

use era::chaos::ChaosSmr;
use era::ds::{HarrisList, MichaelList};
use era::smr::common::{Smr, SupportsUnlinkedTraversal};
use era::smr::ebr::Ebr;
use era::smr::hp::Hp;
use era::smr::leak::Leak;
use era::smr::nbr::Nbr;

const OPS_PER_REP: usize = 100_000;
const REPS: usize = 31;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Times `REPS` repetitions of `OPS_PER_REP` calls to `op` (fed seeded
/// pseudo-random keys in `[lo, lo + span)`) and prints min/p25/median.
fn measure(name: &str, lo: i64, span: i64, mut op: impl FnMut(i64) -> bool) {
    let mut times: Vec<f64> = Vec::with_capacity(REPS);
    let mut sink = 0usize;
    for rep in 0..REPS {
        let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (rep as u64);
        let start = Instant::now();
        for _ in 0..OPS_PER_REP {
            let k = lo + (lcg(&mut rng) % span as u64) as i64;
            sink += op(k) as usize;
        }
        times.push(start.elapsed().as_secs_f64() * 1e9 / OPS_PER_REP as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{name}: min {:.1} ns/op  p25 {:.1}  median {:.1}  (sink {sink})",
        times[0],
        times[REPS / 4],
        times[REPS / 2]
    );
}

fn bench_michael<S: Smr>(name: &str, smr: &S, key_range: i64) {
    let list = MichaelList::new(smr);
    let mut ctx = smr.register().expect("capacity");
    for k in (0..key_range).step_by(2) {
        list.insert(&mut ctx, k);
    }
    measure(name, 0, key_range, |k| list.contains(&mut ctx, k));
}

fn bench_harris<S: Smr + SupportsUnlinkedTraversal>(name: &str, smr: &S, key_range: i64) {
    let list = HarrisList::new(smr);
    let mut ctx = smr.register().expect("capacity");
    for k in (2..key_range).step_by(2) {
        list.insert(&mut ctx, k);
    }
    // Keys start at 1: the Harris sentinels reserve i64::MIN/MAX.
    measure(name, 1, key_range - 1, |k| list.contains(&mut ctx, k));
}

fn main() {
    for kr in [16i64, 32, 64, 128, 1024] {
        println!("-- key_range {kr}");
        bench_michael("michael+ebr ", &Ebr::new(2), kr);
        // Acceptance probe for era-chaos: an empty-plan ChaosSmr is one
        // relaxed increment + one load per begin_op, so this row must
        // sit on top of the bare-EBR row (min-estimator noise aside).
        bench_michael("michael+ebrX", &ChaosSmr::transparent(Ebr::new(2)), kr);
        bench_michael("michael+hp  ", &Hp::new(2, 3), kr);
        bench_michael("michael+leak", &Leak::new(2), kr);
        bench_harris("harris+ebr  ", &Ebr::new(2), kr);
        bench_harris("harris+leak ", &Leak::new(2), kr);
        bench_harris("harris+nbr  ", &Nbr::new(2, 2), kr);
    }
}
