//! Quickstart: a lock-free set with safe memory reclamation.
//!
//! Builds Harris's linked list with epoch-based reclamation (the
//! easy + widely-applicable corner of the ERA triangle), runs a few
//! threads against it, and inspects the reclamation counters.
//!
//! Run with: `cargo run --example quickstart`

use era::ds::HarrisList;
use era::smr::common::Smr;
use era::smr::ebr::Ebr;

fn main() {
    // One EBR instance serves any number of data structures; size it for
    // the maximum number of concurrently registered threads.
    let smr = Ebr::new(8);
    let list = HarrisList::new(&smr);

    std::thread::scope(|s| {
        for t in 0..4i64 {
            let (list, smr) = (&list, &smr);
            s.spawn(move || {
                let mut ctx = smr.register().expect("thread slot");
                let base = t * 1_000;
                for k in base..base + 1_000 {
                    assert!(list.insert(&mut ctx, k));
                }
                for k in base..base + 1_000 {
                    assert!(list.contains(&mut ctx, k));
                }
                // Delete the odd keys: the nodes are retired and, two
                // epochs later, reclaimed.
                for k in (base + 1..base + 1_000).step_by(2) {
                    assert!(list.delete(&mut ctx, k));
                }
                smr.flush(&mut ctx);
            });
        }
    });

    let stats = smr.stats();
    println!("set size now: {}", list.len());
    println!("epoch:        {}", smr.epoch());
    println!("reclamation:  {stats}");
    assert_eq!(list.len(), 2_000);
    assert_eq!(stats.total_retired, 2_000);
    println!("quickstart OK");
}
