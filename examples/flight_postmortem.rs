//! Post-mortem of a panic inside a pinned region, end to end:
//!
//! 1. an EBR-protected worker retires a batch of nodes, then panics
//!    while still inside `begin_op`/`end_op` (a protected region) —
//!    the classic "operation died mid-flight" failure;
//! 2. the armed [`FlightRecorder`] panic hook writes a `.eraflt` crash
//!    dump as the thread unwinds;
//! 3. the surviving main thread reads the dump back — the same replay
//!    `era-view` does — and narrates what the trace proves: which
//!    nodes were left retired-but-unreclaimed, and which thread the
//!    blame counters point at.
//!
//! Run with: `cargo run --example flight_postmortem`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use era::obs::{FlightDump, FlightRecorder, Hook, Recorder, SchemeId};
use era::smr::common::{Smr, SmrHeader};
use era::smr::ebr::Ebr;
use era_view::{Filter, NodeChain};

#[repr(C)]
struct Node {
    header: SmrHeader,
    payload: u64,
}

/// # Safety
///
/// `p` is the `Box::into_raw` pointer of a live `Node`, passed here
/// exactly once by the scheme.
unsafe fn free_node(p: *mut u8) {
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

fn main() {
    let dump_path = std::env::temp_dir().join("flight_postmortem.eraflt");
    let _ = std::fs::remove_file(&dump_path);

    // --- 1. Arm the flight recorder before any thread registers. ---
    let recorder = Recorder::new(8);
    let ebr = Ebr::with_threshold(8, 16);
    ebr.attach_recorder(&recorder);
    let flight = Arc::new(FlightRecorder::single("ebr", &recorder));
    flight.install_panic_hook(dump_path.clone());
    println!("armed: crash dumps will land at {}\n", dump_path.display());

    // --- 2. A worker panics inside a pinned region. ---
    let shared = AtomicUsize::new(0);
    {
        let node = Box::into_raw(Box::new(Node {
            header: SmrHeader::new(),
            payload: 0,
        }));
        let mut ctx = ebr.register().expect("main context");
        // SAFETY: `node` was just boxed and is still exclusively ours.
        ebr.init_header(&mut ctx, unsafe { &(*node).header });
        shared.store(node as usize, Ordering::SeqCst);
    }
    let died = std::thread::scope(|sc| {
        let worker = sc.spawn(|| {
            let mut ctx = ebr.register().expect("worker context");
            for i in 1..=6u64 {
                ebr.begin_op(&mut ctx);
                let fresh = Box::into_raw(Box::new(Node {
                    header: SmrHeader::new(),
                    payload: i,
                }));
                // SAFETY: `fresh` is live; the displaced node was
                // published by us/main and is unlinked by the swap, so
                // it is retired exactly once.
                unsafe {
                    ebr.init_header(&mut ctx, &(*fresh).header);
                    let old = shared.swap(fresh as usize, Ordering::SeqCst);
                    ebr.retire(
                        &mut ctx,
                        old as *mut u8,
                        &(*(old as *mut Node)).header,
                        free_node,
                    );
                }
                if i == 6 {
                    // Still inside the protected region: the epoch this
                    // context pinned can never be retired-past now.
                    panic!("simulated bug: worker died while pinned (op {i})");
                }
                ebr.end_op(&mut ctx);
            }
        });
        // Joining here consumes the worker's panic, so the scope exits
        // cleanly and the process gets to do its own post-mortem.
        worker.join()
    });
    assert!(died.is_err(), "the worker must have panicked");
    println!("\nworker died inside its protected region; the process survives.\n");

    // --- 3. Replay the crash dump the panic hook just wrote. ---
    let bytes = std::fs::read(&dump_path).expect("panic hook must have written the dump");
    let dump = FlightDump::decode(&bytes).expect("crash dump must decode");
    let src = &dump.sources[0];
    println!(
        "replayed {}: {} events from source `{}` ({} dropped)",
        dump_path.display(),
        src.events.len(),
        src.label,
        src.dropped
    );

    // The last few timeline lines — what era-view --timeline prints.
    println!("\ntimeline tail:");
    for e in src.events.iter().rev().take(6).rev() {
        println!("  {}", era_view::render_event(e));
    }

    // Every retired-but-unreclaimed node is evidence: the dead pin
    // blocks the grace period, so EBR cannot free them.
    let retires = Filter {
        hook: Some("retire".into()),
        ..Filter::default()
    };
    let mut outstanding = 0;
    for e in retires.apply(src) {
        let chain = NodeChain::for_addr(src, e.a);
        if chain.is_outstanding() {
            outstanding += 1;
            if outstanding <= 2 {
                println!("\n{}", chain.render());
            }
        }
    }
    println!(
        "{outstanding} node(s) retired but never reclaimed — orphaned by the \
         panic inside the pinned region."
    );
    assert!(
        outstanding > 0,
        "the dead pin must strand at least one node"
    );
    assert_eq!(SchemeId(src.events[0].scheme), SchemeId::EBR);
    assert!(
        src.events
            .iter()
            .any(|e| Hook::from_u8(e.hook) == Some(Hook::Retire)),
        "trace must contain the retires"
    );

    let _ = std::fs::remove_file(&dump_path);
    println!(
        "\nMoral: with era-flight armed, a crash in a pinned region leaves a \
         replayable record of exactly which garbage it stranded — run \
         `era-view <dump> --chain auto` on any .eraflt to do this from the CLI."
    );
}
