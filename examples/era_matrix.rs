//! Measure the §6 ERA trade-off matrix from scratch and check
//! Theorem 6.1 over it.
//!
//! Run with: `cargo run --release --example era_matrix`

use era::sim::theorem::measured_matrix;

fn main() {
    println!("Measuring the ERA matrix by replaying the Figure 1 construction");
    println!("with every simulated scheme (robustness classified across scales)…\n");
    let matrix = measured_matrix(256);
    println!("{matrix}");
    match matrix.check_theorem() {
        Ok(()) => println!(
            "Theorem 6.1 verified over the measured matrix: every scheme \
             provides at most two of {{easy integration, robustness, wide \
             applicability}}."
        ),
        Err(v) => {
            // This cannot happen unless a measurement upstream is wrong —
            // the theorem is a proof, not an observation.
            eprintln!("measurement pipeline error: {v}");
            std::process::exit(1);
        }
    }
}
