//! Chaos recovery, narrated end to end: a seeded fault plan kills a
//! pinned reader mid-traversal, the orphaned garbage is adopted by
//! survivors, and the serving layer quarantines, heals, and re-opens
//! the wounded shard.
//!
//! Two acts:
//!
//! 1. **Data-structure level** — a `HarrisList` over
//!    `ChaosSmr<Ebr>`. The plan injects a die-pinned context drop
//!    while traversals are in flight; the dead context's retired nodes
//!    land in the orphan pool and the next survivor flush adopts them.
//! 2. **Service level** — a `KvStore` whose shard-0 scheme is the same
//!    armed decorator. When the death fires, the operator path
//!    quarantines the shard (writes refused, reads served), heals the
//!    thread's context, drains, and the navigator returns the shard to
//!    `Robust`.
//!
//! Run with: `cargo run --example chaos_recovery`

use era::chaos::{ChaosSmr, FaultAction, FaultPlan};
use era::ds::HarrisList;
use era::kv::{KvConfig, KvError, KvStore, ShardHealth};
use era::obs::Hook;
use era::smr::common::Smr;
use era::smr::ebr::Ebr;

fn act_one() {
    println!("== Act 1: a reader dies pinned mid-Harris-traversal ==\n");
    let plan = FaultPlan::new(42, vec![FaultAction::DiePinned { at_op: 100 }]);
    let smr = ChaosSmr::new(Ebr::with_threshold(4, 16), plan);
    let list = HarrisList::new(&smr);
    let mut ctx = smr.register().expect("slot");

    for k in 1..=400i64 {
        list.insert(&mut ctx, k);
        if k % 2 == 0 {
            list.delete(&mut ctx, k);
        }
        // Traversals keep running as the plan's victim dies under them.
        assert_eq!(list.contains(&mut ctx, k), k % 2 != 0);
    }
    let log = smr.fault_log();
    assert_eq!(log.len(), 1, "the planned death must have fired");
    println!(
        "  op {:>5}: chaos killed a pinned context (planned at op {});",
        log[0].fired_at, log[0].planned_at
    );
    println!(
        "  its garbage is orphaned: retired_now = {}",
        smr.stats().retired_now
    );

    smr.quiesce(&mut ctx);
    for _ in 0..8 {
        smr.begin_op(&mut ctx);
        smr.end_op(&mut ctx);
        smr.flush(&mut ctx);
    }
    assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
    println!(
        "  survivors adopted and freed every orphan: retired_now = 0 \
         (total reclaimed {})\n",
        smr.stats().total_reclaimed
    );
}

fn act_two() {
    println!("== Act 2: the serving layer quarantines, heals, re-opens ==\n");
    // Shard 0 carries the armed plan; shard 1 stays calm.
    let schemes = vec![
        ChaosSmr::new(
            Ebr::with_threshold(4, 16),
            FaultPlan::new(7, vec![FaultAction::DiePinned { at_op: 60 }]),
        ),
        ChaosSmr::transparent(Ebr::with_threshold(4, 16)),
    ];
    let store = KvStore::new(&schemes, KvConfig::default());
    let mut ctx = store.register().expect("capacity");

    // Serve traffic until the planned death fires on shard 0.
    let mut k = 0i64;
    while store.scheme(0).faults_injected() == 0 {
        store.put(&mut ctx, k, k).unwrap();
        store.remove(&mut ctx, k).unwrap();
        k += 1;
    }
    println!(
        "  after {k} write pairs: shard 0's scheme reports {} injected fault(s)",
        store.scheme(0).faults_injected()
    );

    // The operator reaction: flag the shard before piling on writes.
    store.quarantine(0);
    assert_eq!(store.health(0), ShardHealth::Quarantined);
    let k0 = (0..).find(|&k| store.shard_of(k) == 0).unwrap();
    let refused = store.put(&mut ctx, k0, 1);
    assert!(matches!(refused, Err(KvError::Overloaded { shard: 0 })));
    let readable = store.get(&mut ctx, k0);
    println!(
        "  shard 0 quarantined: writes refused ({}), reads served (get({k0}) = {readable:?})",
        refused.unwrap_err()
    );

    // Heal: fresh context in, old context's garbage to the orphan pool,
    // immediate flush adopts it; then drain the whole store.
    store.heal(&mut ctx, 0).expect("spare slot");
    assert!(
        store.drain(&mut ctx, 64),
        "drain must complete: {}",
        store.stats()
    );
    assert_eq!(store.health(0), ShardHealth::Robust);
    let adoptions = store.recorder(0).metrics().hook_count(Hook::Adopt);
    println!(
        "  healed + drained: retired_now = 0, {adoptions} adoption event(s), \
         navigator returned shard 0 to {}",
        store.health(0)
    );

    assert_eq!(store.put(&mut ctx, 9_999, 1), Ok(None));
    println!("  shard 0 is serving writes again\n");
}

fn main() {
    act_one();
    act_two();
    println!("Chaos run complete: death → adoption → quarantine → heal → Robust.");
}
