//! Figure 1 (Theorem 6.1), replayed under **every** scheme with the
//! `era-obs` tracer attached: prints the merged, timestamp-ordered
//! event log of each run, a footprint table across schemes, and writes
//! the full traces as a JSON-lines artifact.
//!
//! Run with: `cargo run --example trace_theorem [rounds] [out.jsonl]`
//! (defaults: 32 rounds, `trace_theorem.jsonl` in the working dir).
//!
//! Where `theorem_replay` narrates the construction for one scheme,
//! this example shows what the *observability layer* sees: the same
//! adversarial schedule produces a different event shape per scheme —
//! EBR's footprint grows with every churn round while T1 is blocked,
//! HP tips the safety oracle into `oracle_violation` events, NBR emits
//! `restart`, VBR emits `rollback` — which is the ERA trade-off of the
//! paper rendered as traces.

use std::io::Write;

use era::obs::report::event_json;
use era::obs::{phase_name, Hook, Recorder};
use era::sim::schemes::all_schemes;
use era::sim::theorem::{run_figure1_traced, TheoremOutcome};

/// Events per scheme to print in full; the rest are summarized.
const PRINT_LIMIT: usize = 40;

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "trace_theorem.jsonl".to_string());

    println!("== Figure 1 under every scheme, traced ({rounds} churn rounds) ==");
    let mut outcomes: Vec<(TheoremOutcome, usize)> = Vec::new();
    let mut artifact = std::fs::File::create(&out_path).expect("create artifact");

    for scheme in all_schemes(2) {
        let name = scheme.name().to_string();
        // A generous ring so the whole construction fits: the acceptance
        // bar below insists on `dropped == 0`.
        let recorder = Recorder::with_ring_capacity(4, 1 << 16);
        let outcome = run_figure1_traced(scheme, rounds, &recorder);
        let log = recorder.drain();
        assert!(
            log.is_time_ordered(),
            "{name}: drained trace must be timestamp-ordered"
        );
        assert!(!log.events.is_empty(), "{name}: trace must be non-empty");
        assert_eq!(log.dropped, 0, "{name}: ring sized to keep every event");

        let checks = log.with_hook(Hook::OracleCheck).count();
        println!(
            "\n--- {name}: {} events ({checks} oracle checks elided below), \
             {} violations, {} rollbacks ---",
            log.events.len(),
            outcome.violations,
            outcome.rollbacks
        );
        let shown: Vec<_> = log
            .events
            .iter()
            .filter(|e| e.hook() != Hook::OracleCheck)
            .collect();
        for event in shown.iter().take(PRINT_LIMIT) {
            let hook = event.hook();
            let detail = match hook {
                Hook::Phase => format!("enter `{}`", phase_name(event.a)),
                Hook::Sample => format!("retired={} max_active={}", event.a, event.b),
                Hook::OracleViolation => format!("subject=0x{:x} nr={}", event.a, event.b),
                _ => format!("a={} b={}", event.a, event.b),
            };
            println!(
                "  [{:>6}] T{:<2} {:<16} {detail}",
                event.ts,
                event.thread,
                hook.name()
            );
        }
        if shown.len() > PRINT_LIMIT {
            println!(
                "  … {} more events (full log in artifact)",
                shown.len() - PRINT_LIMIT
            );
        }

        // Peak retired population as the *trace* saw it (max over the
        // per-round `sample` events) — must corroborate the outcome's
        // own `peak_retired`, measured independently by the monitor.
        let traced_peak = log.with_hook(Hook::Sample).map(|e| e.a).max().unwrap_or(0) as usize;
        assert_eq!(
            traced_peak, outcome.peak_retired,
            "{name}: trace and monitor must agree on the footprint peak"
        );
        for event in &log.events {
            writeln!(artifact, "{}", event_json(event)).expect("write artifact");
        }
        outcomes.push((outcome, traced_peak));
    }

    println!("\n== footprint across schemes (the paper's Figure 1 table) ==");
    println!(
        "{:<6} {:>7} {:>13} {:>11} {:>11} {:>11}  sacrificed",
        "scheme", "rounds", "peak_retired", "violations", "rollbacks", "traced_peak"
    );
    for (out, traced_peak) in &outcomes {
        println!(
            "{:<6} {:>7} {:>13} {:>11} {:>11} {:>11}  {}",
            out.scheme,
            out.rounds,
            out.peak_retired,
            out.violations,
            out.rollbacks,
            traced_peak,
            out.sacrificed
        );
    }
    println!("\nwrote per-event JSON lines for every scheme to {out_path}");
}
