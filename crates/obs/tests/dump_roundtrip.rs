//! Property and golden-fixture tests for the `.eraflt` dump format.
//!
//! Two guarantees are pinned here, beyond the unit tests in
//! `dump.rs`: **losslessness** (any dump a writer can legally build
//! survives encode→decode bit-for-bit, with and without compression)
//! and **byte stability** (version 1 of the format is frozen by a
//! checked-in golden fixture — an encoder change that alters the bytes
//! fails the test and must bump [`DUMP_VERSION`]).

#![cfg(feature = "rt")]

use era_obs::dump::{DumpStats, FlightDump, MetricsDump, SourceDump};
use era_obs::{Event, HistogramSnapshot, Hook, SchemeId, HISTOGRAM_BUCKETS};

use proptest::prelude::*;

/// Builds a well-formed event stream from raw tuples: timestamps are
/// made strictly increasing (the recorder's logical clock guarantees
/// uniqueness, and cross-thread ties would make the decoder's merge
/// order ambiguous).
fn events_from(raw: Vec<(u64, u64, u64, u16, u8, u8)>) -> Vec<Event> {
    let mut ts = 0u64;
    raw.into_iter()
        .map(|(dt, a, b, thread, scheme, hook)| {
            ts += 1 + (dt % 1000);
            let mut e = Event::new(thread, SchemeId(scheme % 9), Hook::BeginOp, a, b);
            e.ts = ts;
            e.hook = hook % Hook::COUNT as u8;
            e
        })
        .collect()
}

fn metrics_from(seed: u64) -> MetricsDump {
    let mut latency = [0u64; HISTOGRAM_BUCKETS];
    for (i, bucket) in latency.iter_mut().enumerate() {
        if i as u64 % 7 == seed % 7 {
            *bucket = seed.rotate_left(i as u32);
        }
    }
    MetricsDump {
        hook_counts: (0..Hook::COUNT as u64)
            .map(|i| i.wrapping_mul(seed))
            .collect(),
        footprint_peak: seed.wrapping_mul(3),
        blame: vec![seed, 0, seed / 2, 0],
        latency: HistogramSnapshot::from_counts(latency),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_is_lossless(
        raw in prop::collection::vec(
            (0u64..5000, 0u64..u64::MAX, 0u64..u64::MAX, 0u16..12, 0u8..12, 0u8..32),
            0..300,
        ),
        dropped in 0u64..10_000,
        trimmed in 0u64..10_000,
        wall in 0u64..u64::MAX / 2,
        window in 0u64..100_000,
        seed in 1u64..u64::MAX,
        compress in 0u8..2,
    ) {
        let mut source = SourceDump::new("prop-source");
        source.events = events_from(raw);
        source.dropped = dropped;
        source.trimmed = trimmed;
        if seed % 3 != 0 {
            source.metrics = Some(metrics_from(seed));
        }
        if seed % 2 == 0 {
            source.stats = Some(DumpStats {
                retired_now: seed % 97,
                retired_peak: seed % 1009,
                total_retired: seed,
                total_reclaimed: seed / 2,
                era: seed % 31,
            });
        }
        let mut empty = SourceDump::new("");
        empty.stats = Some(DumpStats::default());
        let dump = FlightDump {
            version: era_obs::DUMP_VERSION,
            wall_unix_ms: wall,
            window_ms: window,
            sources: vec![source, empty],
        };
        let bytes = dump.encode(compress == 1);
        let back = FlightDump::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back, dump);
    }

    #[test]
    fn decode_never_panics_on_corrupted_bytes(
        raw in prop::collection::vec(
            (0u64..500, 0u64..1000, 0u64..1000, 0u16..4, 0u8..9, 0u8..19),
            1..50,
        ),
        flip_at in 0usize..4096,
        flip_to in 0u16..256,
    ) {
        let mut source = SourceDump::new("fuzz");
        source.events = events_from(raw);
        let dump = FlightDump {
            version: era_obs::DUMP_VERSION,
            wall_unix_ms: 7,
            window_ms: 0,
            sources: vec![source],
        };
        let mut bytes = dump.encode(true);
        let idx = flip_at % bytes.len();
        bytes[idx] = flip_to as u8;
        // Either a clean decode (the flip hit a don't-care byte or
        // stayed in vocabulary) or a structured error — never a panic
        // or a runaway allocation.
        let _ = FlightDump::decode(&bytes);
    }
}

/// The deterministic dump frozen as `tests/fixtures/golden_v1.eraflt`.
fn golden_dump() -> FlightDump {
    let scheme = SchemeId::HE;
    let mk = |ts: u64, thread: u16, hook: Hook, a: u64, b: u64| {
        let mut e = Event::new(thread, scheme, hook, a, b);
        e.ts = ts;
        e
    };
    let mut source = SourceDump::new("he-golden");
    source.events = vec![
        mk(1, 0, Hook::BeginOp, 0, 0),
        mk(2, 0, Hook::Retire, 0xdead_b000, 1),
        mk(3, 1, Hook::Load, 2, 0xdead_b000),
        mk(4, 0, Hook::Fault, 0, 17),
        mk(5, 1, Hook::Adopt, 1, 2),
        mk(6, 1, Hook::Reclaim, 0xdead_b000, 4),
        mk(7, 1, Hook::EndOp, 0, 0),
    ];
    source.dropped = 3;
    source.trimmed = 1;
    // The fixture was frozen when the hook vocabulary had 19 entries.
    // `hook_counts` is length-prefixed on the wire, so dumps written
    // before a hook was appended must keep decoding unchanged — that
    // compatibility is exactly what this pin asserts.
    let mut metrics = metrics_from(0xE8A);
    metrics.hook_counts.truncate(19);
    source.metrics = Some(metrics);
    source.stats = Some(DumpStats {
        retired_now: 0,
        retired_peak: 2,
        total_retired: 1,
        total_reclaimed: 1,
        era: 5,
    });
    FlightDump {
        version: era_obs::DUMP_VERSION,
        wall_unix_ms: 1_700_000_000_000,
        window_ms: 30_000,
        sources: vec![source],
    }
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Backward compatibility: `golden_v1.eraflt` was written when the hook
/// vocabulary had 19 entries. The embedded name tables make the format
/// self-describing, so appending hooks must never invalidate old dumps
/// — this fixture is frozen forever and only ever *decoded*.
#[test]
#[cfg_attr(miri, ignore = "reads the fixture file from disk")]
fn golden_fixture_decodes_across_vocabulary_growth() {
    let bytes = std::fs::read(fixture_path("golden_v1.eraflt"))
        .expect("golden fixture missing — run the ignored regenerate_golden_fixture test");
    // Versioned header, byte for byte.
    assert_eq!(&bytes[..6], b"ERAFLT");
    assert_eq!(
        u16::from_be_bytes([bytes[6], bytes[7]]),
        era_obs::DUMP_VERSION
    );
    let decoded = FlightDump::decode(&bytes).expect("golden fixture must decode");
    assert_eq!(decoded, golden_dump(), "decoder drifted from v1 fixture");
}

/// Byte stability under the *current* vocabulary: an encoder change
/// that alters these bytes is either an unintentional drift (fix it)
/// or a format revision (bump [`era_obs::DUMP_VERSION`], freeze a new
/// fixture). Appending a hook grows the self-describing name table, so
/// this fixture is regenerated on vocabulary growth — unlike
/// `golden_v1.eraflt`, which pins decoding of the old bytes.
#[test]
#[cfg_attr(miri, ignore = "reads the fixture file from disk")]
fn encoder_is_byte_stable_for_current_vocabulary() {
    let bytes = std::fs::read(fixture_path("golden_v1_hooks20.eraflt"))
        .expect("fixture missing — run the ignored regenerate_golden_fixture test");
    assert_eq!(
        golden_dump().encode(true),
        bytes,
        "encoder no longer byte-stable — if the format (not just the \
         hook vocabulary) changed, bump DUMP_VERSION and freeze a new \
         fixture; if only a hook was appended, regenerate this one"
    );
    let decoded = FlightDump::decode(&bytes).expect("fixture must decode");
    assert_eq!(decoded, golden_dump());
}

/// Rewrites the byte-stability fixture. Run after appending a hook or
/// for intentional format revisions:
/// `cargo test -p era-obs --test dump_roundtrip -- --ignored`.
/// `golden_v1.eraflt` itself is never rewritten.
#[test]
#[ignore = "regenerates tests/fixtures/golden_v1_hooks20.eraflt"]
fn regenerate_golden_fixture() {
    let path = fixture_path("golden_v1_hooks20.eraflt");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, golden_dump().encode(true)).unwrap();
}
