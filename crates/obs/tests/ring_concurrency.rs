//! Concurrency and property tests for the trace ring and recorder.
//!
//! These cover the three behaviors the ring must never get wrong:
//! drop-oldest on wrap (newest events survive, loss is counted),
//! torn-read freedom under concurrent write/drain, and the drained
//! stream being a subsequence of the emitted stream.

#![cfg(feature = "rt")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use era_obs::{Event, Hook, Recorder, Ring, SchemeId};

use proptest::prelude::*;

fn ev(thread: u16, n: u64) -> Event {
    let mut e = Event::new(thread, SchemeId::NONE, Hook::Sample, n, 0);
    e.ts = n;
    e
}

#[test]
fn wrap_around_drops_oldest_and_counts_loss() {
    let ring = Ring::new(64);
    let total = 1000u64;
    for n in 0..total {
        ring.push(ev(0, n));
    }
    let mut out = Vec::new();
    ring.drain_into(&mut out);
    let survivors: Vec<u64> = out.iter().map(|e| e.a).collect();
    assert_eq!(
        survivors,
        (total - 64..total).collect::<Vec<_>>(),
        "newest must survive"
    );
    assert_eq!(ring.dropped(), total - 64);
    assert_eq!(ring.pushed(), total);
}

/// Writers on their own rings, one drainer polling concurrently: every
/// event is either drained exactly once or counted dropped, each
/// thread's events arrive in emit order, and no event is ever torn
/// (payload words are written as `(n, !n)` and must still match).
#[test]
#[cfg_attr(
    miri,
    ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
)]
fn concurrent_writers_single_drainer_no_torn_events() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;

    let recorder = Recorder::with_ring_capacity(WRITERS, 256);
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let mut tracer = recorder.tracer(w as u16, SchemeId::NONE);
                scope.spawn(move || {
                    for n in 0..PER_WRITER {
                        tracer.emit(Hook::Sample, n, !n);
                    }
                })
            })
            .collect();

        let drain_recorder = recorder.clone();
        let drain_done = Arc::clone(&done);
        let drainer = scope.spawn(move || {
            let mut all = Vec::new();
            loop {
                let finished = drain_done.load(Ordering::Acquire);
                all.extend(drain_recorder.drain().events);
                if finished {
                    break;
                }
                std::thread::yield_now();
            }
            all
        });

        // Join the writers first so the drainer's final pass (after it
        // observes `done`) is guaranteed to see every push.
        for handle in writers {
            handle.join().unwrap();
        }
        // SAFETY(ordering): Release — pairs with the drainer's Acquire
        // load of `done`: joins above happened-before this store, so the
        // drainer's final drain sees every push.
        done.store(true, Ordering::Release);

        let drained = drainer.join().unwrap();

        // No torn events: payload invariant holds for every record.
        for e in &drained {
            assert_eq!(e.b, !e.a, "torn event: a={} b={}", e.a, e.b);
        }
        // Per-thread streams arrive in emit order (subsequence of 0..N).
        for w in 0..WRITERS as u16 {
            let seq: Vec<u64> = drained
                .iter()
                .filter(|e| e.thread == w)
                .map(|e| e.a)
                .collect();
            assert!(
                seq.windows(2).all(|p| p[0] < p[1]),
                "writer {w} out of order"
            );
        }
        // Conservation: drained + dropped accounts for every emit.
        let log_tail = recorder.drain();
        let final_dropped = log_tail.dropped;
        let total_drained = drained.len() + log_tail.events.len();
        assert_eq!(
            total_drained as u64 + final_dropped,
            (WRITERS as u64) * PER_WRITER,
            "events must be drained or counted dropped, never silently lost"
        );
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any interleaving of pushes and drains on a small ring, the
    /// drained stream is a subsequence of the emitted stream.
    #[test]
    fn drained_is_subsequence_of_emitted(
        capacity in 3..40usize,
        script in prop::collection::vec((0..8u64, prop::bool::weighted(0.25)), 0..200),
    ) {
        let ring = Ring::new(capacity);
        let mut emitted = Vec::new();
        let mut drained = Vec::new();
        let mut next = 0u64;
        for (burst, drain_now) in script {
            for _ in 0..burst {
                ring.push(ev(0, next));
                emitted.push(next);
                next += 1;
            }
            if drain_now {
                ring.drain_into(&mut drained);
            }
        }
        ring.drain_into(&mut drained);

        // Subsequence check: consume `emitted` left-to-right.
        let mut it = emitted.iter();
        for got in &drained {
            prop_assert!(
                it.any(|&e| e == got.a),
                "drained {} not a subsequence element", got.a
            );
        }
        // Nothing silently vanishes: drained + dropped == emitted.
        prop_assert_eq!(drained.len() as u64 + ring.dropped(), emitted.len() as u64);
    }
}
