//! # era-obs: observability for the ERA workspace
//!
//! Lock-free event tracing, aggregate metrics, and structured report
//! emission shared by `era-smr` (the real reclamation schemes),
//! `era-sim` (the safety-oracle simulator), and `era-bench`.
//!
//! ## Design
//!
//! - **Per-thread rings** ([`Ring`]): each instrumented thread writes
//!   fixed-size 32-byte [`Event`] records into its own preallocated
//!   drop-oldest ring. The hot path is two atomic stores around a
//!   plain copy — no allocation, no locks, no cross-thread contention.
//! - **Global logical clock**: one `fetch_add(1)` per event gives a
//!   total order across threads and schemes, so a drained trace is a
//!   single coherent timeline without OS-clock skew.
//! - **Aggregate metrics** ([`Metrics`]): always-exact counters beside
//!   the lossy rings — per-hook call counts, a retire→reclaim latency
//!   [`Log2Histogram`], a footprint [`HighWater`] mark, and per-thread
//!   *blame* counters attributing blocked reclamation to the stalled
//!   thread (the robustness axis of the ERA trade-off).
//! - **Zero-cost off switch**: with the crate's `rt` feature disabled
//!   (downstream: `era-smr`/`era-sim`/`era-bench` without their
//!   `trace` feature), [`ThreadTracer`] is a zero-sized no-op and the
//!   instrumentation compiles away entirely.
//! - **Reports** ([`report`]): a dependency-free JSON-lines writer for
//!   `BENCH_*.jsonl` artifacts — throughput, footprint curves, latency
//!   histograms, hook counts.
//! - **Flight recorder** ([`flight`], [`dump`]): a crash-safe layer
//!   that drains the rings into retained buffers, snapshots the last
//!   N seconds (plus metrics and scheme counters) into a compact
//!   binary `.eraflt` dump — on demand or from a chained panic hook —
//!   and reads such dumps back for the `era-view` timeline CLI.
//!
//! ## Usage sketch
//!
//! ```ignore
//! let recorder = Recorder::new(threads);
//! let mut tracer = recorder.tracer(0, SchemeId::EBR); // one per thread
//! tracer.emit(Hook::Retire, addr, retired_now);       // hot path
//! let log = recorder.drain();                         // merged, ts-ordered
//! ```

#![warn(missing_docs)]

pub mod dump;
mod event;
pub mod flight;
mod metrics;
pub mod report;
mod ring;

mod recorder;

pub use dump::{DumpError, DumpStats, FlightDump, MetricsDump, SourceDump, DUMP_VERSION};
pub use event::{phase_name, Event, Hook, SchemeId};
pub use flight::FlightRecorder;
pub use metrics::{
    Counter, HighWater, HistogramSnapshot, Log2Histogram, Metrics, HISTOGRAM_BUCKETS,
};
pub use recorder::{Recorder, ThreadTracer, TraceLog, DEFAULT_RING_CAPACITY};
pub use ring::Ring;
