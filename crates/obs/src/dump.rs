//! The `.eraflt` binary flight-dump format: a compact, versioned,
//! self-describing serialization of drained trace rings plus the
//! aggregate metrics and scheme counters that accompany them.
//!
//! A dump is what the [`crate::flight::FlightRecorder`] writes on
//! panic or on an explicit snapshot, and what the `era-view` CLI reads
//! back. The format is designed for post-mortems, not IPC:
//!
//! - **Versioned header** — 8-byte magic (`ERAFLT` + big-endian
//!   version) and a flags byte, so a reader can refuse a future format
//!   instead of misparsing it. The golden-fixture test pins the byte
//!   layout.
//! - **Self-describing name tables** — hook and scheme names are
//!   string-interned once per dump and events refer to them by index,
//!   so a reader built against a *newer* hook vocabulary still renders
//!   an old dump's names correctly (and vice versa).
//! - **Per-thread sections with delta timestamps** — events are grouped
//!   by producing thread and their logical timestamps stored as varint
//!   deltas; within one thread the clock is monotone, so deltas are
//!   small and most timestamps cost one byte instead of eight.
//! - **Honest truncation** — every source section carries the
//!   cumulative ring-overwrite drop count, and the header carries the
//!   total, so a truncated trace can never silently read as complete.
//! - **Optional RLE compression** — the varint payload is byte-wise
//!   run-length encoded when that actually shrinks it (flag bit 0);
//!   zero-heavy sections (blame arrays, histogram gaps) collapse well.
//!
//! Everything here is pure safe Rust with no dependencies; encoding
//! and decoding round-trip losslessly (property-tested in
//! `tests/dump_roundtrip.rs`).

use std::fmt;

use crate::event::{Event, Hook, SchemeId};
use crate::metrics::{HistogramSnapshot, Metrics, HISTOGRAM_BUCKETS};
use crate::recorder::TraceLog;

/// The 6-byte magic prefix of every `.eraflt` file.
pub const DUMP_MAGIC: &[u8; 6] = b"ERAFLT";

/// Current format version (big-endian `u16` following the magic).
pub const DUMP_VERSION: u16 = 1;

/// Header flag bit: the payload after the header is RLE-compressed.
pub const FLAG_RLE: u8 = 0b0000_0001;

/// Decoding failure: why a byte stream is not a readable dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpError {
    /// The file does not start with [`DUMP_MAGIC`].
    BadMagic,
    /// The version field names a format this reader does not know.
    UnsupportedVersion(u16),
    /// The header flags contain bits this reader does not know.
    UnsupportedFlags(u8),
    /// The payload ended before a field it promised.
    Truncated(&'static str),
    /// A varint ran past 10 bytes (not produced by any writer).
    Overlong,
    /// An interned-string index points outside the string table.
    BadStringIndex(u64),
    /// A string table entry is not valid UTF-8.
    BadUtf8,
    /// A structural count is implausibly large for the input size
    /// (corrupt length field; refused before allocating).
    BadCount(&'static str),
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::BadMagic => write!(f, "not an .eraflt file (bad magic)"),
            DumpError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported dump version {v} (reader knows {DUMP_VERSION})"
                )
            }
            DumpError::UnsupportedFlags(b) => write!(f, "unsupported header flags {b:#010b}"),
            DumpError::Truncated(what) => write!(f, "dump truncated while reading {what}"),
            DumpError::Overlong => write!(f, "overlong varint"),
            DumpError::BadStringIndex(i) => write!(f, "string index {i} outside table"),
            DumpError::BadUtf8 => write!(f, "string table entry is not valid UTF-8"),
            DumpError::BadCount(what) => write!(f, "implausible count for {what}"),
        }
    }
}

impl std::error::Error for DumpError {}

/// Scheme footprint counters carried in a dump — a dependency-free
/// mirror of `era_smr::SmrStats` (era-obs sits *below* era-smr in the
/// workspace graph, so the flight layer re-declares the shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DumpStats {
    /// Nodes retired and not yet reclaimed at snapshot time.
    pub retired_now: u64,
    /// High-water mark of the retired population.
    pub retired_peak: u64,
    /// Total retire calls.
    pub total_retired: u64,
    /// Total nodes reclaimed.
    pub total_reclaimed: u64,
    /// Global era/epoch at snapshot time (0 for schemes without one).
    pub era: u64,
}

/// An owned snapshot of a [`Metrics`] block, as serialized per source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsDump {
    /// Per-hook call counts, indexed by [`Hook`] discriminant.
    pub hook_counts: Vec<u64>,
    /// Footprint high-water mark.
    pub footprint_peak: u64,
    /// Per-thread-slot blame counters.
    pub blame: Vec<u64>,
    /// Retire→reclaim latency histogram.
    pub latency: HistogramSnapshot,
}

impl MetricsDump {
    /// Snapshots a live metrics block.
    pub fn capture(metrics: &Metrics) -> MetricsDump {
        MetricsDump {
            hook_counts: Hook::ALL.iter().map(|&h| metrics.hook_count(h)).collect(),
            footprint_peak: metrics.footprint_peak.get(),
            blame: metrics.blame_counts(),
            latency: metrics.reclaim_latency.snapshot(),
        }
    }

    /// Call count for `hook` (0 when the dump predates the hook).
    pub fn hook_count(&self, hook: Hook) -> u64 {
        self.hook_counts
            .get(hook as u8 as usize)
            .copied()
            .unwrap_or(0)
    }
}

/// One trace source inside a dump: a label (scheme or shard name), its
/// drained events, and the metrics/stats that were attached to it.
///
/// Sources have independent logical clocks — timestamps are comparable
/// *within* a source, not across sources — so the viewer merges
/// per-source, never globally.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDump {
    /// Human-readable source label ("EBR", "shard3", …).
    pub label: String,
    /// Cumulative events lost to ring overwrite before this snapshot.
    pub dropped: u64,
    /// Events trimmed off the front by the last-N-seconds window (they
    /// happened, were drained, and were then aged out — distinct from
    /// `dropped`, which the recorder never saw at all).
    pub trimmed: u64,
    /// Drained events in ascending `ts` order.
    pub events: Vec<Event>,
    /// Aggregate metrics of the source's recorder, when captured.
    pub metrics: Option<MetricsDump>,
    /// Scheme counters (`SmrStats` mirror), when the caller supplied
    /// them via `FlightRecorder::set_stats`.
    pub stats: Option<DumpStats>,
}

impl SourceDump {
    /// An empty source with just a label.
    pub fn new(label: &str) -> SourceDump {
        SourceDump {
            label: label.to_string(),
            dropped: 0,
            trimmed: 0,
            events: Vec::new(),
            metrics: None,
            stats: None,
        }
    }

    /// The events as a [`TraceLog`] (cloned), for code written against
    /// the drain API.
    pub fn to_trace_log(&self) -> TraceLog {
        TraceLog {
            events: self.events.clone(),
            dropped: self.dropped,
        }
    }
}

/// A decoded (or about-to-be-encoded) flight dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Format version the bytes carried (always [`DUMP_VERSION`] for
    /// dumps this library wrote).
    pub version: u16,
    /// Wall-clock milliseconds since the Unix epoch at snapshot time
    /// (0 when the writer had no clock).
    pub wall_unix_ms: u64,
    /// Snapshot window in milliseconds (0 = unwindowed, full history).
    pub window_ms: u64,
    /// The trace sources.
    pub sources: Vec<SourceDump>,
}

impl FlightDump {
    /// An empty dump at the current version.
    pub fn new() -> FlightDump {
        FlightDump {
            version: DUMP_VERSION,
            wall_unix_ms: 0,
            window_ms: 0,
            sources: Vec::new(),
        }
    }

    /// Total events across all sources.
    pub fn event_count(&self) -> usize {
        self.sources.iter().map(|s| s.events.len()).sum()
    }

    /// Total ring-overwrite drops across all sources. Non-zero means
    /// the dump is *known incomplete* — surface it.
    pub fn total_dropped(&self) -> u64 {
        self.sources.iter().map(|s| s.dropped).sum()
    }

    /// Total window-trimmed events across all sources.
    pub fn total_trimmed(&self) -> u64 {
        self.sources.iter().map(|s| s.trimmed).sum()
    }

    /// Serializes the dump. With `compress`, the payload is RLE-coded
    /// when that shrinks it (the flag byte records which happened).
    pub fn encode(&self, compress: bool) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(DUMP_MAGIC);
        out.extend_from_slice(&DUMP_VERSION.to_be_bytes());
        if compress {
            let packed = rle_compress(&payload);
            if packed.len() < payload.len() {
                out.push(FLAG_RLE);
                out.extend_from_slice(&packed);
                return out;
            }
        }
        out.push(0);
        out.extend_from_slice(&payload);
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        // Intern every string the dump references: source labels plus
        // the full hook and scheme name vocabularies (self-description
        // costs a few hundred bytes once per dump).
        let mut strings = StringTable::default();
        let hook_names: Vec<u32> = Hook::ALL.iter().map(|h| strings.intern(h.name())).collect();
        let scheme_names: Vec<u32> = (0..=SchemeId::LEAK.0)
            .map(|raw| strings.intern(SchemeId(raw).name()))
            .collect();
        let labels: Vec<u32> = self
            .sources
            .iter()
            .map(|s| strings.intern(&s.label))
            .collect();

        let mut buf = Vec::new();
        strings.encode(&mut buf);
        put_varint(&mut buf, hook_names.len() as u64);
        for idx in &hook_names {
            put_varint(&mut buf, *idx as u64);
        }
        put_varint(&mut buf, scheme_names.len() as u64);
        for idx in &scheme_names {
            put_varint(&mut buf, *idx as u64);
        }
        put_varint(&mut buf, self.wall_unix_ms);
        put_varint(&mut buf, self.window_ms);
        put_varint(&mut buf, self.total_dropped());
        put_varint(&mut buf, self.sources.len() as u64);
        for (source, label) in self.sources.iter().zip(&labels) {
            encode_source(&mut buf, source, *label);
        }
        buf
    }

    /// Parses a dump from bytes.
    ///
    /// # Errors
    ///
    /// Any [`DumpError`]: wrong magic, unknown version or flags, or a
    /// payload that is truncated or internally inconsistent.
    pub fn decode(bytes: &[u8]) -> Result<FlightDump, DumpError> {
        if bytes.len() < 9 {
            return Err(DumpError::Truncated("header"));
        }
        if &bytes[..6] != DUMP_MAGIC {
            return Err(DumpError::BadMagic);
        }
        let version = u16::from_be_bytes([bytes[6], bytes[7]]);
        if version != DUMP_VERSION {
            return Err(DumpError::UnsupportedVersion(version));
        }
        let flags = bytes[8];
        if flags & !FLAG_RLE != 0 {
            return Err(DumpError::UnsupportedFlags(flags));
        }
        let payload;
        let decoded;
        if flags & FLAG_RLE != 0 {
            decoded = rle_decompress(&bytes[9..])?;
            payload = decoded.as_slice();
        } else {
            payload = &bytes[9..];
        }
        let mut r = Reader::new(payload);
        let strings = StringTable::decode(&mut r)?;
        let hook_names = read_index_table(&mut r, &strings, "hook table")?;
        let scheme_names = read_index_table(&mut r, &strings, "scheme table")?;
        let wall_unix_ms = r.varint("wall_unix_ms")?;
        let window_ms = r.varint("window_ms")?;
        let _total_dropped = r.varint("total_dropped")?;
        let source_count = r.varint("source_count")?;
        if source_count > r.remaining() as u64 {
            return Err(DumpError::BadCount("sources"));
        }
        let mut sources = Vec::with_capacity(source_count as usize);
        for _ in 0..source_count {
            sources.push(decode_source(&mut r, &strings)?);
        }
        // The name tables exist for forward-compat rendering; v1
        // readers share the writer's vocabulary, so they are checked
        // for well-formedness above and otherwise unused here.
        let _ = (hook_names, scheme_names);
        Ok(FlightDump {
            version,
            wall_unix_ms,
            window_ms,
            sources,
        })
    }
}

impl Default for FlightDump {
    fn default() -> Self {
        FlightDump::new()
    }
}

fn encode_source(buf: &mut Vec<u8>, source: &SourceDump, label_idx: u32) {
    put_varint(buf, label_idx as u64);
    put_varint(buf, source.dropped);
    put_varint(buf, source.trimmed);

    // Group events into per-thread sections, preserving ts order
    // within each thread (the input is globally ts-ordered, so a
    // stable partition keeps each section ordered too).
    let mut threads: Vec<u16> = source.events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    put_varint(buf, threads.len() as u64);
    for &thread in &threads {
        let section: Vec<&Event> = source
            .events
            .iter()
            .filter(|e| e.thread == thread)
            .collect();
        put_varint(buf, thread as u64);
        put_varint(buf, section.len() as u64);
        let mut prev_ts = 0u64;
        for e in section {
            // Delta off the previous event of the *same thread*: the
            // clock is monotone per producer, so this never underflows
            // for recorder-produced logs; a hand-built out-of-order
            // log still round-trips via the zigzag-free fallback of
            // storing the wrapped difference.
            put_varint(buf, e.ts.wrapping_sub(prev_ts));
            prev_ts = e.ts;
            buf.push(e.hook);
            buf.push(e.scheme);
            put_varint(buf, e.a);
            put_varint(buf, e.b);
        }
    }

    match &source.metrics {
        None => buf.push(0),
        Some(m) => {
            buf.push(1);
            put_varint(buf, m.hook_counts.len() as u64);
            for c in &m.hook_counts {
                put_varint(buf, *c);
            }
            put_varint(buf, m.footprint_peak);
            put_varint(buf, m.blame.len() as u64);
            for c in &m.blame {
                put_varint(buf, *c);
            }
            // Sparse histogram: (bucket_index, count) pairs.
            let nonzero: Vec<(usize, u64)> = m
                .latency
                .counts()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| (k, c))
                .collect();
            put_varint(buf, nonzero.len() as u64);
            for (k, c) in nonzero {
                put_varint(buf, k as u64);
                put_varint(buf, c);
            }
        }
    }

    match &source.stats {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_varint(buf, s.retired_now);
            put_varint(buf, s.retired_peak);
            put_varint(buf, s.total_retired);
            put_varint(buf, s.total_reclaimed);
            put_varint(buf, s.era);
        }
    }
}

fn decode_source(r: &mut Reader<'_>, strings: &StringTable) -> Result<SourceDump, DumpError> {
    let label_idx = r.varint("source label")?;
    let label = strings.get(label_idx)?.to_string();
    let dropped = r.varint("source dropped")?;
    let trimmed = r.varint("source trimmed")?;

    let thread_count = r.varint("thread section count")?;
    if thread_count > r.remaining() as u64 {
        return Err(DumpError::BadCount("thread sections"));
    }
    let mut events: Vec<Event> = Vec::new();
    for _ in 0..thread_count {
        let thread = r.varint("thread id")? as u16;
        let count = r.varint("thread event count")?;
        if count > r.remaining() as u64 {
            return Err(DumpError::BadCount("thread events"));
        }
        let mut prev_ts = 0u64;
        for _ in 0..count {
            let ts = prev_ts.wrapping_add(r.varint("event ts delta")?);
            prev_ts = ts;
            let hook = r.byte("event hook")?;
            let scheme = r.byte("event scheme")?;
            let a = r.varint("event a")?;
            let b = r.varint("event b")?;
            let mut event = Event::new(thread, SchemeId(scheme), Hook::Sample, a, b);
            // Preserve the raw hook byte even if this reader's
            // vocabulary is older than the writer's: the name tables
            // exist precisely so unknown hooks stay renderable.
            event.hook = hook;
            event.ts = ts;
            events.push(event);
        }
    }
    // Restore the merged per-source timeline order.
    events.sort_by_key(|e| e.ts);

    let metrics = match r.byte("metrics flag")? {
        0 => None,
        _ => {
            let n = r.varint("hook count len")?;
            if n > r.remaining() as u64 {
                return Err(DumpError::BadCount("hook counts"));
            }
            let mut hook_counts = Vec::with_capacity(n as usize);
            for _ in 0..n {
                hook_counts.push(r.varint("hook count")?);
            }
            let footprint_peak = r.varint("footprint peak")?;
            let n = r.varint("blame len")?;
            if n > r.remaining() as u64 {
                return Err(DumpError::BadCount("blame counters"));
            }
            let mut blame = Vec::with_capacity(n as usize);
            for _ in 0..n {
                blame.push(r.varint("blame counter")?);
            }
            let pairs = r.varint("latency bucket pairs")?;
            let mut counts = [0u64; HISTOGRAM_BUCKETS];
            for _ in 0..pairs {
                let k = r.varint("latency bucket index")?;
                let c = r.varint("latency bucket count")?;
                if let Some(slot) = counts.get_mut(k as usize) {
                    *slot = c;
                }
            }
            Some(MetricsDump {
                hook_counts,
                footprint_peak,
                blame,
                latency: HistogramSnapshot::from_counts(counts),
            })
        }
    };

    let stats = match r.byte("stats flag")? {
        0 => None,
        _ => Some(DumpStats {
            retired_now: r.varint("retired_now")?,
            retired_peak: r.varint("retired_peak")?,
            total_retired: r.varint("total_retired")?,
            total_reclaimed: r.varint("total_reclaimed")?,
            era: r.varint("era")?,
        }),
    };

    Ok(SourceDump {
        label,
        dropped,
        trimmed,
        events,
        metrics,
        stats,
    })
}

fn read_index_table(
    r: &mut Reader<'_>,
    strings: &StringTable,
    what: &'static str,
) -> Result<Vec<String>, DumpError> {
    let n = r.varint(what)?;
    if n > r.remaining() as u64 + 1 {
        return Err(DumpError::BadCount(what));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let idx = r.varint(what)?;
        out.push(strings.get(idx)?.to_string());
    }
    Ok(out)
}

// ----- string interning -------------------------------------------------

#[derive(Debug, Default)]
struct StringTable {
    entries: Vec<String>,
}

impl StringTable {
    /// Interns `s`, returning its table index (deduplicated).
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(i) = self.entries.iter().position(|e| e == s) {
            return i as u32;
        }
        self.entries.push(s.to_string());
        (self.entries.len() - 1) as u32
    }

    fn get(&self, idx: u64) -> Result<&str, DumpError> {
        self.entries
            .get(idx as usize)
            .map(|s| s.as_str())
            .ok_or(DumpError::BadStringIndex(idx))
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.entries.len() as u64);
        for s in &self.entries {
            put_varint(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<StringTable, DumpError> {
        let n = r.varint("string table len")?;
        if n > r.remaining() as u64 {
            return Err(DumpError::BadCount("string table"));
        }
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let len = r.varint("string len")?;
            let bytes = r.take(len as usize, "string bytes")?;
            entries.push(String::from_utf8(bytes.to_vec()).map_err(|_| DumpError::BadUtf8)?);
        }
        Ok(StringTable { entries })
    }
}

// ----- primitives -------------------------------------------------------

/// Appends `value` as a LEB128 varint (1–10 bytes).
pub fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A cursor over a decode buffer with named-field error reporting.
#[derive(Debug)]
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn byte(&mut self, what: &'static str) -> Result<u8, DumpError> {
        let b = *self.bytes.get(self.pos).ok_or(DumpError::Truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DumpError> {
        if self.remaining() < n {
            return Err(DumpError::Truncated(what));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn varint(&mut self, what: &'static str) -> Result<u64, DumpError> {
        let mut value = 0u64;
        for shift in 0..10 {
            let byte = self.byte(what)?;
            value |= ((byte & 0x7f) as u64) << (7 * shift);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(DumpError::Overlong)
    }
}

// ----- RLE --------------------------------------------------------------
//
// Byte-wise run-length coding with a literal escape: control byte
// `c < 0x80` copies the next `c + 1` bytes verbatim; `c >= 0x80`
// repeats the next byte `c - 0x80 + 3` times (runs shorter than 3 are
// cheaper as literals). Worst case inflation is 1/128.

/// RLE-encodes `input` (see the module source for the scheme).
pub fn rle_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 8);
    let mut i = 0;
    let mut literal_start = 0;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut start = from;
        while start < to {
            let chunk = (to - start).min(128);
            out.push((chunk - 1) as u8);
            out.extend_from_slice(&input[start..start + chunk]);
            start += chunk;
        }
    };
    while i < input.len() {
        let byte = input[i];
        let mut run = 1;
        while i + run < input.len() && input[i + run] == byte && run < 130 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, literal_start, i, input);
            out.push(0x80 + (run - 3) as u8);
            out.push(byte);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, literal_start, input.len(), input);
    out
}

/// Inverts [`rle_compress`].
///
/// # Errors
///
/// [`DumpError::Truncated`] when a control byte promises more input
/// than remains.
pub fn rle_decompress(input: &[u8]) -> Result<Vec<u8>, DumpError> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0;
    while i < input.len() {
        let control = input[i];
        i += 1;
        if control < 0x80 {
            let n = control as usize + 1;
            if i + n > input.len() {
                return Err(DumpError::Truncated("rle literal run"));
            }
            out.extend_from_slice(&input[i..i + n]);
            i += n;
        } else {
            let n = (control - 0x80) as usize + 3;
            let byte = *input
                .get(i)
                .ok_or(DumpError::Truncated("rle repeat byte"))?;
            i += 1;
            out.resize(out.len() + n, byte);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u16, ts: u64, hook: Hook, a: u64, b: u64) -> Event {
        let mut e = Event::new(thread, SchemeId::EBR, hook, a, b);
        e.ts = ts;
        e
    }

    fn sample_dump() -> FlightDump {
        let mut src = SourceDump::new("EBR");
        src.dropped = 7;
        src.trimmed = 2;
        src.events = vec![
            ev(0, 10, Hook::Retire, 0xdead_beef, 3),
            ev(1, 11, Hook::Fault, 0, 5),
            ev(0, 12, Hook::Adopt, 4, 9),
            ev(1, 20, Hook::Reclaim, 0xdead_beef, 10),
        ];
        src.stats = Some(DumpStats {
            retired_now: 1,
            retired_peak: 12,
            total_retired: 40,
            total_reclaimed: 39,
            era: 6,
        });
        let metrics = Metrics::new(4);
        metrics.count_hook(Hook::Retire);
        metrics.blame(2);
        metrics.footprint_peak.record(12);
        metrics.reclaim_latency.record(5);
        src.metrics = Some(MetricsDump::capture(&metrics));
        FlightDump {
            version: DUMP_VERSION,
            wall_unix_ms: 1_700_000_000_123,
            window_ms: 30_000,
            sources: vec![src],
        }
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint("v").unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn rle_roundtrips_and_compresses_runs() {
        let zeros = vec![0u8; 1000];
        let packed = rle_compress(&zeros);
        assert!(
            packed.len() < 20,
            "1000 zeros must collapse, got {}",
            packed.len()
        );
        assert_eq!(rle_decompress(&packed).unwrap(), zeros);

        let mixed: Vec<u8> = (0..=255u8).chain(std::iter::repeat_n(9, 40)).collect();
        assert_eq!(rle_decompress(&rle_compress(&mixed)).unwrap(), mixed);

        let empty: &[u8] = &[];
        assert_eq!(rle_decompress(&rle_compress(empty)).unwrap(), empty);
    }

    #[test]
    fn encode_decode_roundtrip_uncompressed_and_compressed() {
        let dump = sample_dump();
        for compress in [false, true] {
            let bytes = dump.encode(compress);
            let back = FlightDump::decode(&bytes).unwrap();
            assert_eq!(back, dump, "compress={compress}");
        }
    }

    #[test]
    fn compression_only_claimed_when_it_helps() {
        // A dump with long zero runs (blame array) must actually pick
        // the RLE branch.
        let mut src = SourceDump::new("x");
        let metrics = Metrics::new(64);
        src.metrics = Some(MetricsDump::capture(&metrics));
        let dump = FlightDump {
            sources: vec![src],
            ..FlightDump::new()
        };
        let packed = dump.encode(true);
        let plain = dump.encode(false);
        assert!(packed.len() <= plain.len());
        assert_eq!(
            FlightDump::decode(&packed).unwrap(),
            FlightDump::decode(&plain).unwrap()
        );
    }

    #[test]
    fn header_is_checked() {
        let dump = sample_dump();
        let good = dump.encode(false);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(FlightDump::decode(&bad_magic), Err(DumpError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[7] = 99;
        assert_eq!(
            FlightDump::decode(&bad_version),
            Err(DumpError::UnsupportedVersion(99))
        );

        let mut bad_flags = good.clone();
        bad_flags[8] = 0x40;
        assert_eq!(
            FlightDump::decode(&bad_flags),
            Err(DumpError::UnsupportedFlags(0x40))
        );

        assert_eq!(
            FlightDump::decode(&good[..5]),
            Err(DumpError::Truncated("header"))
        );
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let bytes = sample_dump().encode(false);
        for cut in 9..bytes.len() {
            // Every prefix must fail cleanly (or, at exact field
            // boundaries near the end, decode a shorter-but-valid
            // dump is impossible here since counts are pinned).
            let _ = FlightDump::decode(&bytes[..cut]).unwrap_err();
        }
    }

    #[test]
    fn per_thread_delta_encoding_preserves_merged_order() {
        let mut src = SourceDump::new("m");
        // Interleaved threads with gaps; merged order must survive.
        src.events = vec![
            ev(3, 5, Hook::BeginOp, 0, 0),
            ev(0, 6, Hook::Retire, 1, 1),
            ev(3, 7, Hook::Load, 2, 2),
            ev(0, 9, Hook::Reclaim, 1, 3),
            ev(7, 100, Hook::Advance, 3, 0),
        ];
        let dump = FlightDump {
            sources: vec![src.clone()],
            ..FlightDump::new()
        };
        let back = FlightDump::decode(&dump.encode(true)).unwrap();
        assert_eq!(back.sources[0].events, src.events);
    }

    #[test]
    fn unknown_hook_bytes_survive_a_roundtrip() {
        // A dump written by a future vocabulary must not be destroyed
        // by re-encoding: the raw hook byte is preserved.
        let mut e = ev(0, 1, Hook::Sample, 0, 0);
        e.hook = 200;
        let mut src = SourceDump::new("future");
        src.events = vec![e];
        let dump = FlightDump {
            sources: vec![src],
            ..FlightDump::new()
        };
        let back = FlightDump::decode(&dump.encode(false)).unwrap();
        assert_eq!(back.sources[0].events[0].hook, 200);
    }
}
