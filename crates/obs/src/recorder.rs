//! The [`Recorder`] facade and per-thread [`ThreadTracer`] handles.
//!
//! A `Recorder` owns the global logical clock, the aggregate
//! [`Metrics`], and one [`Ring`] per issued tracer. Tracers are the
//! only write path: each holds an exclusive `Arc` to its own ring, so
//! the single-writer contract is enforced by construction. Draining
//! merges every ring into one timestamp-ordered log.
//!
//! With the `rt` feature disabled, [`ThreadTracer`] is a zero-sized
//! type and every emit is an empty inline function — the instrumented
//! code compiles to exactly what it was before instrumentation.

use crate::event::{Event, Hook, SchemeId};
use crate::metrics::Metrics;
#[cfg(feature = "rt")]
use crate::ring::Ring;

#[cfg(feature = "rt")]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
#[cfg(feature = "rt")]
use std::sync::Mutex;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

#[cfg(feature = "rt")]
#[derive(Debug)]
struct RecorderCore {
    clock: AtomicU64,
    metrics: Metrics,
    rings: Mutex<Vec<Arc<Ring>>>,
    ring_capacity: usize,
}

/// Shared handle to a trace session. Cloning is cheap; all clones feed
/// the same clock, metrics, and drain pool.
#[derive(Debug, Clone)]
pub struct Recorder {
    #[cfg(feature = "rt")]
    core: Arc<RecorderCore>,
    /// Kept alive even without `rt` so metric accessors stay usable
    /// (they simply never get written to by tracers).
    #[cfg(not(feature = "rt"))]
    metrics: Arc<Metrics>,
}

impl Recorder {
    /// A recorder with blame slots for `max_threads` and the default
    /// ring capacity.
    pub fn new(max_threads: usize) -> Recorder {
        Recorder::with_ring_capacity(max_threads, DEFAULT_RING_CAPACITY)
    }

    /// A recorder whose tracers get rings of `ring_capacity` events.
    pub fn with_ring_capacity(max_threads: usize, ring_capacity: usize) -> Recorder {
        #[cfg(feature = "rt")]
        {
            Recorder {
                core: Arc::new(RecorderCore {
                    clock: AtomicU64::new(1),
                    metrics: Metrics::new(max_threads),
                    rings: Mutex::new(Vec::new()),
                    ring_capacity,
                }),
            }
        }
        #[cfg(not(feature = "rt"))]
        {
            let _ = ring_capacity;
            Recorder {
                metrics: Arc::new(Metrics::new(max_threads)),
            }
        }
    }

    /// The aggregate metrics block.
    pub fn metrics(&self) -> &Metrics {
        #[cfg(feature = "rt")]
        {
            &self.core.metrics
        }
        #[cfg(not(feature = "rt"))]
        {
            &self.metrics
        }
    }

    /// Current logical time (next timestamp to be issued).
    pub fn now(&self) -> u64 {
        #[cfg(feature = "rt")]
        {
            self.core.clock.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "rt"))]
        {
            0
        }
    }

    /// Draws a fresh timestamp from the global clock.
    #[inline]
    pub fn tick(&self) -> u64 {
        #[cfg(feature = "rt")]
        {
            // SAFETY(ordering): Relaxed — the clock is a Lamport-style
            // tick for log interleaving, not a synchronization point;
            // per-thread monotonicity is all analysis needs.
            self.core.clock.fetch_add(1, Ordering::Relaxed)
        }
        #[cfg(not(feature = "rt"))]
        {
            0
        }
    }

    /// Issues a tracer for thread slot `thread` attributed to
    /// `scheme`. Allocates (and registers) a private ring — call at
    /// registration time, not on the hot path.
    pub fn tracer(&self, thread: u16, scheme: SchemeId) -> ThreadTracer {
        #[cfg(feature = "rt")]
        {
            let ring = Arc::new(Ring::new(self.core.ring_capacity));
            self.core.rings.lock().unwrap().push(Arc::clone(&ring));
            ThreadTracer {
                inner: Some(TracerInner {
                    recorder: Arc::clone(&self.core),
                    ring,
                    thread,
                    scheme,
                }),
            }
        }
        #[cfg(not(feature = "rt"))]
        {
            let _ = (thread, scheme);
            ThreadTracer {}
        }
    }

    /// Drains every ring and returns the merged, timestamp-ordered
    /// log. Safe to call while writers are active (in-flight events
    /// appear in a later drain); safe to call repeatedly (each event
    /// is returned once).
    pub fn drain(&self) -> TraceLog {
        self.drain_since(0)
    }

    /// Incremental drain with a logical-time cutoff: like [`drain`],
    /// but events older than `since` are discarded instead of
    /// returned (the flight recorder's last-N-seconds snapshot maps a
    /// wall-clock window to a clock tick and cuts here).
    ///
    /// The ring cursors always advance past everything drained, so two
    /// consecutive calls — with any cutoffs — never return the same
    /// event twice, and an event not returned was either below the
    /// cutoff or is counted in [`TraceLog::dropped`]; nothing is lost
    /// silently.
    ///
    /// [`drain`]: Recorder::drain
    pub fn drain_since(&self, since: u64) -> TraceLog {
        #[cfg(feature = "rt")]
        {
            let rings = self.core.rings.lock().unwrap();
            let mut events = Vec::new();
            for ring in rings.iter() {
                ring.drain_into(&mut events);
            }
            let dropped = rings.iter().map(|r| r.dropped()).sum();
            drop(rings);
            if since > 0 {
                events.retain(|e| e.ts >= since);
            }
            events.sort_by_key(|e| e.ts);
            TraceLog { events, dropped }
        }
        #[cfg(not(feature = "rt"))]
        {
            let _ = since;
            TraceLog {
                events: Vec::new(),
                dropped: 0,
            }
        }
    }

    /// Cumulative events lost to ring overwrite across the session, as
    /// counted at drain time (call after a drain for an up-to-date
    /// figure). Lets run reports surface truncation without consuming
    /// the rings themselves.
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "rt")]
        {
            let rings = self.core.rings.lock().unwrap();
            rings.iter().map(|r| r.dropped()).sum()
        }
        #[cfg(not(feature = "rt"))]
        {
            0
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(64)
    }
}

/// A drained, merged, timestamp-ordered batch of events.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Events in ascending `ts` order.
    pub events: Vec<Event>,
    /// Cumulative events lost to ring overwrite across the session.
    pub dropped: u64,
}

impl TraceLog {
    /// Events matching `hook`.
    pub fn with_hook(&self, hook: Hook) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.hook == hook as u8)
    }

    /// True when `events` is non-decreasing in `ts` (drained logs
    /// always are; exposed for tests and sanity checks).
    pub fn is_time_ordered(&self) -> bool {
        self.events.windows(2).all(|w| w[0].ts <= w[1].ts)
    }
}

#[cfg(feature = "rt")]
#[derive(Debug)]
struct TracerInner {
    recorder: Arc<RecorderCore>,
    ring: Arc<Ring>,
    thread: u16,
    scheme: SchemeId,
}

/// A per-thread emit handle. One tracer = one writer = one ring; hand
/// each instrumented thread its own (via [`Recorder::tracer`]).
///
/// The disabled (default) state — from [`ThreadTracer::disabled`] or
/// any tracer when the `rt` feature is off — makes every emit a no-op
/// without branching on anything but a local `Option`.
#[derive(Debug, Default)]
pub struct ThreadTracer {
    #[cfg(feature = "rt")]
    inner: Option<TracerInner>,
}

impl ThreadTracer {
    /// A tracer that ignores everything (zero cost, no recorder).
    pub const fn disabled() -> ThreadTracer {
        #[cfg(feature = "rt")]
        {
            ThreadTracer { inner: None }
        }
        #[cfg(not(feature = "rt"))]
        {
            ThreadTracer {}
        }
    }

    /// Whether emits actually record anything.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "rt")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "rt"))]
        {
            false
        }
    }

    /// Emits one event under this tracer's thread and scheme. Hot
    /// path: a clock `fetch_add`, a hook-counter `fetch_add`, and a
    /// ring push. Never allocates, never blocks.
    #[inline]
    pub fn emit(&mut self, hook: Hook, a: u64, b: u64) {
        #[cfg(feature = "rt")]
        if let Some(inner) = &self.inner {
            let mut event = Event::new(inner.thread, inner.scheme, hook, a, b);
            // SAFETY(ordering): Relaxed — timestamp tick; the ring's
            // seqlock Release publishes the event itself.
            event.ts = inner.recorder.clock.fetch_add(1, Ordering::Relaxed);
            inner.recorder.metrics.count_hook(hook);
            inner.ring.push(event);
        }
        #[cfg(not(feature = "rt"))]
        {
            let _ = (hook, a, b);
        }
    }

    /// Emits with an explicit thread slot (for single-tracer producers
    /// that multiplex several logical threads, like the simulator).
    #[inline]
    pub fn emit_for(&mut self, thread: u16, hook: Hook, a: u64, b: u64) {
        #[cfg(feature = "rt")]
        if let Some(inner) = &self.inner {
            let mut event = Event::new(thread, inner.scheme, hook, a, b);
            // SAFETY(ordering): Relaxed — timestamp tick, as in `emit`.
            event.ts = inner.recorder.clock.fetch_add(1, Ordering::Relaxed);
            inner.recorder.metrics.count_hook(hook);
            inner.ring.push(event);
        }
        #[cfg(not(feature = "rt"))]
        {
            let _ = (thread, hook, a, b);
        }
    }

    /// The metrics block of the recorder backing this tracer, when
    /// enabled. Lets instrumented code record latencies or blame
    /// without a second handle.
    pub fn metrics(&self) -> Option<&Metrics> {
        #[cfg(feature = "rt")]
        {
            self.inner.as_ref().map(|inner| &inner.recorder.metrics)
        }
        #[cfg(not(feature = "rt"))]
        {
            None
        }
    }

    /// A fresh timestamp from the backing clock (0 when disabled).
    /// Used to stamp retire times for latency measurement.
    #[inline]
    pub fn stamp(&self) -> u64 {
        #[cfg(feature = "rt")]
        {
            match &self.inner {
                // SAFETY(ordering): Relaxed — timestamp tick, as in
                // `emit`; stamps are compared, never synchronized on.
                Some(inner) => inner.recorder.clock.fetch_add(1, Ordering::Relaxed),
                None => 0,
            }
        }
        #[cfg(not(feature = "rt"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = ThreadTracer::disabled();
        assert!(!t.is_enabled());
        t.emit(Hook::Retire, 1, 2);
        assert_eq!(t.stamp(), 0);
        assert!(t.metrics().is_none());
    }

    #[cfg(feature = "rt")]
    #[test]
    fn merged_drain_is_time_ordered_across_tracers() {
        let rec = Recorder::new(4);
        let mut t0 = rec.tracer(0, SchemeId::EBR);
        let mut t1 = rec.tracer(1, SchemeId::EBR);
        for i in 0..50 {
            t0.emit(Hook::Load, i, 0);
            t1.emit(Hook::Retire, i, 0);
        }
        let log = rec.drain();
        assert_eq!(log.events.len(), 100);
        assert!(log.is_time_ordered());
        assert_eq!(log.with_hook(Hook::Retire).count(), 50);
        assert_eq!(rec.metrics().hook_count(Hook::Load), 50);
        // Timestamps are globally unique (strict order after sort).
        assert!(log.events.windows(2).all(|w| w[0].ts < w[1].ts));
        // Re-draining returns nothing new.
        assert!(rec.drain().events.is_empty());
    }

    #[cfg(feature = "rt")]
    #[test]
    fn consecutive_drains_partition_without_loss_or_duplication() {
        let rec = Recorder::new(2);
        let mut t = rec.tracer(0, SchemeId::HP);
        for i in 0..40 {
            t.emit(Hook::Retire, i, 0);
        }
        let cut = rec.now();
        for i in 40..100 {
            t.emit(Hook::Retire, i, 0);
        }
        // First drain takes everything at or after `cut`; the earlier
        // events are gone (cursor advanced), not replayed later.
        let recent = rec.drain_since(cut);
        assert_eq!(recent.events.len(), 60);
        assert!(recent.events.iter().all(|e| e.ts >= cut && e.a >= 40));

        for i in 100..120 {
            t.emit(Hook::Retire, i, 0);
        }
        let next = rec.drain_since(0);
        assert_eq!(next.events.len(), 20, "no duplicates, no losses");
        assert!(next.events.iter().all(|e| e.a >= 100));
        assert_eq!(rec.dropped(), 0);
        assert!(rec.drain_since(0).events.is_empty());
    }

    #[cfg(feature = "rt")]
    #[test]
    fn emit_for_attributes_threads() {
        let rec = Recorder::new(8);
        let mut t = rec.tracer(0, SchemeId::NONE);
        t.emit_for(5, Hook::Phase, 1, 0);
        let log = rec.drain();
        assert_eq!(log.events[0].thread, 5);
    }
}
