//! The fixed-size trace event record and its vocabulary of hooks.
//!
//! Events are plain-old-data so the hot path is a handful of stores
//! into a preallocated ring slot: no allocation, no formatting, no
//! locks. Interpretation (names, JSON, tables) happens at drain time.

use std::fmt;

/// Which instrumented hook produced an event.
///
/// The first block mirrors the [`era-smr` `Smr` trait] surface, the
/// second block is the simulator's safety oracle (Def. 4.2) and the
/// Figure-1 theorem driver, and the tail is shared bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Hook {
    /// `Smr::begin_op` / `SimScheme::begin_op`: an operation opened a
    /// protected region.
    BeginOp = 0,
    /// `Smr::end_op`: the protected region closed.
    EndOp = 1,
    /// `Smr::load`: a protected load of a shared pointer (`a` = slot,
    /// `b` = observed pointer/address).
    Load = 2,
    /// `Smr::retire`: a node was unlinked and handed to the scheme
    /// (`a` = address, `b` = retired-population after the call).
    Retire = 3,
    /// A retired node was actually freed (`a` = address, `b` =
    /// retire→reclaim latency in trace ticks).
    Reclaim = 4,
    /// A reservation was published (HP/HE/IBR protect, EBR/QSBR pin;
    /// `a` = slot, `b` = value/era).
    Reserve = 5,
    /// A restart was requested (NBR neutralization, VBR version check;
    /// `a` = cause discriminant).
    Restart = 6,
    /// The scheme advanced a global epoch/era (`a` = new value).
    Advance = 7,
    /// Reclamation was blocked by a stalled peer (`a` = blamed thread
    /// slot, `b` = nodes still held).
    Blocked = 8,

    /// The oracle validated one memory access (Def. 4.2; `a` =
    /// address, `b` = access discriminant).
    OracleCheck = 9,
    /// The oracle recorded a safety violation (`a` = address, `b` =
    /// total violations so far).
    OracleViolation = 10,
    /// A Figure-1 phase transition in the theorem driver (`a` = phase
    /// index; see [`crate::phase_name`]).
    Phase = 11,
    /// A simulated operation rolled back (optimistic schemes).
    Rollback = 12,
    /// A node entered the simulated heap (`a` = address).
    Alloc = 13,
    /// A footprint sample (`a` = retired population, `b` = bytes or
    /// node count of live space, depending on the producer).
    Sample = 14,

    /// The era-kv navigator changed a shard's health class (`a` =
    /// shard index, `b` = `old_state << 8 | new_state` with states
    /// 0=Robust, 1=Degrading, 2=Violating, 3=Quarantined).
    Navigate = 15,
    /// Admission control rejected a write with `Overloaded` (`a` =
    /// shard index, `b` = sheds so far on that shard).
    Shed = 16,

    /// An injected or observed fault (era-chaos; `a` = fault action
    /// discriminant, `b` = the global op index it fired at).
    Fault = 17,
    /// A scheme adopted a dead context's orphaned garbage (`a` =
    /// nodes adopted, `b` = retired population after adoption).
    Adopt = 18,

    /// A serving front-end accepted a connection (era-net; `a` =
    /// connection id, `b` = connections waiting for a worker after
    /// the accept).
    Accept = 19,
}

impl Hook {
    /// Number of distinct hooks (array-sizing constant).
    pub const COUNT: usize = 20;

    /// Every hook, in discriminant order.
    pub const ALL: [Hook; Hook::COUNT] = [
        Hook::BeginOp,
        Hook::EndOp,
        Hook::Load,
        Hook::Retire,
        Hook::Reclaim,
        Hook::Reserve,
        Hook::Restart,
        Hook::Advance,
        Hook::Blocked,
        Hook::OracleCheck,
        Hook::OracleViolation,
        Hook::Phase,
        Hook::Rollback,
        Hook::Alloc,
        Hook::Sample,
        Hook::Navigate,
        Hook::Shed,
        Hook::Fault,
        Hook::Adopt,
        Hook::Accept,
    ];

    /// Stable lower-case name used in JSON reports and trace dumps.
    pub fn name(self) -> &'static str {
        match self {
            Hook::BeginOp => "begin_op",
            Hook::EndOp => "end_op",
            Hook::Load => "load",
            Hook::Retire => "retire",
            Hook::Reclaim => "reclaim",
            Hook::Reserve => "reserve",
            Hook::Restart => "restart",
            Hook::Advance => "advance",
            Hook::Blocked => "blocked",
            Hook::OracleCheck => "oracle_check",
            Hook::OracleViolation => "oracle_violation",
            Hook::Phase => "phase",
            Hook::Rollback => "rollback",
            Hook::Alloc => "alloc",
            Hook::Sample => "sample",
            Hook::Navigate => "navigate",
            Hook::Shed => "shed",
            Hook::Fault => "fault",
            Hook::Adopt => "adopt",
            Hook::Accept => "accept",
        }
    }

    /// The inverse of the `as u8` cast; `None` for out-of-range bytes.
    pub fn from_u8(raw: u8) -> Option<Hook> {
        Hook::ALL.get(raw as usize).copied()
    }
}

impl fmt::Display for Hook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifies which reclamation scheme produced an event, so traces
/// from several schemes can share one recorder and still be told
/// apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchemeId(pub u8);

impl SchemeId {
    /// No scheme attributed (simulator infrastructure, bench harness).
    pub const NONE: SchemeId = SchemeId(0);
    /// Epoch-based reclamation.
    pub const EBR: SchemeId = SchemeId(1);
    /// Hazard pointers.
    pub const HP: SchemeId = SchemeId(2);
    /// Hazard eras.
    pub const HE: SchemeId = SchemeId(3);
    /// Interval-based reclamation.
    pub const IBR: SchemeId = SchemeId(4);
    /// Neutralization-based reclamation.
    pub const NBR: SchemeId = SchemeId(5);
    /// Quiescent-state-based reclamation.
    pub const QSBR: SchemeId = SchemeId(6);
    /// Version-based reclamation.
    pub const VBR: SchemeId = SchemeId(7);
    /// The no-reclamation (leak) baseline.
    pub const LEAK: SchemeId = SchemeId(8);

    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self.0 {
            1 => "ebr",
            2 => "hp",
            3 => "he",
            4 => "ibr",
            5 => "nbr",
            6 => "qsbr",
            7 => "vbr",
            8 => "leak",
            _ => "none",
        }
    }

    /// Best-effort mapping from a scheme's display name (as returned
    /// by `Smr::name()` / `SimScheme::name()`) to an id.
    pub fn from_name(name: &str) -> SchemeId {
        let lower = name.to_ascii_lowercase();
        for id in [
            SchemeId::QSBR, // check before EBR: "qsbr" does not contain "ebr"… but be explicit
            SchemeId::EBR,
            SchemeId::HE, // check before HP: "he" vs "hp" are distinct prefixes anyway
            SchemeId::HP,
            SchemeId::IBR,
            SchemeId::NBR,
            SchemeId::VBR,
            SchemeId::LEAK,
        ] {
            if lower.contains(id.name()) {
                return id;
            }
        }
        SchemeId::NONE
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One trace record: 32 bytes, `Copy`, no interior pointers.
///
/// `ts` comes from the recorder's global logical clock, so events from
/// different threads (and different schemes sharing a recorder) merge
/// into a single total order. `a`/`b` are hook-specific payloads — see
/// the [`Hook`] variant docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Event {
    /// Logical timestamp (global, totally ordered).
    pub ts: u64,
    /// First hook-specific payload word.
    pub a: u64,
    /// Second hook-specific payload word.
    pub b: u64,
    /// Producing thread slot.
    pub thread: u16,
    /// Producing scheme ([`SchemeId`] raw value).
    pub scheme: u8,
    /// Producing hook ([`Hook`] discriminant).
    pub hook: u8,
    pub(crate) _pad: u32,
}

impl Event {
    /// A zeroed placeholder (what empty ring slots hold).
    pub const EMPTY: Event = Event {
        ts: 0,
        a: 0,
        b: 0,
        thread: 0,
        scheme: 0,
        hook: 0,
        _pad: 0,
    };

    /// Builds an event; `ts` is filled in by the tracer.
    pub fn new(thread: u16, scheme: SchemeId, hook: Hook, a: u64, b: u64) -> Event {
        Event {
            ts: 0,
            a,
            b,
            thread,
            scheme: scheme.0,
            hook: hook as u8,
            _pad: 0,
        }
    }

    /// The hook, decoded (emitted events always decode successfully).
    pub fn hook(&self) -> Hook {
        Hook::from_u8(self.hook).expect("event holds a valid hook discriminant")
    }

    /// The scheme id, decoded.
    pub fn scheme(&self) -> SchemeId {
        SchemeId(self.scheme)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>6}] t{:<2} {:<5} {:<16} a={:#x} b={}",
            self.ts,
            self.thread,
            self.scheme().name(),
            self.hook().name(),
            self.a,
            self.b
        )
    }
}

/// Names for the Figure-1 phase indices carried by [`Hook::Phase`]
/// events (`a` payload).
pub fn phase_name(index: u64) -> &'static str {
    match index {
        0 => "setup",
        1 => "t1_blocks_mid_delete",
        2 => "t2_deletes_node1",
        3 => "churn",
        4 => "solo_run",
        5 => "verdict",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_32_bytes_and_copy() {
        assert_eq!(std::mem::size_of::<Event>(), 32);
        let e = Event::new(3, SchemeId::HP, Hook::Retire, 0xdead, 7);
        let f = e; // Copy
        assert_eq!(e, f);
        assert_eq!(f.hook(), Hook::Retire);
        assert_eq!(f.scheme(), SchemeId::HP);
    }

    #[test]
    fn hook_roundtrip_and_names_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, hook) in Hook::ALL.iter().enumerate() {
            assert_eq!(*hook as u8 as usize, i);
            assert_eq!(Hook::from_u8(*hook as u8), Some(*hook));
            assert!(
                names.insert(hook.name()),
                "duplicate hook name {}",
                hook.name()
            );
        }
        assert_eq!(Hook::from_u8(Hook::COUNT as u8), None);
    }

    #[test]
    fn scheme_id_from_name_matches_display_names() {
        for (display, id) in [
            ("EBR", SchemeId::EBR),
            ("HP", SchemeId::HP),
            ("HE", SchemeId::HE),
            ("IBR(2GEIBR)", SchemeId::IBR),
            ("NBR", SchemeId::NBR),
            ("QSBR", SchemeId::QSBR),
            ("VBR", SchemeId::VBR),
            ("Leak", SchemeId::LEAK),
            ("mystery", SchemeId::NONE),
        ] {
            assert_eq!(SchemeId::from_name(display), id, "{display}");
        }
    }
}
