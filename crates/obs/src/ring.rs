//! A single-writer, single-drainer, drop-oldest trace ring.
//!
//! Each instrumented thread owns exactly one [`Ring`] (enforced by
//! construction: [`crate::Recorder::tracer`] allocates a fresh ring
//! per tracer). The writer never blocks and never allocates: a push is
//! two atomic stores bracketing a plain 32-byte copy into a
//! preallocated slot. When the ring is full the oldest events are
//! overwritten — tracing sheds load instead of applying backpressure
//! to the algorithm under observation.
//!
//! The drainer may run concurrently with the writer. Each slot carries
//! a seqlock-style sequence word so the drainer can detect (and skip)
//! slots that were mid-overwrite while it was copying them; skipped
//! slots are accounted as dropped, never returned torn.
//!
//! Sequence protocol, for write position `pos` landing in slot
//! `pos & mask`:
//!
//! - writer: store `2*pos + 1` (relaxed), write the event, store
//!   `2*pos + 2` (release), advance `head` to `pos + 1` (release);
//! - drainer: for each `pos` in `[head - len, head)`: load seq
//!   (acquire), require exactly `2*pos + 2`, copy the event, fence,
//!   re-load seq and require it unchanged.
//!
//! Odd seq ⇒ a write is in flight; a different even value ⇒ the slot
//! now belongs to a newer generation (`pos + k·capacity`). Either way
//! the drainer skips.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::event::Event;

struct Slot {
    seq: AtomicU64,
    data: UnsafeCell<Event>,
}

/// Fixed-capacity drop-oldest event buffer. See the module docs for
/// the single-writer / single-drainer contract.
pub struct Ring {
    mask: u64,
    /// Next write position (monotone; wraps the slot array via `mask`).
    head: AtomicU64,
    /// First position the drainer has not yet consumed.
    tail: AtomicU64,
    /// Events overwritten or torn before the drainer could copy them.
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: `data` cells are only written by the single writer and only
// read by the single drainer under the seqlock protocol above; a
// failed validation discards the (possibly torn) copy.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// Creates a ring holding `capacity` events (rounded up to a power
    /// of two, minimum 8).
    pub fn new(capacity: usize) -> Ring {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                data: UnsafeCell::new(Event::EMPTY),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots,
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.mask as usize + 1
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overwrite (or torn reads), as counted at drain
    /// time; grows only when a drain observes loss.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one event, overwriting the oldest if full. Writer-side
    /// only — at most one thread may call this, ever (the owning
    /// tracer has `&mut self`, making misuse impossible through the
    /// public API).
    #[inline]
    pub fn push(&self, event: Event) {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        // Mark the slot as mid-write so a concurrent drainer discards
        // its copy; the release on the commit store publishes the data.
        //
        // SAFETY(ordering): Relaxed on the odd (mid-write) store — the
        // Release fence below orders it before the data write; the even
        // commit store and the head bump are Release so the drainer's
        // Acquire seq load / Acquire head load observe fully-written
        // data or a seq mismatch, never a silently torn event. SAFETY of
        // the volatile write: this is the single writer's own slot.
        slot.seq.store(2 * pos + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        unsafe { self.slot_write(slot, event) };
        // SAFETY(ordering): Release on commit + head bump, per above.
        slot.seq.store(2 * pos + 2, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// # Safety
    ///
    /// Caller must be the ring's single writer and have marked `slot`'s
    /// seq odd, so a concurrent drainer discards any overlapping copy.
    #[inline]
    unsafe fn slot_write(&self, slot: &Slot, event: Event) {
        // SAFETY: caller upholds the single-writer seqlock contract.
        unsafe { std::ptr::write_volatile(slot.data.get(), event) };
    }

    /// Copies every event the drainer has not yet seen into `out`, in
    /// push order, skipping any lost to overwrite. Drainer-side only —
    /// at most one thread may drain (the recorder serializes this).
    /// Returns the number of events appended.
    pub fn drain_into(&self, out: &mut Vec<Event>) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let cursor = self.tail.load(Ordering::Relaxed);
        // Anything older than one capacity behind head is already
        // overwritten (or about to be): start from the oldest slot
        // that can still validate.
        let lo = cursor.max(head.saturating_sub(self.capacity() as u64));
        let mut lost = lo - cursor;
        let before = out.len();
        for pos in lo..head {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != 2 * pos + 2 {
                // Mid-write or already a newer generation.
                lost += 1;
                continue;
            }
            // SAFETY: a possibly-torn copy out of the seqlock cell; the
            // seq re-check below discards it unless the slot was stable
            // across the whole read. Event is Copy + plain-old-data, so
            // even a torn value is not UB to materialize.
            let copy = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                lost += 1;
                continue;
            }
            out.push(copy);
        }
        // SAFETY(ordering): Relaxed — tail and dropped are only written
        // by the single drainer (the recorder serializes drains) and
        // only advisory to readers; no data is published through them.
        self.tail.store(head, Ordering::Relaxed);
        if lost > 0 {
            self.dropped.fetch_add(lost, Ordering::Relaxed);
        }
        out.len() - before
    }
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Hook, SchemeId};

    fn ev(n: u64) -> Event {
        let mut e = Event::new(0, SchemeId::NONE, Hook::Sample, n, 0);
        e.ts = n;
        e
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Ring::new(0).capacity(), 8);
        assert_eq!(Ring::new(9).capacity(), 16);
        assert_eq!(Ring::new(64).capacity(), 64);
    }

    #[test]
    fn drains_in_push_order() {
        let ring = Ring::new(16);
        for n in 0..10 {
            ring.push(ev(n));
        }
        let mut out = Vec::new();
        assert_eq!(ring.drain_into(&mut out), 10);
        assert_eq!(
            out.iter().map(|e| e.a).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        // Second drain starts where the first stopped.
        ring.push(ev(10));
        out.clear();
        assert_eq!(ring.drain_into(&mut out), 1);
        assert_eq!(out[0].a, 10);
    }

    #[test]
    fn wrap_drops_oldest_keeps_newest() {
        let ring = Ring::new(8);
        for n in 0..20 {
            ring.push(ev(n));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        // Only the last `capacity` events can survive.
        assert_eq!(
            out.iter().map(|e| e.a).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>()
        );
        assert_eq!(ring.dropped(), 12);
    }

    #[test]
    fn interleaved_drains_lose_nothing_without_wrap() {
        let ring = Ring::new(32);
        let mut out = Vec::new();
        for round in 0..10u64 {
            for n in 0..3 {
                ring.push(ev(round * 3 + n));
            }
            ring.drain_into(&mut out);
        }
        assert_eq!(out.len(), 30);
        assert!(out.windows(2).all(|w| w[0].a + 1 == w[1].a));
        assert_eq!(ring.dropped(), 0);
    }
}
