//! The crash-safe flight recorder: a persistence layer over
//! [`Recorder`] that turns volatile trace rings into replayable
//! `.eraflt` dump files ([`crate::dump`]).
//!
//! A [`FlightRecorder`] owns a set of *sources* — labelled recorders
//! (one per scheme in `chaos_bench`, one per shard in `kv_bench`) —
//! and maintains, per source, a retained event buffer plus a series of
//! *(wall instant, logical tick)* checkpoints. Because the trace clock
//! is logical, the checkpoints are what let "the last N seconds" be
//! translated into a clock cutoff: the newest checkpoint older than
//! the window gives the tick before which events are aged out.
//!
//! Three ways events reach a dump:
//!
//! - [`poll`](FlightRecorder::poll) — periodic incremental drain
//!   ([`Recorder::drain_since`]) into the retained buffer; call it
//!   from a watchdog/sampler loop so a crash loses at most one ring
//!   of un-drained events per thread.
//! - [`snapshot`](FlightRecorder::snapshot) — explicit: drain whatever
//!   is pending, apply the window, and assemble a [`FlightDump`] with
//!   each source's metrics, stats, and honest drop/trim counts.
//! - [`install_panic_hook`](FlightRecorder::install_panic_hook) — a
//!   chained `std::panic` hook that writes the snapshot to a file as
//!   the process dies, so a chaos-injected fault or a plain bug leaves
//!   a post-mortem artifact next to its `FaultPlan` JSON.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant, SystemTime};

use crate::dump::{DumpStats, FlightDump, MetricsDump, SourceDump};
use crate::event::Event;
use crate::recorder::{Recorder, TraceLog};

/// Default cap on retained events per source (~8 MiB of 32-byte
/// events). The oldest are trimmed — and counted — beyond this.
pub const DEFAULT_MAX_RETAINED: usize = 1 << 18;

#[derive(Debug)]
struct FlightSource {
    label: String,
    recorder: Recorder,
    /// Drained-but-not-yet-dumped events, ascending `ts`.
    retained: Vec<Event>,
    /// Events aged out of `retained` by the window or the memory cap.
    trimmed: u64,
    /// (wall instant, logical tick) pairs, oldest first.
    checkpoints: VecDeque<(Instant, u64)>,
    stats: Option<DumpStats>,
}

impl FlightSource {
    /// Drains pending ring events into the retained buffer and stamps
    /// a checkpoint, then ages out events past `window`/`max_retained`.
    fn poll(&mut self, now: Instant, window: Option<Duration>, max_retained: usize) {
        let log = self.recorder.drain_since(0);
        self.retained.extend(log.events);
        self.checkpoints.push_back((now, self.recorder.now()));
        if let Some(window) = window {
            // The newest checkpoint already older than the window maps
            // the window edge to a logical tick; everything before that
            // tick is out of the last N seconds.
            let mut cutoff = None;
            while let Some(&(t, ts)) = self.checkpoints.front() {
                if now.duration_since(t) <= window || self.checkpoints.len() == 1 {
                    break;
                }
                cutoff = Some(ts);
                self.checkpoints.pop_front();
            }
            if let Some(cutoff) = cutoff {
                let keep_from = self.retained.partition_point(|e| e.ts < cutoff);
                self.trimmed += keep_from as u64;
                self.retained.drain(..keep_from);
            }
        }
        if self.retained.len() > max_retained {
            let excess = self.retained.len() - max_retained;
            self.trimmed += excess as u64;
            self.retained.drain(..excess);
        }
    }

    fn to_source_dump(&self) -> SourceDump {
        SourceDump {
            label: self.label.clone(),
            dropped: self.recorder.dropped(),
            trimmed: self.trimmed,
            events: self.retained.clone(),
            metrics: Some(MetricsDump::capture(self.recorder.metrics())),
            stats: self.stats,
        }
    }
}

/// Crash-safe flight recorder over one or more [`Recorder`]s. See the
/// module docs for the lifecycle; all methods are callable from any
/// thread (internally serialized — this is the cold observation path,
/// never the emit hot path).
#[derive(Debug)]
pub struct FlightRecorder {
    window: Option<Duration>,
    max_retained: usize,
    sources: Mutex<Vec<FlightSource>>,
}

impl FlightRecorder {
    /// An unwindowed recorder: snapshots carry everything retained
    /// (up to the per-source memory cap).
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            window: None,
            max_retained: DEFAULT_MAX_RETAINED,
            sources: Mutex::new(Vec::new()),
        }
    }

    /// A recorder whose snapshots keep only the last `window` of
    /// events (as mapped through poll-time checkpoints).
    pub fn with_window(window: Duration) -> FlightRecorder {
        FlightRecorder {
            window: Some(window),
            ..FlightRecorder::new()
        }
    }

    /// Overrides the per-source retained-event cap (builder style).
    pub fn with_max_retained(mut self, max_retained: usize) -> Self {
        self.max_retained = max_retained.max(1);
        self
    }

    /// Convenience: a new unwindowed flight recorder already tracking
    /// `recorder` under `label`.
    pub fn single(label: &str, recorder: &Recorder) -> FlightRecorder {
        let flight = FlightRecorder::new();
        flight.add_source(label, recorder);
        flight
    }

    /// Registers a recorder as a dump source; returns its index (for
    /// [`set_stats`](Self::set_stats)). Labels identify schemes or
    /// shards in `era-view`; they need not be unique but should be.
    pub fn add_source(&self, label: &str, recorder: &Recorder) -> usize {
        let mut sources = self.lock();
        sources.push(FlightSource {
            label: label.to_string(),
            recorder: recorder.clone(),
            retained: Vec::new(),
            trimmed: 0,
            checkpoints: VecDeque::new(),
            stats: None,
        });
        sources.len() - 1
    }

    /// Attaches the latest scheme counters to source `idx` (they ride
    /// along in every subsequent snapshot). Out-of-range indices are
    /// ignored — the flight recorder never panics on its caller.
    pub fn set_stats(&self, idx: usize, stats: DumpStats) {
        if let Some(source) = self.lock().get_mut(idx) {
            source.stats = Some(stats);
        }
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.lock().len()
    }

    /// Drains every source's pending ring events into the retained
    /// buffers and advances the window. Call periodically (a sampler
    /// loop, an op-count stride) so ring overwrite — not the flight
    /// layer — is the only place history can be lost.
    pub fn poll(&self) {
        let now = Instant::now();
        for source in self.lock().iter_mut() {
            source.poll(now, self.window, self.max_retained);
        }
    }

    /// A clone of source `idx`'s retained events as a [`TraceLog`]
    /// (empty when out of range). Lets report collectors reuse the
    /// flight drain instead of racing it for ring events.
    pub fn retained_log(&self, idx: usize) -> TraceLog {
        let sources = self.lock();
        match sources.get(idx) {
            Some(s) => TraceLog {
                events: s.retained.clone(),
                dropped: s.recorder.dropped(),
            },
            None => TraceLog::default(),
        }
    }

    /// Drains pending events and assembles the dump: per source, the
    /// windowed retained events, a metrics capture, the latest stats,
    /// and the drop/trim accounting.
    pub fn snapshot(&self) -> FlightDump {
        self.poll();
        let sources = self.lock();
        FlightDump {
            version: crate::dump::DUMP_VERSION,
            wall_unix_ms: unix_ms(),
            window_ms: self.window.map(|w| w.as_millis() as u64).unwrap_or(0),
            sources: sources.iter().map(|s| s.to_source_dump()).collect(),
        }
    }

    /// Snapshots and writes a compressed `.eraflt` file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn snapshot_to_file(&self, path: &Path) -> std::io::Result<()> {
        let bytes = self.snapshot().encode(true);
        let mut file = std::fs::File::create(path)?;
        file.write_all(&bytes)?;
        file.flush()
    }

    /// Installs a chained panic hook that writes a crash dump to
    /// `path` as the process unwinds (the previous hook — usually the
    /// default backtrace printer — still runs first). Re-entrant and
    /// concurrent panics write at most one dump.
    ///
    /// The hook holds an `Arc` to this recorder, so the flight state
    /// stays alive for as long as the hook is installed.
    pub fn install_panic_hook(self: &Arc<Self>, path: impl Into<PathBuf>) {
        let flight = Arc::clone(self);
        let path = path.into();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            static WRITING: AtomicBool = AtomicBool::new(false);
            if WRITING.swap(true, Ordering::SeqCst) {
                return;
            }
            match flight.snapshot_to_file(&path) {
                Ok(()) => eprintln!(
                    "era-flight: wrote crash dump to {} (replay with `era-view`)",
                    path.display()
                ),
                Err(e) => eprintln!("era-flight: failed to write crash dump: {e}"),
            }
            WRITING.store(false, Ordering::SeqCst);
        }));
    }

    fn lock(&self) -> MutexGuard<'_, Vec<FlightSource>> {
        // A panicking peer must not block the crash dump: inherit the
        // (plain-data) state rather than propagating the poison.
        match self.sources.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(all(test, feature = "rt"))]
mod tests {
    use super::*;
    use crate::event::{Hook, SchemeId};

    #[test]
    #[cfg_attr(miri, ignore = "reads wall clock (Instant/SystemTime)")]
    fn snapshot_carries_events_metrics_and_stats() {
        let recorder = Recorder::new(4);
        let flight = FlightRecorder::single("EBR", &recorder);
        let mut t = recorder.tracer(0, SchemeId::EBR);
        t.emit(Hook::Retire, 0xabc, 1);
        t.emit(Hook::Reclaim, 0xabc, 2);
        flight.set_stats(
            0,
            DumpStats {
                retired_now: 0,
                retired_peak: 1,
                total_retired: 1,
                total_reclaimed: 1,
                era: 0,
            },
        );
        let dump = flight.snapshot();
        assert_eq!(dump.sources.len(), 1);
        let src = &dump.sources[0];
        assert_eq!(src.label, "EBR");
        assert_eq!(src.events.len(), 2);
        assert_eq!(src.dropped, 0);
        assert_eq!(src.stats.unwrap().retired_peak, 1);
        let m = src.metrics.as_ref().unwrap();
        assert_eq!(m.hook_count(Hook::Retire), 1);
        // Round-trip through bytes for good measure.
        let back = FlightDump::decode(&dump.encode(true)).unwrap();
        assert_eq!(back, dump);
    }

    #[test]
    #[cfg_attr(miri, ignore = "reads wall clock (Instant/SystemTime)")]
    fn poll_then_snapshot_does_not_duplicate_events() {
        let recorder = Recorder::new(2);
        let flight = FlightRecorder::single("s", &recorder);
        let mut t = recorder.tracer(0, SchemeId::HP);
        for i in 0..10 {
            t.emit(Hook::Retire, i, 0);
        }
        flight.poll();
        for i in 10..25 {
            t.emit(Hook::Retire, i, 0);
        }
        let dump = flight.snapshot();
        assert_eq!(dump.sources[0].events.len(), 25);
        let mut payloads: Vec<u64> = dump.sources[0].events.iter().map(|e| e.a).collect();
        payloads.dedup();
        assert_eq!(payloads, (0..25).collect::<Vec<_>>());
    }

    #[test]
    #[cfg_attr(miri, ignore = "reads wall clock (Instant/SystemTime)")]
    fn memory_cap_trims_oldest_and_counts_them() {
        let recorder = Recorder::new(2);
        let flight = FlightRecorder::single("s", &recorder).with_max_retained(16);
        let mut t = recorder.tracer(0, SchemeId::NONE);
        for i in 0..64 {
            t.emit(Hook::Sample, i, 0);
        }
        flight.poll();
        let dump = flight.snapshot();
        let src = &dump.sources[0];
        assert_eq!(src.events.len(), 16);
        assert_eq!(src.trimmed, 48);
        assert_eq!(src.events.first().unwrap().a, 48, "newest survive");
    }

    #[test]
    #[cfg_attr(miri, ignore = "reads wall clock (Instant/SystemTime)")]
    fn window_ages_out_old_checkpoints() {
        let recorder = Recorder::new(2);
        let flight = FlightRecorder::with_window(Duration::from_millis(5));
        flight.add_source("w", &recorder);
        let mut t = recorder.tracer(0, SchemeId::NONE);
        t.emit(Hook::Sample, 1, 0);
        flight.poll();
        std::thread::sleep(Duration::from_millis(30));
        t.emit(Hook::Sample, 2, 0);
        // Two polls after the sleep: the first establishes a checkpoint
        // beyond the window; the second applies the cutoff.
        flight.poll();
        std::thread::sleep(Duration::from_millis(30));
        let dump = flight.snapshot();
        let src = &dump.sources[0];
        assert!(
            src.events.iter().all(|e| e.a != 1),
            "pre-window event must be aged out, got {:?}",
            src.events
        );
        assert!(src.trimmed >= 1);
        assert_eq!(dump.window_ms, 5);
    }

    #[test]
    #[cfg_attr(miri, ignore = "file I/O and wall clock")]
    fn snapshot_to_file_writes_a_decodable_dump() {
        let recorder = Recorder::new(2);
        let flight = FlightRecorder::single("f", &recorder);
        let mut t = recorder.tracer(0, SchemeId::EBR);
        t.emit(Hook::Retire, 7, 1);
        let dir = std::env::temp_dir().join("era-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.eraflt");
        flight.snapshot_to_file(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let dump = FlightDump::decode(&bytes).unwrap();
        assert_eq!(dump.sources[0].events.len(), 1);
        assert!(dump.wall_unix_ms > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
