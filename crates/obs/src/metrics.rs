//! Always-on aggregate metrics: counters, high-water marks, log₂
//! histograms, and per-thread blame.
//!
//! Unlike the event rings these never drop data — they are single
//! atomic words (or small arrays of them) updated with relaxed RMWs,
//! cheap enough to leave on even when full event tracing is not.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::Hook;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A [`Counter`] alone on its cache line (mirrors `era_smr`'s
/// `CachePadded`, re-declared here because `era-obs` sits *below*
/// `era-smr` in the dependency graph). Used for the per-thread blame
/// slots: a blamed thread's watchdog increments must not bounce the
/// line under a neighbouring slot's updates.
#[derive(Debug, Default)]
#[repr(align(128))]
struct PaddedCounter(Counter);

/// A maximum-so-far gauge (e.g. footprint high-water mark).
#[derive(Debug, Default)]
pub struct HighWater(AtomicU64);

impl HighWater {
    /// Raises the mark to `value` if higher.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Highest value recorded.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Log2Histogram`]: one per possible
/// bit-length of a `u64`, plus one for zero.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free histogram with power-of-two bucket boundaries.
///
/// Bucket 0 holds exact zeros; bucket `k ≥ 1` holds values `v` with
/// `2^(k-1) <= v < 2^k`. Recording is one relaxed `fetch_add`.
pub struct Log2Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }
}

impl Log2Histogram {
    /// Bucket index for `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        // SAFETY(ordering): Relaxed — histogram buckets are telemetry;
        // snapshot() tolerates mid-flight increments by design.
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (out, bucket) in counts.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts }
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Log2Histogram({} samples)", self.snapshot().total())
    }
}

/// An owned copy of a [`Log2Histogram`]'s bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The raw per-bucket counts (index = [`Log2Histogram::bucket_of`]
    /// value). Exposed so serializers (the `.eraflt` dump) can
    /// round-trip a snapshot losslessly.
    pub fn counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Rebuilds a snapshot from raw bucket counts (the inverse of
    /// [`counts`](Self::counts), used by the dump decoder).
    pub fn from_counts(counts: [u64; HISTOGRAM_BUCKETS]) -> HistogramSnapshot {
        HistogramSnapshot { counts }
    }

    /// Non-empty buckets as `(upper_bound_exclusive, count)` pairs;
    /// bucket 0 reports as upper bound 1 (i.e. the value 0).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k >= 64 { u64::MAX } else { 1u64 << k }, c))
            .collect()
    }

    /// Accumulates another snapshot into this one (bucket-wise sum).
    /// Used by era-kv to merge per-shard latency histograms into one
    /// service-level distribution; log₂ buckets make this lossless.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (into, from) in self.counts.iter_mut().zip(&other.counts) {
            *into += from;
        }
    }

    /// An all-zero snapshot, the identity for [`merge`](Self::merge).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Upper bound (exclusive) of the bucket containing the `q`-th
    /// quantile (`0.0..=1.0`), or 0 if empty. A coarse but monotone
    /// summary — exact within a factor of two.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if k >= 64 { u64::MAX } else { 1u64 << k };
            }
        }
        u64::MAX
    }
}

/// The aggregate metric block owned by a [`crate::Recorder`].
#[derive(Debug)]
pub struct Metrics {
    /// Calls per instrumented hook, across all threads and schemes.
    hook_counts: [Counter; Hook::COUNT],
    /// Retire→reclaim latency in trace ticks.
    pub reclaim_latency: Log2Histogram,
    /// Highest retired-but-unreclaimed population ever observed.
    pub footprint_peak: HighWater,
    /// Times thread slot `i` was blamed for blocking reclamation
    /// (stalled-thread attribution; ERA robustness axis). One padded
    /// counter per slot — see [`PaddedCounter`].
    blame: Box<[PaddedCounter]>,
}

impl Metrics {
    /// Metrics sized for `max_threads` blame slots.
    pub fn new(max_threads: usize) -> Metrics {
        Metrics {
            hook_counts: std::array::from_fn(|_| Counter::default()),
            reclaim_latency: Log2Histogram::default(),
            footprint_peak: HighWater::default(),
            blame: (0..max_threads.max(1))
                .map(|_| PaddedCounter::default())
                .collect(),
        }
    }

    /// Bumps the call counter for `hook`.
    #[inline]
    pub fn count_hook(&self, hook: Hook) {
        self.hook_counts[hook as u8 as usize].add(1);
    }

    /// Calls observed for `hook`.
    pub fn hook_count(&self, hook: Hook) -> u64 {
        self.hook_counts[hook as u8 as usize].get()
    }

    /// Blames thread slot `thread` for blocking reclamation once.
    /// Out-of-range slots land on the last counter rather than
    /// panicking on the hot path.
    #[inline]
    pub fn blame(&self, thread: usize) {
        let idx = thread.min(self.blame.len() - 1);
        self.blame[idx].0.add(1);
    }

    /// Blame count per thread slot.
    pub fn blame_counts(&self) -> Vec<u64> {
        self.blame.iter().map(|c| c.0.get()).collect()
    }

    /// The thread slot with the highest blame count, if any blame was
    /// recorded at all.
    pub fn most_blamed(&self) -> Option<(usize, u64)> {
        self.blame
            .iter()
            .map(|c| c.0.get())
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .filter(|&(_, c)| c > 0)
    }

    // ----- watchdog read-side API -------------------------------------
    //
    // The era-kv navigator polls these from a thread that does not own
    // any tracer; everything below is read-only over relaxed atomics,
    // safe to call concurrently with the hot path.

    /// Total blame across all thread slots — a cheap "is anything
    /// blocking reclamation" signal for watchdogs.
    pub fn total_blame(&self) -> u64 {
        self.blame.iter().map(|c| c.0.get()).sum()
    }

    /// p99 retire→reclaim latency upper bound in trace ticks (0 when
    /// nothing has been reclaimed yet). Coarse (within 2×) but
    /// monotone under load, which is all a degradation classifier
    /// needs.
    pub fn reclaim_p99(&self) -> u64 {
        self.reclaim_latency.snapshot().quantile_upper_bound(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucketing() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_and_quantiles() {
        let h = Log2Histogram::default();
        for v in [0, 1, 1, 3, 7, 7, 7, 100] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.total(), 8);
        assert_eq!(
            snap.nonzero_buckets(),
            vec![(1, 1), (2, 2), (4, 1), (8, 3), (128, 1)]
        );
        assert_eq!(snap.quantile_upper_bound(0.0), 1);
        assert_eq!(snap.quantile_upper_bound(0.5), 4);
        assert_eq!(snap.quantile_upper_bound(1.0), 128);
        assert_eq!(
            HistogramSnapshot {
                counts: [0; HISTOGRAM_BUCKETS]
            }
            .quantile_upper_bound(0.5),
            0
        );
    }

    #[test]
    fn snapshot_merge_is_bucketwise_sum() {
        let a = Log2Histogram::default();
        let b = Log2Histogram::default();
        for v in [1, 3, 7] {
            a.record(v);
        }
        for v in [3, 100] {
            b.record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.total(), 5);
        assert_eq!(
            merged.nonzero_buckets(),
            vec![(2, 1), (4, 2), (8, 1), (128, 1)]
        );
    }

    #[test]
    fn watchdog_read_side() {
        let m = Metrics::new(3);
        assert_eq!(m.total_blame(), 0);
        assert_eq!(m.reclaim_p99(), 0);
        m.blame(0);
        m.blame(2);
        m.blame(2);
        assert_eq!(m.total_blame(), 3);
        for _ in 0..99 {
            m.reclaim_latency.record(1);
        }
        m.reclaim_latency.record(1000);
        assert_eq!(m.reclaim_p99(), 2);
        m.reclaim_latency.record(1000);
        m.reclaim_latency.record(1000);
        assert!(m.reclaim_p99() > 2);
    }

    #[test]
    fn high_water_and_blame() {
        let m = Metrics::new(4);
        m.footprint_peak.record(10);
        m.footprint_peak.record(3);
        assert_eq!(m.footprint_peak.get(), 10);
        m.blame(1);
        m.blame(1);
        m.blame(9); // clamps to last slot
        assert_eq!(m.blame_counts(), vec![0, 2, 0, 1]);
        assert_eq!(m.most_blamed(), Some((1, 2)));
        m.count_hook(Hook::Retire);
        assert_eq!(m.hook_count(Hook::Retire), 1);
        assert_eq!(m.hook_count(Hook::Reclaim), 0);
    }
}
