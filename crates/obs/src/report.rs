//! A tiny hand-rolled JSON emitter for structured run reports.
//!
//! The workspace builds offline with no serialization dependency, so
//! reports are assembled with this writer instead. It produces one
//! compact JSON object per call — suitable for JSON-lines files
//! (`BENCH_*.jsonl`) that downstream tooling can ingest line by line.

use crate::event::{Event, Hook};
use crate::metrics::{HistogramSnapshot, Metrics};

/// Builds one JSON object, field by field, in insertion order.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// An empty object (`{}` until fields are added).
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_json_string(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        push_json_string(&mut self.buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (JSON `null` when non-finite).
    pub fn f64(mut self, name: &str, value: f64) -> Self {
        self.key(name);
        if value.is_finite() {
            self.buf.push_str(&format!("{value:.6}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, value: bool) -> Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON (object,
    /// array, …). The caller vouches for its validity.
    pub fn raw(mut self, name: &str, json: &str) -> Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Adds an array of `(label, count)` pairs rendered as
    /// `[[label, count], ...]` — the histogram wire format.
    pub fn pairs(mut self, name: &str, pairs: &[(u64, u64)]) -> Self {
        self.key(name);
        self.buf.push('[');
        for (i, (a, b)) in pairs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&format!("[{a},{b}]"));
        }
        self.buf.push(']');
        self
    }

    /// Adds an array of unsigned integers.
    pub fn u64_array(mut self, name: &str, values: &[u64]) -> Self {
        self.key(name);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    /// Finishes the object and returns the JSON text (single line).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Renders a histogram snapshot as a JSON object with total, coarse
/// quantile bounds, and the non-empty `[upper_bound, count]` buckets.
pub fn histogram_json(snapshot: &HistogramSnapshot) -> String {
    JsonObject::new()
        .u64("total", snapshot.total())
        .u64("p50_le", snapshot.quantile_upper_bound(0.5))
        .u64("p99_le", snapshot.quantile_upper_bound(0.99))
        .u64("max_le", snapshot.quantile_upper_bound(1.0))
        .pairs("buckets", &snapshot.nonzero_buckets())
        .finish()
}

/// Renders the per-hook call counters as a JSON object keyed by hook
/// name, omitting hooks that never fired.
pub fn hook_counts_json(metrics: &Metrics) -> String {
    let mut obj = JsonObject::new();
    for hook in Hook::ALL {
        let n = metrics.hook_count(hook);
        if n > 0 {
            obj = obj.u64(hook.name(), n);
        }
    }
    obj.finish()
}

/// Renders one trace event as a JSON line (for trace exports).
pub fn event_json(event: &Event) -> String {
    JsonObject::new()
        .u64("ts", event.ts)
        .u64("thread", event.thread as u64)
        .str("scheme", event.scheme().name())
        .str("hook", event.hook().name())
        .u64("a", event.a)
        .u64("b", event.b)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SchemeId;
    use crate::metrics::Log2Histogram;

    #[test]
    fn object_renders_in_order_with_escapes() {
        let json = JsonObject::new()
            .str("name", "a\"b\\c\nd")
            .u64("n", 42)
            .f64("rate", 1.5)
            .f64("bad", f64::NAN)
            .bool("ok", true)
            .raw("nested", "{\"x\":1}")
            .u64_array("xs", &[1, 2, 3])
            .finish();
        assert_eq!(
            json,
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":42,\"rate\":1.500000,\"bad\":null,\
             \"ok\":true,\"nested\":{\"x\":1},\"xs\":[1,2,3]}"
        );
    }

    #[test]
    fn histogram_json_shape() {
        let h = Log2Histogram::default();
        h.record(3);
        h.record(3);
        h.record(300);
        let json = histogram_json(&h.snapshot());
        assert_eq!(
            json,
            "{\"total\":3,\"p50_le\":4,\"p99_le\":512,\"max_le\":512,\"buckets\":[[4,2],[512,1]]}"
        );
    }

    #[test]
    fn event_json_shape() {
        let mut e = Event::new(2, SchemeId::VBR, Hook::Reclaim, 16, 5);
        e.ts = 99;
        assert_eq!(
            event_json(&e),
            "{\"ts\":99,\"thread\":2,\"scheme\":\"vbr\",\"hook\":\"reclaim\",\"a\":16,\"b\":5}"
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
