//! # era-ds — lock-free data structures integrated with era-smr
//!
//! The data-structure side of the ERA theorem reproduction:
//!
//! * [`harris_list`] — **Harris's** lock-free linked list (Algorithm 1 of
//!   the paper): traversals walk through *marked, possibly retired*
//!   chains, so the list only accepts reclamation schemes implementing
//!   [`era_smr::SupportsUnlinkedTraversal`] (EBR, NBR, Leak). Trying to
//!   instantiate it with HP/HE/IBR is a compile error — Appendix E as a
//!   type error.
//! * [`michael_list`] — **Michael's** modification of the list
//!   (unlink-before-advance), compatible with every pointer-based scheme
//!   including HP/HE/IBR; the price is extra CAS work on traversals,
//!   which the `michael_vs_harris` benchmark measures (the paper's §6
//!   "practical importance" discussion).
//! * [`treiber_stack`] — Treiber's stack, works with every scheme.
//! * [`ms_queue`] — the Michael–Scott queue, works with every scheme.
//! * [`hash_set`] — Michael's hash set: an array of `michael_list`
//!   buckets.
//! * [`hash_map`] — the map-valued sibling over `michael_map` buckets;
//!   the shard-friendly building block of the era-kv serving layer
//!   (one map per independent reclaimer domain).
//! * [`skip_list`] — a lock-free skip list whose towers are Harris
//!   lists per level; it requires an [`era_smr::common::EpochProtected`]
//!   scheme because per-pointer protection would need a slot per level
//!   (the §5.1 discussion about hazard-pointer counts).
//! * [`vbr_list`] — a Harris-style list on the [`era_smr::vbr`] arena,
//!   with explicit `Stale`-rollback integration (the non-easy
//!   integration VBR demands).
//!
//! All structures implement integer-key *set* (or stack/queue)
//! semantics matching `era_core::spec`, so the test suite checks them
//! against the same sequential specifications the formal model uses.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harris_list;
pub mod hash_map;
pub mod hash_set;
pub mod michael_list;
pub mod michael_map;
pub mod ms_queue;
pub mod skip_list;
pub mod treiber_stack;
pub mod vbr_list;

pub use harris_list::HarrisList;
pub use hash_map::HashMap;
pub use hash_set::HashSet;
pub use michael_list::MichaelList;
pub use michael_map::MichaelMap;
pub use ms_queue::MsQueue;
pub use skip_list::SkipList;
pub use treiber_stack::TreiberStack;
pub use vbr_list::VbrList;
