//! Treiber's lock-free stack, generic over any [`Smr`] scheme.
//!
//! The simplest reclamation client: `pop` detaches the head with one
//! CAS, so a single protected load suffices and every scheme —
//! protect-based or epoch-based — integrates in the easy,
//! Definition 5.3 style. Used by the benchmarks as the
//! minimal-contention workload.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use era_smr::common::{DropFn, Smr, SmrHeader};

#[repr(C)]
struct Node {
    header: SmrHeader,
    value: i64,
    next: AtomicUsize,
}

/// # Safety
/// `p` must be a pointer previously produced by `Node::alloc` that no other
/// thread can still reach (retired and past its grace period, or owned
/// exclusively by `Drop`).
unsafe fn drop_node(p: *mut u8) {
    // SAFETY: contract above — p originated in Node::alloc and is unreachable.
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

const DROP_NODE: DropFn = drop_node;

/// A lock-free LIFO stack of `i64` values.
///
/// # Example
///
/// ```
/// use era_ds::TreiberStack;
/// use era_smr::{hp::Hp, Smr};
///
/// let smr = Hp::new(2, 1);
/// let stack = TreiberStack::new(&smr);
/// let mut ctx = smr.register().unwrap();
/// stack.push(&mut ctx, 1);
/// stack.push(&mut ctx, 2);
/// assert_eq!(stack.pop(&mut ctx), Some(2));
/// assert_eq!(stack.pop(&mut ctx), Some(1));
/// assert_eq!(stack.pop(&mut ctx), None);
/// ```
pub struct TreiberStack<'s, S: Smr> {
    smr: &'s S,
    head: AtomicUsize,
}

impl<S: Smr> fmt::Debug for TreiberStack<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreiberStack")
            .field("smr", &self.smr.name())
            .finish_non_exhaustive()
    }
}

impl<'s, S: Smr> TreiberStack<'s, S> {
    /// Creates an empty stack using `smr` for reclamation.
    pub fn new(smr: &'s S) -> Self {
        TreiberStack {
            smr,
            head: AtomicUsize::new(0),
        }
    }

    /// Pushes `value`.
    pub fn push(&self, ctx: &mut S::ThreadCtx, value: i64) {
        self.smr.begin_op(ctx);
        let node = Box::into_raw(Box::new(Node {
            header: SmrHeader::new(),
            value,
            next: AtomicUsize::new(0),
        }));
        // SAFETY: `node` is fresh and unshared until the push CAS publishes it.
        self.smr.init_header(ctx, unsafe { &(*node).header });
        loop {
            let head = self.head.load(Ordering::SeqCst);
            unsafe { (*node).next.store(head, Ordering::SeqCst) };
            if self
                .head
                .compare_exchange(head, node as usize, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        self.smr.end_op(ctx);
    }

    /// Pops the most recently pushed value, or `None` when empty.
    pub fn pop(&self, ctx: &mut S::ThreadCtx) -> Option<i64> {
        self.smr.begin_op(ctx);
        let result = loop {
            let head = self.smr.load(ctx, 0, &self.head); // protected
            if head == 0 {
                break None;
            }
            let node = head as *const Node;
            // SAFETY: `head` was returned by smr.load, which armed the slot (or
            // pinned the epoch) protecting it; the winning CAS then makes this op
            // the unique retirer.
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            if self
                .head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                let value = unsafe { (*node).value };
                unsafe {
                    self.smr
                        .retire(ctx, head as *mut u8, &(*node).header, DROP_NODE);
                }
                break Some(value);
            }
        };
        self.smr.end_op(ctx);
        result
    }

    /// Whether the stack is empty right now (racy outside quiescence).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::SeqCst) == 0
    }

    /// Number of nodes (quiescent use only).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut word = self.head.load(Ordering::SeqCst);
        while word != 0 {
            n += 1;
            // SAFETY: quiescent contract (doc above) — no concurrent pops.
            word = unsafe { (*(word as *const Node)).next.load(Ordering::SeqCst) };
        }
        n
    }
}

impl<S: Smr> Drop for TreiberStack<'_, S> {
    // LINT: exclusive — &mut self in Drop: no concurrent readers can exist.
    fn drop(&mut self) {
        let mut word = self.head.load(Ordering::SeqCst);
        while word != 0 {
            let node = word as *mut Node;
            // SAFETY: &mut self — exclusive access; each node freed exactly once.
            word = unsafe { (*node).next.load(Ordering::SeqCst) };
            unsafe { drop_node(node as *mut u8) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::he::He;
    use era_smr::hp::Hp;
    use era_smr::ibr::Ibr;
    use era_smr::leak::Leak;

    fn exercise<S: Smr>(smr: &S) {
        let stack = TreiberStack::new(smr);
        let mut ctx = smr.register().unwrap();
        assert!(stack.is_empty());
        assert_eq!(stack.pop(&mut ctx), None);
        for i in 0..10 {
            stack.push(&mut ctx, i);
        }
        assert_eq!(stack.len(), 10);
        for i in (0..10).rev() {
            assert_eq!(stack.pop(&mut ctx), Some(i));
        }
        assert!(stack.is_empty());
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn lifo_semantics_all_schemes() {
        exercise(&Ebr::new(2));
        exercise(&Hp::new(2, 1));
        exercise(&He::new(2, 1));
        exercise(&Ibr::new(2));
        exercise(&Leak::new(2));
    }

    fn stress<S: Smr + Sync>(smr: &S, threads: usize, per_thread: i64) {
        let stack = TreiberStack::new(smr);
        let popped_sum = std::sync::atomic::AtomicI64::new(0);
        let popped_count = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let (stack, popped_sum, popped_count) = (&stack, &popped_sum, &popped_count);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    let base = t as i64 * per_thread;
                    for i in 0..per_thread {
                        stack.push(&mut ctx, base + i);
                        if let Some(v) = stack.pop(&mut ctx) {
                            // SAFETY(ordering): Relaxed — test tallies, read
                            // only after the worker threads are joined.
                            popped_sum.fetch_add(v, Ordering::Relaxed);
                            popped_count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    for _ in 0..4 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
        // Every push is matched by exactly one pop across all threads
        // (each iteration pushes one and pops at most one; a pop can only
        // fail if the stack momentarily empties, in which case the value
        // stays for someone else).
        // LINT: quiescent — all worker threads joined above; exclusive walk.
        let remaining: i64 = {
            let mut sum = 0;
            let mut word = stack.head.load(Ordering::SeqCst);
            while word != 0 {
                let node = word as *const Node;
                // SAFETY: workers joined — exclusive walk over live nodes.
                sum += unsafe { (*node).value };
                word = unsafe { (*node).next.load(Ordering::SeqCst) };
            }
            sum
        };
        let total: i64 = (0..threads as i64 * per_thread).sum();
        assert_eq!(popped_sum.load(Ordering::Relaxed) + remaining, total);
        assert_eq!(
            popped_count.load(Ordering::Relaxed) + stack.len(),
            (threads as i64 * per_thread) as usize
        );
    }

    #[test]
    fn stress_hp() {
        stress(&Hp::new(8, 1), 4, 2_000);
    }

    #[test]
    fn stress_ebr() {
        stress(&Ebr::new(8), 4, 2_000);
    }

    #[test]
    fn stress_ibr() {
        stress(&Ibr::new(8), 4, 2_000);
    }

    #[test]
    fn memory_is_reclaimed() {
        let smr = Hp::with_threshold(2, 1, 8);
        let stack = TreiberStack::new(&smr);
        let mut ctx = smr.register().unwrap();
        for i in 0..1_000 {
            stack.push(&mut ctx, i);
            let _ = stack.pop(&mut ctx);
        }
        smr.flush(&mut ctx);
        let st = smr.stats();
        assert_eq!(st.total_retired, 1_000);
        assert!(st.retired_now <= 8 + 2, "{st}");
    }
}
