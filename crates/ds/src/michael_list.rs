//! Michael's lock-free linked list [30] — the HP-compatible set.
//!
//! Michael modified Harris's list so that traversals never move past a
//! *marked* node: on encountering one, the traversal unlinks it first
//! (retrying from the head if the unlink CAS fails). As a result every
//! node a traversal stands on is reachable-and-protected, which is
//! exactly what the protect-validate schemes (HP, HE, IBR) need — and
//! why the paper calls this the implementation that was "originally
//! designated to fit HP" (§6). The cost relative to Harris's list is
//! restart-on-contention during traversals. Under op-scoped schemes
//! (EBR/QSBR/NBR/leak) searches take a read-only fast path that skips
//! the hazard discipline entirely — see [`MichaelList::contains`].
//!
//! The list is a sorted set of `i64` keys with the three-slot hazard
//! discipline (`curr`, `next`, `prev`), generic over any
//! [`Smr`] scheme.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use era_smr::common::{is_marked, untagged, with_mark, DropFn, Smr, SmrHeader};

/// A list node. The scheme-owned [`SmrHeader`] comes first (Condition 5
/// of Definition 5.3: the scheme gets its own added field and never
/// touches `key`/`next`).
#[repr(C)]
struct Node {
    header: SmrHeader,
    key: i64,
    next: AtomicUsize,
}

impl Node {
    fn alloc(key: i64, next: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            header: SmrHeader::new(),
            key,
            next: AtomicUsize::new(next),
        }))
    }
}

/// # Safety
/// `p` must be a pointer previously produced by `Node::alloc` that no other
/// thread can still reach (retired and past its grace period, or owned
/// exclusively by `Drop`).
unsafe fn drop_node(p: *mut u8) {
    // SAFETY: contract above — p originated in Node::alloc and is unreachable.
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

const DROP_NODE: DropFn = drop_node;

/// Hazard/protection slots used by the traversal.
const SLOT_PREV: usize = 2;

/// Michael's lock-free sorted set.
///
/// # Example
///
/// ```
/// use era_ds::MichaelList;
/// use era_smr::{hp::Hp, Smr};
///
/// let smr = Hp::new(4, 3); // Michael's list needs 3 hazard slots
/// let list = MichaelList::new(&smr);
/// let mut ctx = smr.register().unwrap();
/// assert!(list.insert(&mut ctx, 5));
/// assert!(!list.insert(&mut ctx, 5));
/// assert!(list.contains(&mut ctx, 5));
/// assert!(list.delete(&mut ctx, 5));
/// assert!(!list.contains(&mut ctx, 5));
/// ```
pub struct MichaelList<'s, S: Smr> {
    smr: &'s S,
    head: AtomicUsize,
}

impl<S: Smr> fmt::Debug for MichaelList<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MichaelList")
            .field("smr", &self.smr.name())
            .finish_non_exhaustive()
    }
}

struct Window {
    /// Location holding the link to `curr` (the head or a node's `next`).
    prev: *const AtomicUsize,
    /// Unmarked link word found at `prev` (0 = end of list).
    curr_word: usize,
    found: bool,
}

impl<'s, S: Smr> MichaelList<'s, S> {
    /// Creates an empty set using `smr` for reclamation.
    ///
    /// Protect-based schemes must provide at least 3 slots per thread.
    pub fn new(smr: &'s S) -> Self {
        MichaelList {
            smr,
            head: AtomicUsize::new(0),
        }
    }

    /// Michael's `find`: positions a window `(prev, curr)` such that
    /// `curr` is the first node with `key ≥ target`, unlinking every
    /// marked node encountered on the way.
    ///
    /// On return, `curr` (if any) is protected in hazard slot 0 or 1 and
    /// the node owning `prev` in slot [`SLOT_PREV`] — protections remain
    /// valid until `end_op`.
    fn find(&self, ctx: &mut S::ThreadCtx, key: i64) -> Window {
        'retry: loop {
            let mut prev: *const AtomicUsize = &self.head;
            // SAFETY: Michael-style hand-over-hand protection — `prev` always
            // points into a node protected by SLOT_PREV (or the head, which is
            // never freed), and `curr` is protected by the alternating slot before
            // any deref; validation failures restart the walk.
            let mut cs = 0usize; // slot currently protecting `curr`
            let mut curr_word = self.smr.load(ctx, cs, unsafe { &*prev });
            loop {
                debug_assert!(!is_marked(curr_word), "prev link must be unmarked");
                if curr_word == 0 {
                    return Window {
                        prev,
                        curr_word: 0,
                        found: false,
                    };
                }
                let node = curr_word as *const Node;
                let next_word = self.smr.load(ctx, 1 - cs, unsafe { &(*node).next });
                // Michael's re-validation: curr must still be linked at
                // prev. Publish-and-validate schemes (HP/HE/IBR) need it
                // to complete the protection argument for `curr`; epoch
                // schemes protect every reachable-or-retired node
                // globally, so the check is elided — a traversal through
                // a just-unlinked node stays linearizable and every
                // mutation CAS below self-validates against `prev`.
                if self.smr.requires_validation()
                    && unsafe { &*prev }.load(Ordering::SeqCst) != curr_word
                {
                    continue 'retry;
                }
                if is_marked(next_word) {
                    // curr is logically deleted: unlink before advancing.
                    let succ = untagged(next_word);
                    if unsafe { &*prev }
                        .compare_exchange(curr_word, succ, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    unsafe {
                        self.smr
                            .retire(ctx, curr_word as *mut u8, &(*node).header, DROP_NODE);
                    }
                    curr_word = self.smr.load(ctx, cs, unsafe { &*prev });
                    if is_marked(curr_word) {
                        continue 'retry;
                    }
                    continue;
                }
                let ckey = unsafe { (*node).key };
                if ckey >= key {
                    return Window {
                        prev,
                        curr_word,
                        found: ckey == key,
                    };
                }
                // Advance: curr becomes prev. Transfer curr's already
                // established protection from slot `cs` into the prev
                // slot — a single release store under HP/HE, with no
                // fence or re-validation: the slot-`cs` protection was
                // validated above and is held until overwritten, and
                // SLOT_PREV > cs keeps ascending-index scans sound.
                self.smr.protect_alias(ctx, SLOT_PREV, cs, curr_word);
                prev = unsafe { &(*node).next };
                curr_word = untagged(next_word);
                cs = 1 - cs;
                // `curr_word` is protected: it was loaded into slot 1-cs
                // (now cs) by the protected load above.
            }
        }
    }

    /// Inserts `key`; returns `true` iff it was absent.
    pub fn insert(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        self.smr.begin_op(ctx);
        let node = Node::alloc(key, 0);
        // SAFETY: `node` is fresh and unshared until the linking CAS publishes
        // it; w.prev/w.curr_word stay protected by the slots `find` left armed.
        self.smr.init_header(ctx, unsafe { &(*node).header });
        let result = loop {
            let w = self.find(ctx, key);
            if w.found {
                // Duplicate: retire the never-shared local node (§4.1
                // allows local → retired).
                unsafe {
                    self.smr
                        .retire(ctx, node as *mut u8, &(*node).header, DROP_NODE);
                }
                break false;
            }
            unsafe { (*node).next.store(w.curr_word, Ordering::SeqCst) };
            if unsafe { &*w.prev }
                .compare_exchange(
                    w.curr_word,
                    node as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break true;
            }
        };
        self.smr.end_op(ctx);
        result
    }

    /// Deletes `key`; returns `true` iff it was present.
    pub fn delete(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        self.smr.begin_op(ctx);
        let result = loop {
            let w = self.find(ctx, key);
            if !w.found {
                break false;
            }
            let node = w.curr_word as *const Node;
            // Plain load: `node` is protected by find(), and the value is
            // only used as CAS operands, never dereferenced. (A protected
            // load here would evict the prev-node protection from its
            // slot and leave `w.prev` dangling under HP.)
            // SAFETY: node and w.prev are protected by the slots `find` left armed;
            // the winning mark CAS makes this op the unique retirer.
            let next_word = unsafe { (*node).next.load(Ordering::SeqCst) };
            if is_marked(next_word) {
                continue; // someone else is deleting it: re-find
            }
            // Logically delete (mark), then physically unlink.
            if unsafe { &(*node).next }
                .compare_exchange(
                    next_word,
                    with_mark(next_word),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                continue;
            }
            if unsafe { &*w.prev }
                .compare_exchange(w.curr_word, next_word, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                unsafe {
                    self.smr
                        .retire(ctx, w.curr_word as *mut u8, &(*node).header, DROP_NODE);
                }
            } else {
                // Let a find() unlink (and retire) it.
                let _ = self.find(ctx, key);
            }
            break true;
        };
        self.smr.end_op(ctx);
        result
    }

    /// Whether `key` is in the set.
    pub fn contains(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        self.smr.begin_op(ctx);
        let found = if self.smr.requires_validation() {
            // Protect-validate schemes (HP/HE/IBR): only find()'s
            // hand-over-hand hazard discipline makes standing on a
            // node safe, so searches share the mutation path.
            self.find(ctx, key).found
        } else {
            self.contains_read_only(ctx, key)
        };
        self.smr.end_op(ctx);
        found
    }

    /// Read-only search for op-scoped protection schemes
    /// (`requires_validation() == false`: EBR/QSBR/NBR/leak).
    ///
    /// Michael notes searches need not help unlink (and Herlihy &
    /// Shavit prove the wait-free variant linearizable for exactly this
    /// mark-bit list family): the traversal follows raw `next` links —
    /// through marked nodes — and decides from the first node with
    /// `key ≥ target`. Every node on the walk is protected *globally*
    /// by the op-scoped scheme (reachable or retired-but-unreclaimed),
    /// so no per-hop slot writes, helping CASes, or prev tracking are
    /// needed. Sortedness along frozen chains plus Michael's
    /// unlink-in-traversal-order discipline give the linearization
    /// points: an unmarked match was reachable when its link word was
    /// read (marks never clear), and a miss linearizes at the last
    /// link read from a then-reachable node.
    ///
    /// Restart-based schemes (NBR, or a watchdog-neutralized
    /// EBR/QSBR) void the global protection when they neutralize a
    /// thread, so the loop polls [`Smr::needs_restart`] every hop —
    /// a relaxed self-flag load — and rewalks from the head.
    // LINT: op-scoped — callers hold begin_op (see `contains`); the whole point of
    // this path is that op-scoped schemes protect the walk globally.
    fn contains_read_only(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        'retry: loop {
            // SAFETY(ordering): SeqCst link loads keep this traversal in
            // the retire-stamp SC chain (see `Smr::load`) — free MOVs on
            // x86-TSO, and required so a concurrent retirer's stamp
            // covers this reader's announced epoch.
            let mut word = untagged(self.head.load(Ordering::SeqCst));
            loop {
                if self.smr.needs_restart(ctx) {
                    continue 'retry;
                }
                if word == 0 {
                    return false;
                }
                let node = word as *const Node;
                let next = unsafe { (*node).next.load(Ordering::SeqCst) };
                let ckey = unsafe { (*node).key };
                if ckey < key {
                    word = untagged(next);
                    continue;
                }
                return ckey == key && !is_marked(next);
            }
        }
    }

    /// Snapshot of the keys (quiescent use only: tests/debugging).
    // LINT: quiescent — snapshot API, documented callers-must-be-quiescent contract.
    pub fn collect_keys(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut word = self.head.load(Ordering::SeqCst);
        while word != 0 {
            let node = untagged(word) as *const Node;
            // SAFETY: quiescent snapshot contract (doc above): no concurrent
            // writers, so every reachable node is live.
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            if !is_marked(next) {
                out.push(unsafe { (*node).key });
            }
            word = untagged(next);
        }
        out
    }

    /// Number of unmarked nodes (quiescent use only).
    pub fn len(&self) -> usize {
        self.collect_keys().len()
    }

    /// Whether the set is empty (quiescent use only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<S: Smr> Drop for MichaelList<'_, S> {
    // LINT: exclusive — &mut self in Drop: no concurrent readers can exist.
    fn drop(&mut self) {
        // Exclusive access: free the remaining nodes directly.
        let mut word = untagged(self.head.load(Ordering::SeqCst));
        while word != 0 {
            let node = word as *mut Node;
            // SAFETY: &mut self — exclusive access; each reachable node is freed
            // exactly once.
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            unsafe { drop_node(node as *mut u8) };
            word = untagged(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::he::He;
    use era_smr::hp::Hp;
    use era_smr::ibr::Ibr;
    use era_smr::leak::Leak;

    fn exercise_sequential<S: Smr>(smr: &S) {
        let list = MichaelList::new(smr);
        let mut ctx = smr.register().unwrap();
        assert!(list.is_empty());
        assert!(list.insert(&mut ctx, 3));
        assert!(list.insert(&mut ctx, 1));
        assert!(list.insert(&mut ctx, 2));
        assert!(!list.insert(&mut ctx, 2));
        assert_eq!(list.collect_keys(), vec![1, 2, 3]);
        assert!(list.contains(&mut ctx, 1));
        assert!(!list.contains(&mut ctx, 9));
        assert!(list.delete(&mut ctx, 2));
        assert!(!list.delete(&mut ctx, 2));
        assert_eq!(list.collect_keys(), vec![1, 3]);
        assert!(list.insert(&mut ctx, 2));
        assert_eq!(list.len(), 3);
        for k in [1, 2, 3] {
            assert!(list.delete(&mut ctx, k));
        }
        assert!(list.is_empty());
    }

    #[test]
    fn sequential_semantics_all_schemes() {
        exercise_sequential(&Ebr::new(2));
        exercise_sequential(&Hp::new(2, 3));
        exercise_sequential(&He::new(2, 3));
        exercise_sequential(&Ibr::new(2));
        exercise_sequential(&Leak::new(2));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn negative_and_extreme_keys() {
        let smr = Hp::new(1, 3);
        let list = MichaelList::new(&smr);
        let mut ctx = smr.register().unwrap();
        for k in [i64::MIN, -5, 0, 5, i64::MAX] {
            assert!(list.insert(&mut ctx, k));
        }
        assert_eq!(list.collect_keys(), vec![i64::MIN, -5, 0, 5, i64::MAX]);
        for k in [i64::MIN, -5, 0, 5, i64::MAX] {
            assert!(list.contains(&mut ctx, k));
            assert!(list.delete(&mut ctx, k));
        }
    }

    fn stress<S: Smr + Sync>(smr: &S, threads: usize, per_thread: i64) {
        let list = MichaelList::new(smr);
        // Phase 1: each thread inserts a disjoint key range, then
        // verifies and deletes it. Success counts must be exact.
        std::thread::scope(|s| {
            for t in 0..threads {
                let list = &list;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    let base = t as i64 * per_thread;
                    for k in base..base + per_thread {
                        assert!(list.insert(&mut ctx, k));
                    }
                    for k in base..base + per_thread {
                        assert!(list.contains(&mut ctx, k));
                    }
                    for k in base..base + per_thread {
                        assert!(list.delete(&mut ctx, k));
                    }
                    self::flushed(smr, &mut ctx);
                });
            }
        });
        assert!(list.is_empty(), "all inserted keys deleted");
        // Phase 2: contended same-key churn — exactly one winner per round.
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let (list, winners) = (&list, &winners);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for _ in 0..200 {
                        if list.insert(&mut ctx, 42) {
                            assert!(list.delete(&mut ctx, 42));
                            // SAFETY(ordering): Relaxed — test tally, read after join.
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    self::flushed(smr, &mut ctx);
                });
            }
        });
        assert!(!list.contains_quiescent(42));
    }

    fn flushed<S: Smr>(smr: &S, ctx: &mut S::ThreadCtx) {
        for _ in 0..4 {
            smr.flush(ctx);
        }
    }

    impl<S: Smr> MichaelList<'_, S> {
        fn contains_quiescent(&self, key: i64) -> bool {
            self.collect_keys().contains(&key)
        }
    }

    #[test]
    fn stress_hp() {
        stress(&Hp::new(8, 3), 4, 250);
    }

    #[test]
    fn stress_ebr() {
        stress(&Ebr::new(8), 4, 250);
    }

    #[test]
    fn stress_he() {
        stress(&He::new(8, 3), 4, 250);
    }

    #[test]
    fn stress_ibr() {
        stress(&Ibr::new(8), 4, 250);
    }

    #[test]
    fn hp_footprint_stays_bounded_during_churn() {
        let smr = Hp::with_threshold(2, 3, 16);
        let list = MichaelList::new(&smr);
        let mut ctx = smr.register().unwrap();
        for round in 0..2_000i64 {
            assert!(list.insert(&mut ctx, round % 7));
            assert!(list.delete(&mut ctx, round % 7));
            let retired = smr.stats().retired_now;
            assert!(retired <= smr.robustness_bound(), "retired={retired}");
        }
    }

    #[test]
    fn reclamation_actually_happens() {
        let smr = Ebr::with_threshold(2, 8);
        let list = MichaelList::new(&smr);
        let mut ctx = smr.register().unwrap();
        for k in 0..500 {
            assert!(list.insert(&mut ctx, k));
        }
        for k in 0..500 {
            assert!(list.delete(&mut ctx, k));
        }
        for _ in 0..6 {
            smr.flush(&mut ctx);
        }
        let st = smr.stats();
        assert_eq!(st.total_retired, 500);
        assert!(st.total_reclaimed >= 400, "{st}");
    }
}
