//! A lock-free skip list (Fraser / Herlihy–Shavit style) — the §5.1
//! case study for why protection-slot counts matter.
//!
//! Towers are Harris lists per level: logical deletion marks the `next`
//! pointer of every level (level 0 last — the linearization point),
//! traversals walk through marked nodes and unlink lazily. Protecting a
//! traversal with hazard pointers would need a slot per level — "the
//! number of hazard pointers … may also depend on the number of active
//! nodes (e.g., for skip lists with a dynamic number of levels)" (§5.1)
//! — so this implementation requires an [`EpochProtected`] scheme
//! (EBR or the leaking baseline), where `begin_op`/`end_op` protect
//! everything in between. Integrating a reservation-based scheme here
//! is exactly the non-trivial manual work Definition 5.3 rules out.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use era_smr::common::{is_marked, untagged, with_mark, DropFn, EpochProtected, Smr, SmrHeader};

/// Maximum tower height.
pub const MAX_HEIGHT: usize = 12;

#[repr(C)]
struct Node {
    header: SmrHeader,
    key: i64,
    height: usize,
    next: [AtomicUsize; MAX_HEIGHT],
}

impl Node {
    fn alloc(key: i64, height: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            header: SmrHeader::new(),
            key,
            height,
            next: std::array::from_fn(|_| AtomicUsize::new(0)),
        }))
    }
}

/// # Safety
/// `p` must be a pointer previously produced by [`Node::alloc`] that no
/// other thread can still reach (retired and past its grace period, or
/// owned exclusively by `Drop`).
unsafe fn drop_node(p: *mut u8) {
    // SAFETY: contract above — p originated in Node::alloc and is unreachable.
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

const DROP_NODE: DropFn = drop_node;

/// A lock-free sorted set with expected O(log n) operations.
///
/// # Example
///
/// ```
/// use era_ds::SkipList;
/// use era_smr::{ebr::Ebr, Smr};
///
/// let smr = Ebr::new(4);
/// let list = SkipList::new(&smr);
/// let mut ctx = smr.register().unwrap();
/// for k in [5, 1, 9, 3] {
///     assert!(list.insert(&mut ctx, k));
/// }
/// assert!(list.contains(&mut ctx, 3));
/// assert!(list.delete(&mut ctx, 3));
/// assert_eq!(list.collect_keys(), vec![1, 5, 9]);
/// ```
pub struct SkipList<'s, S: Smr + EpochProtected> {
    smr: &'s S,
    head: *mut Node,
    tail: *mut Node,
    /// xorshift state for tower-height selection.
    rng: AtomicU64,
}

// SAFETY: all shared mutable state is atomics (tower links, rng) or owned by
// the SMR scheme, which carries its own Sync/Send bounds; raw Node pointers
// are only dereferenced under the epoch pin or exclusive access.
unsafe impl<S: Smr + EpochProtected + Sync> Sync for SkipList<'_, S> {}
unsafe impl<S: Smr + EpochProtected + Send> Send for SkipList<'_, S> {}

impl<S: Smr + EpochProtected> fmt::Debug for SkipList<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipList")
            .field("smr", &self.smr.name())
            .finish_non_exhaustive()
    }
}

struct FindResult {
    preds: [*const Node; MAX_HEIGHT],
    succs: [*const Node; MAX_HEIGHT],
    found: Option<*const Node>,
}

impl<'s, S: Smr + EpochProtected> SkipList<'s, S> {
    /// Creates an empty skip list using `smr` for reclamation.
    // LINT: exclusive — sentinel towers are freshly allocated and still unshared.
    pub fn new(smr: &'s S) -> Self {
        let tail = Node::alloc(i64::MAX, MAX_HEIGHT);
        let head = Node::alloc(i64::MIN, MAX_HEIGHT);
        for level in 0..MAX_HEIGHT {
            // SAFETY: head/tail were just allocated and are not yet shared.
            unsafe { (*head).next[level].store(tail as usize, Ordering::SeqCst) };
        }
        SkipList {
            smr,
            head,
            tail,
            rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn check_key(key: i64) {
        assert!(
            key != i64::MIN && key != i64::MAX,
            "i64::MIN/MAX are reserved sentinel keys"
        );
    }

    /// Geometric tower height in `1..=MAX_HEIGHT` (p = 1/2).
    fn random_height(&self) -> usize {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // SAFETY(ordering): Relaxed — rng is a per-structure xorshift seed; racy
        // interleavings only perturb tower heights, never correctness.
        self.rng.store(x, Ordering::Relaxed);
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    /// Positions `preds`/`succs` around `key` at every level, unlinking
    /// marked nodes encountered on the way (Harris-per-level). Returns
    /// the node with the key when one is linked and unmarked at level 0.
    // LINT: op-scoped — callers hold begin_op (insert/remove/contains); the skip
    // list is EpochProtected-only, so the pin covers every node on the walk.
    fn find(&self, key: i64) -> FindResult {
        'retry: loop {
            let mut preds = [std::ptr::null::<Node>(); MAX_HEIGHT];
            let mut succs = [std::ptr::null::<Node>(); MAX_HEIGHT];
            let mut pred: *const Node = self.head;
            // SAFETY: every node on this walk (head sentinel included) is pinned by
            // the caller's begin_op — the skip list is EpochProtected-only, so a
            // retired tower cannot be reclaimed while this op is pinned (Def. 4.2
            // Condition 1); marked nodes stay dereferenceable until unlinked + grace.
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr_word = unsafe { (*pred).next[level].load(Ordering::SeqCst) };
                if is_marked(curr_word) {
                    // pred got deleted under us: start over.
                    continue 'retry;
                }
                loop {
                    let curr = untagged(curr_word) as *const Node;
                    let succ_word = unsafe { (*curr).next[level].load(Ordering::SeqCst) };
                    if is_marked(succ_word) {
                        // curr is logically deleted at this level:
                        // unlink it here and re-examine.
                        if unsafe { &(*pred).next[level] }
                            .compare_exchange(
                                curr_word,
                                untagged(succ_word),
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                            .is_err()
                        {
                            continue 'retry;
                        }
                        curr_word = untagged(succ_word);
                        continue;
                    }
                    if unsafe { (*curr).key } < key {
                        // succ_word is unmarked here (checked above), so
                        // it is a plain pointer to curr's successor.
                        pred = curr;
                        curr_word = succ_word;
                        continue;
                    }
                    preds[level] = pred;
                    succs[level] = curr;
                    break;
                }
            }
            let candidate = succs[0];
            let found = (candidate != self.tail
                && unsafe { (*candidate).key } == key
                && !is_marked(unsafe { (*candidate).next[0].load(Ordering::SeqCst) }))
            .then_some(candidate);
            return FindResult {
                preds,
                succs,
                found,
            };
        }
    }

    /// Inserts `key`; returns `true` iff it was absent.
    pub fn insert(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        Self::check_key(key);
        self.smr.begin_op(ctx);
        let height = self.random_height();
        let node = Node::alloc(key, height);
        // SAFETY: `node` is freshly allocated (unshared until the linking CAS
        // publishes it); preds/succs from `find` are pinned by begin_op above.
        self.smr.init_header(ctx, unsafe { &(*node).header });
        let result = 'retry: loop {
            let w = self.find(key);
            if w.found.is_some() {
                unsafe {
                    self.smr
                        .retire(ctx, node as *mut u8, &(*node).header, DROP_NODE);
                }
                break false;
            }
            // Prepare the tower, then link level 0 (the linearization).
            for level in 0..height {
                unsafe { (*node).next[level].store(w.succs[level] as usize, Ordering::SeqCst) };
            }
            if unsafe { &(*w.preds[0]).next[0] }
                .compare_exchange(
                    w.succs[0] as usize,
                    node as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                continue 'retry;
            }
            // Link the upper levels best-effort.
            for level in 1..height {
                loop {
                    let expected = unsafe { (*node).next[level].load(Ordering::SeqCst) };
                    if is_marked(expected) {
                        // Concurrently deleted before fully linked: the
                        // deleter owns retirement; we are done.
                        break 'retry true;
                    }
                    let w2 = self.find(key);
                    match w2.found {
                        Some(n) if std::ptr::eq(n, node) => {
                            // Point our level-`level` next at the fresh
                            // successor if it moved.
                            if expected != w2.succs[level] as usize
                                && unsafe { &(*node).next[level] }
                                    .compare_exchange(
                                        expected,
                                        w2.succs[level] as usize,
                                        Ordering::SeqCst,
                                        Ordering::SeqCst,
                                    )
                                    .is_err()
                            {
                                continue; // marked or changed: re-examine
                            }
                            if unsafe { &(*w2.preds[level]).next[level] }
                                .compare_exchange(
                                    w2.succs[level] as usize,
                                    node as usize,
                                    Ordering::SeqCst,
                                    Ordering::SeqCst,
                                )
                                .is_ok()
                            {
                                break; // this level is linked
                            }
                            // else: contention at this level — retry it.
                        }
                        _ => break 'retry true, // deleted concurrently
                    }
                }
            }
            break true;
        };
        self.smr.end_op(ctx);
        result
    }

    /// Deletes `key`; returns `true` iff it was present.
    pub fn delete(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        Self::check_key(key);
        self.smr.begin_op(ctx);
        let result = 'done: {
            let w = self.find(key);
            let Some(node) = w.found else {
                break 'done false;
            };
            // SAFETY: `node` came out of `find` under this op's begin_op pin, so
            // its tower stays dereferenceable for the whole mark-and-unlink dance.
            let height = unsafe { (*node).height };
            // Mark the upper levels top-down (idempotent, cooperative).
            for level in (1..height).rev() {
                loop {
                    let succ = unsafe { (*node).next[level].load(Ordering::SeqCst) };
                    if is_marked(succ) {
                        break;
                    }
                    let _ = unsafe { &(*node).next[level] }.compare_exchange(
                        succ,
                        with_mark(succ),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                }
            }
            // Level 0 decides the winner.
            loop {
                let succ = unsafe { (*node).next[0].load(Ordering::SeqCst) };
                if is_marked(succ) {
                    // Someone else won the logical deletion.
                    break;
                }
                if unsafe { &(*node).next[0] }
                    .compare_exchange(succ, with_mark(succ), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // We won: physically unlink via find, then retire.
                    let _ = self.find(key);
                    unsafe {
                        self.smr
                            .retire(ctx, node as *mut u8, &(*node).header, DROP_NODE);
                    }
                    self.smr.end_op(ctx);
                    return true;
                }
            }
            // Lost the race: the key was deleted by someone else.
            false
        };
        self.smr.end_op(ctx);
        result
    }

    /// Whether `key` is in the set.
    pub fn contains(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        Self::check_key(key);
        self.smr.begin_op(ctx);
        // Wait-free-ish lookup: pure traversal, no unlinking.
        let mut pred: *const Node = self.head;
        let mut found = false;
        // SAFETY: traversal is pinned by begin_op above (EpochProtected-only
        // structure), so every link leads to not-yet-reclaimed memory.
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr =
                untagged(unsafe { (*pred).next[level].load(Ordering::SeqCst) }) as *const Node;
            loop {
                let succ_word = unsafe { (*curr).next[level].load(Ordering::SeqCst) };
                if is_marked(succ_word) {
                    curr = untagged(succ_word) as *const Node;
                    continue;
                }
                let ckey = unsafe { (*curr).key };
                if ckey < key {
                    pred = curr;
                    curr = untagged(succ_word) as *const Node;
                    continue;
                }
                if level == 0 {
                    found = ckey == key;
                }
                break;
            }
        }
        self.smr.end_op(ctx);
        found
    }

    /// Snapshot of the keys (quiescent use only).
    // LINT: quiescent — snapshot API, documented callers-must-be-quiescent contract.
    pub fn collect_keys(&self) -> Vec<i64> {
        let mut out = Vec::new();
        // SAFETY: quiescent snapshot contract (doc above): no concurrent writers,
        // so every reachable node is live.
        let mut node =
            untagged(unsafe { (*self.head).next[0].load(Ordering::SeqCst) }) as *const Node;
        while node != self.tail {
            let next = unsafe { (*node).next[0].load(Ordering::SeqCst) };
            if !is_marked(next) {
                out.push(unsafe { (*node).key });
            }
            node = untagged(next) as *const Node;
        }
        out
    }

    /// Number of unmarked keys (quiescent use only).
    pub fn len(&self) -> usize {
        self.collect_keys().len()
    }

    /// Whether the set is empty (quiescent use only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural invariant check (quiescent use only): keys strictly
    /// ascending at level 0, and every upper-level link lands on a node
    /// whose key is ≥ its level-0 successor chain position.
    // LINT: quiescent — structural audit, documented callers-must-be-quiescent contract.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Level 0: strictly sorted.
        let keys = self.collect_keys();
        for w in keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("level-0 order violated: {} ≥ {}", w[0], w[1]));
            }
        }
        // Upper levels: sorted sub-chains of live nodes.
        for level in 1..MAX_HEIGHT {
            // SAFETY: same quiescent contract as collect_keys.
            let mut node =
                untagged(unsafe { (*self.head).next[level].load(Ordering::SeqCst) }) as *const Node;
            let mut last = i64::MIN;
            while node != self.tail {
                let key = unsafe { (*node).key };
                if key <= last {
                    return Err(format!("level-{level} order violated at key {key}"));
                }
                last = key;
                node =
                    untagged(unsafe { (*node).next[level].load(Ordering::SeqCst) }) as *const Node;
            }
        }
        Ok(())
    }
}

impl<S: Smr + EpochProtected> Drop for SkipList<'_, S> {
    // LINT: exclusive — &mut self in Drop: no concurrent readers can exist.
    fn drop(&mut self) {
        let mut node = self.head;
        loop {
            // SAFETY: &mut self — exclusive access; every level-0-reachable node
            // (marked or not) is freed exactly once, sentinels included.
            let next = untagged(unsafe { (*node).next[0].load(Ordering::SeqCst) }) as *mut Node;
            let is_tail = node == self.tail;
            unsafe { drop_node(node as *mut u8) };
            if is_tail {
                break;
            }
            node = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::leak::Leak;

    #[test]
    fn sequential_semantics() {
        let smr = Ebr::new(2);
        let list = SkipList::new(&smr);
        let mut ctx = smr.register().unwrap();
        assert!(list.is_empty());
        for k in [5, 1, 9, 3, 7] {
            assert!(list.insert(&mut ctx, k));
        }
        assert!(!list.insert(&mut ctx, 5));
        assert_eq!(list.collect_keys(), vec![1, 3, 5, 7, 9]);
        for k in [1, 3, 5, 7, 9] {
            assert!(list.contains(&mut ctx, k));
        }
        assert!(!list.contains(&mut ctx, 4));
        assert!(list.delete(&mut ctx, 5));
        assert!(!list.delete(&mut ctx, 5));
        assert!(!list.contains(&mut ctx, 5));
        assert_eq!(list.len(), 4);
        list.check_invariants().unwrap();
    }

    #[test]
    fn larger_sequential_workload() {
        let smr = Ebr::with_threshold(2, 32);
        let list = SkipList::new(&smr);
        let mut ctx = smr.register().unwrap();
        // Insert shuffled-ish, delete half, verify.
        for i in 0..1_000i64 {
            let k = (i * 7919) % 1_000;
            let _ = list.insert(&mut ctx, k);
        }
        assert_eq!(list.len(), 1_000);
        list.check_invariants().unwrap();
        for k in (0..1_000).step_by(2) {
            assert!(list.delete(&mut ctx, k));
        }
        assert_eq!(list.len(), 500);
        list.check_invariants().unwrap();
        for _ in 0..6 {
            smr.flush(&mut ctx);
        }
        assert!(smr.stats().total_reclaimed > 0);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn random_heights_are_geometricish() {
        let smr = Leak::new(1);
        let list = SkipList::new(&smr);
        let mut ones = 0;
        for _ in 0..1_000 {
            let h = list.random_height();
            assert!((1..=MAX_HEIGHT).contains(&h));
            if h == 1 {
                ones += 1;
            }
        }
        assert!((300..=700).contains(&ones), "h=1 should be ~50%: {ones}");
    }

    fn stress<S: Smr + EpochProtected + Sync>(smr: &S, threads: usize, per_thread: i64) {
        let list = SkipList::new(smr);
        std::thread::scope(|s| {
            for t in 0..threads {
                let list = &list;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    let base = t as i64 * per_thread;
                    for k in base..base + per_thread {
                        assert!(list.insert(&mut ctx, k));
                    }
                    for k in base..base + per_thread {
                        assert!(list.contains(&mut ctx, k));
                    }
                    for k in base..base + per_thread {
                        assert!(list.delete(&mut ctx, k));
                    }
                    for _ in 0..4 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
        assert!(list.is_empty());
        list.check_invariants().unwrap();
    }

    #[test]
    fn stress_disjoint_ebr() {
        stress(&Ebr::new(8), 4, 300);
    }

    #[test]
    fn stress_disjoint_leak() {
        stress(&Leak::new(8), 4, 300);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn stress_contended_keys() {
        let smr = Ebr::new(8);
        let list = SkipList::new(&smr);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (list, smr) = (&list, &smr);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for round in 0..400i64 {
                        let k = round % 16;
                        if list.insert(&mut ctx, k) {
                            let _ = list.delete(&mut ctx, k);
                        }
                        let _ = list.contains(&mut ctx, k);
                    }
                    for _ in 0..4 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
        list.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "reserved sentinel keys")]
    fn sentinel_keys_rejected() {
        let smr = Leak::new(1);
        let list = SkipList::new(&smr);
        let mut ctx = smr.register().unwrap();
        let _ = list.insert(&mut ctx, i64::MIN);
    }
}
