//! A Harris-style sorted set on the VBR arena ([`era_smr::vbr`]).
//!
//! This is the paper's "robust + widely applicable, **not** easy" corner
//! made concrete. The algorithm is Harris's list (marked-chain
//! traversal, lazy unlink), but every node access goes through a
//! versioned handle: when a traversal steps onto a node that has been
//! retired — and, under VBR, *immediately reclaimed and possibly
//! reused* — the arena returns [`Stale`] and the operation **rolls back
//! to its checkpoint** (the operation entry) and re-executes. Those
//! roll-backs are precisely the control-flow changes Definition 5.3
//! outlaws: integrating this list required rewriting the traversal
//! around `Result<_, Stale>` plumbing, not just inserting API calls.
//!
//! What VBR buys for that price: the retired population is identically
//! zero (retire *is* reclaim — the strongest robustness in the paper,
//! §5.1), and traversal through marked chains is safe, so the scheme is
//! applicable to Harris-shaped implementations that defeat HP/HE/IBR.
//!
//! Keys are restricted to `[KEY_MIN, KEY_MAX]` (they live in 48-bit
//! arena payloads next to the sentinels).

use std::fmt;

use era_smr::vbr::{Arena, ArenaFull, Handle, Stale, MAX_PAYLOAD};

/// Cell index of the key.
const KEY: usize = 0;
/// Cell index of the packed (handle, mark) successor reference.
const NEXT: usize = 1;

/// Payload offset so negative keys order correctly.
const KEY_OFFSET: i64 = 1 << 46;

/// Smallest storable user key.
pub const KEY_MIN: i64 = -(1 << 46) + 1;
/// Largest storable user key.
pub const KEY_MAX: i64 = (1 << 46) - 1;

/// Sentinel key payloads (reserved).
const NEG_INF: u64 = 0;
const POS_INF: u64 = MAX_PAYLOAD;

fn encode_key(key: i64) -> u64 {
    assert!(
        (KEY_MIN..=KEY_MAX).contains(&key),
        "key {key} outside [{KEY_MIN}, {KEY_MAX}]"
    );
    (key + KEY_OFFSET) as u64 + 1
}

/// A lock-free sorted set over a version-based-reclamation arena.
///
/// # Example
///
/// ```
/// use era_ds::VbrList;
///
/// let list = VbrList::new(1024);
/// assert!(list.insert(7));
/// assert!(!list.insert(7));
/// assert!(list.contains(7));
/// assert!(list.delete(7));
/// assert!(!list.contains(7));
/// assert_eq!(list.arena().stats().retired_now, 0); // retire == reclaim
/// ```
pub struct VbrList {
    arena: Arena<2>,
    head: Handle,
    tail: Handle,
}

impl fmt::Debug for VbrList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VbrList")
            .field("capacity", &self.arena.capacity())
            .field("live", &self.arena.live())
            .finish()
    }
}

struct Window {
    pred: Handle,
    /// Packed reference stored at `pred.NEXT` (equals `curr` packed when
    /// the window is clean).
    curr_packed: u64,
    curr: Handle,
    curr_key: u64,
}

impl VbrList {
    /// Creates a list backed by a fresh arena with room for `capacity`
    /// nodes (plus the two sentinels).
    ///
    /// # Panics
    ///
    /// Panics if the arena rejects the capacity (20-bit slot indices).
    pub fn new(capacity: usize) -> Self {
        let arena: Arena<2> = Arena::new(capacity + 2);
        let tail = arena.alloc().expect("room for sentinels");
        arena.write(tail, KEY, POS_INF).expect("fresh handle");
        arena.write(tail, NEXT, 0).expect("fresh handle");
        let head = arena.alloc().expect("room for sentinels");
        arena.write(head, KEY, NEG_INF).expect("fresh handle");
        arena
            .write(head, NEXT, tail.pack(false))
            .expect("fresh handle");
        VbrList { arena, head, tail }
    }

    /// The underlying arena (stats, capacity).
    pub fn arena(&self) -> &Arena<2> {
        &self.arena
    }

    /// Harris search with `Stale` roll-back: finds the window for
    /// `key_payload`, unlinking marked chains on the way.
    fn search(&self, key_payload: u64) -> Result<Window, Stale> {
        let mut pred = self.head;
        let mut pred_next = self.arena.read(pred, NEXT)?;
        let (mut curr, mut curr_packed) = {
            let (h, mark) = self.arena.upgrade(pred_next)?;
            debug_assert!(!mark, "head.next is never marked");
            (h, pred_next)
        };
        let mut curr_key = self.arena.read(curr, KEY)?;
        let mut curr_next = self.arena.read(curr, NEXT)?;
        // Traverse while curr is marked or its key is too small.
        loop {
            let (next_h_packed, next_marked) = {
                let (_, m) = Handle::unpack(curr_next);
                (curr_next, m)
            };
            if !next_marked && curr_key >= key_payload {
                break;
            }
            if !next_marked {
                pred = curr;
                pred_next = next_h_packed;
            }
            // Step to the successor (through marks).
            let succ_packed = {
                let (h, _) = Handle::unpack(curr_next);
                h.pack(false)
            };
            let (succ, _) = self.arena.upgrade(succ_packed)?;
            curr = succ;
            curr_packed = succ_packed;
            curr_key = self.arena.read(curr, KEY)?;
            if curr == self.tail {
                break;
            }
            curr_next = self.arena.read(curr, NEXT)?;
        }
        if pred_next == curr_packed {
            // Clean window; re-check curr is not marked (unless tail).
            if curr != self.tail {
                let n = self.arena.read(curr, NEXT)?;
                let (_, m) = Handle::unpack(n);
                if m {
                    return Err(Stale); // roll back and retry
                }
            }
            return Ok(Window {
                pred,
                curr_packed,
                curr,
                curr_key,
            });
        }
        // Unlink the marked chain [pred_next .. curr) in one CAS.
        match self.arena.cas(pred, NEXT, pred_next, curr_packed)? {
            true => {
                if curr != self.tail {
                    let n = self.arena.read(curr, NEXT)?;
                    let (_, m) = Handle::unpack(n);
                    if m {
                        return Err(Stale);
                    }
                }
                Ok(Window {
                    pred,
                    curr_packed,
                    curr,
                    curr_key,
                })
            }
            false => Err(Stale), // contention: roll back
        }
    }

    /// Inserts `key`; returns `true` iff it was absent.
    ///
    /// # Errors
    ///
    /// [`ArenaFull`] when the arena has no free slot.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside `[KEY_MIN, KEY_MAX]`.
    pub fn try_insert(&self, key: i64) -> Result<bool, ArenaFull> {
        let payload = encode_key(key);
        // Checkpoint: the whole operation re-executes on Stale.
        loop {
            let w = match self.search(payload) {
                Ok(w) => w,
                Err(Stale) => continue,
            };
            if w.curr_key == payload {
                return Ok(false);
            }
            let node = self.arena.alloc()?;
            let init = self
                .arena
                .write(node, KEY, payload)
                .and_then(|()| self.arena.write(node, NEXT, w.curr_packed));
            if init.is_err() {
                // Impossible for a fresh local node, but keep the
                // rollback discipline uniform.
                continue;
            }
            match self
                .arena
                .cas(w.pred, NEXT, w.curr_packed, node.pack(false))
            {
                Ok(true) => return Ok(true),
                Ok(false) | Err(Stale) => {
                    // Roll back: recycle the local node (local → retired,
                    // §4.1) and restart from the checkpoint.
                    let _ = self.arena.retire(node);
                }
            }
        }
    }

    /// Inserts `key`; returns `true` iff it was absent.
    ///
    /// # Panics
    ///
    /// Panics when the arena is full (use [`VbrList::try_insert`] to
    /// handle that case) or on out-of-range keys.
    pub fn insert(&self, key: i64) -> bool {
        self.try_insert(key).expect("arena full")
    }

    /// Deletes `key`; returns `true` iff it was present.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside `[KEY_MIN, KEY_MAX]`.
    pub fn delete(&self, key: i64) -> bool {
        let payload = encode_key(key);
        loop {
            let w = match self.search(payload) {
                Ok(w) => w,
                Err(Stale) => continue,
            };
            if w.curr_key != payload {
                return false;
            }
            // Logical deletion: mark curr's next.
            let succ_packed = match self.arena.read(w.curr, NEXT) {
                Ok(p) => p,
                Err(Stale) => continue,
            };
            let (succ_h, succ_marked) = Handle::unpack(succ_packed);
            if succ_marked {
                continue; // another delete is in flight
            }
            match self.arena.cas(w.curr, NEXT, succ_packed, succ_h.pack(true)) {
                Ok(true) => {}
                Ok(false) | Err(Stale) => continue,
            }
            // Physical unlink; on failure let a search() do it.
            let unlinked = matches!(
                self.arena
                    .cas(w.pred, NEXT, w.curr_packed, succ_h.pack(false)),
                Ok(true)
            );
            if !unlinked {
                // Ensure curr is unreachable before retiring it —
                // Definition 4.1's life-cycle demands retire-after-unlink,
                // and VBR reuses the slot immediately.
                loop {
                    match self.search(payload) {
                        Ok(_) => break,
                        Err(Stale) => continue,
                    }
                }
            }
            let _ = self.arena.retire(w.curr);
            return true;
        }
    }

    /// Whether `key` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside `[KEY_MIN, KEY_MAX]`.
    pub fn contains(&self, key: i64) -> bool {
        let payload = encode_key(key);
        loop {
            match self.search(payload) {
                Ok(w) => return w.curr_key == payload,
                Err(Stale) => continue,
            }
        }
    }

    /// Snapshot of the keys (quiescent use only).
    pub fn collect_keys(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut h = self.head;
        loop {
            let next = self.arena.read(h, NEXT).expect("quiescent traversal");
            let (nh, _) = Handle::unpack(next);
            if nh.pack(false) == 0 {
                break;
            }
            let (node, _) = self
                .arena
                .upgrade(nh.pack(false))
                .expect("quiescent traversal");
            if node == self.tail {
                break;
            }
            let key = self.arena.read(node, KEY).expect("quiescent traversal");
            let node_next = self.arena.read(node, NEXT).expect("quiescent traversal");
            let (_, marked) = Handle::unpack(node_next);
            if !marked {
                out.push(key as i64 - KEY_OFFSET - 1);
            }
            h = node;
        }
        out
    }

    /// Number of unmarked keys (quiescent use only).
    pub fn len(&self) -> usize {
        self.collect_keys().len()
    }

    /// Whether the set is empty (quiescent use only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let list = VbrList::new(64);
        assert!(list.is_empty());
        assert!(list.insert(3));
        assert!(list.insert(1));
        assert!(list.insert(2));
        assert!(!list.insert(2));
        assert_eq!(list.collect_keys(), vec![1, 2, 3]);
        assert!(list.contains(2));
        assert!(!list.contains(9));
        assert!(list.delete(2));
        assert!(!list.delete(2));
        assert_eq!(list.collect_keys(), vec![1, 3]);
        assert!(list.insert(2));
        for k in [1, 2, 3] {
            assert!(list.delete(k));
        }
        assert!(list.is_empty());
    }

    #[test]
    fn negative_keys_order_correctly() {
        let list = VbrList::new(16);
        for k in [5, -5, 0, KEY_MIN, KEY_MAX] {
            assert!(list.insert(k));
        }
        assert_eq!(list.collect_keys(), vec![KEY_MIN, -5, 0, 5, KEY_MAX]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_key_panics() {
        let list = VbrList::new(4);
        let _ = list.insert(i64::MAX);
    }

    #[test]
    fn retired_population_is_always_zero() {
        let list = VbrList::new(8);
        for round in 0..1_000 {
            assert!(list.insert(round % 5));
            assert!(list.delete(round % 5));
            assert_eq!(list.arena().stats().retired_now, 0);
        }
        let st = list.arena().stats();
        assert_eq!(st.total_retired, st.total_reclaimed);
        assert_eq!(st.total_retired, 1_000);
    }

    #[test]
    fn arena_full_reported() {
        let list = VbrList::new(2);
        assert_eq!(list.try_insert(1), Ok(true));
        assert_eq!(list.try_insert(2), Ok(true));
        assert_eq!(list.try_insert(3), Err(ArenaFull));
        assert!(list.delete(1));
        assert_eq!(list.try_insert(3), Ok(true));
    }

    #[test]
    fn slot_reuse_does_not_corrupt_the_list() {
        // With a tiny arena, every delete's slot is immediately reused by
        // the next insert: stale handles abound; the list must stay
        // correct.
        let list = VbrList::new(4);
        for round in 0..2_000i64 {
            let k = round % 3;
            assert!(list.insert(k), "round {round}");
            assert!(list.contains(k));
            assert!(list.delete(k));
            assert!(!list.contains(k));
        }
        assert!(list.is_empty());
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_disjoint_ranges() {
        let list = VbrList::new(4_096);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let list = &list;
                s.spawn(move || {
                    let base = t * 500;
                    for k in base..base + 500 {
                        assert!(list.insert(k));
                    }
                    for k in base..base + 500 {
                        assert!(list.contains(k));
                    }
                    for k in base..base + 500 {
                        assert!(list.delete(k));
                    }
                });
            }
        });
        assert!(list.is_empty());
        assert_eq!(list.arena().live(), 2, "only the sentinels remain");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_contended_churn() {
        let list = VbrList::new(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let list = &list;
                s.spawn(move || {
                    for round in 0..500i64 {
                        let k = round % 8;
                        if list.insert(k) {
                            let _ = list.delete(k);
                        }
                        let _ = list.contains(k);
                    }
                });
            }
        });
        // Quiescent invariants: sorted unique keys, stats balanced.
        let keys = list.collect_keys();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
        let st = list.arena().stats();
        assert_eq!(st.retired_now, 0);
    }
}
