//! Michael's lock-free hash set [30]: a fixed array of
//! [`MichaelList`] buckets.
//!
//! Keys hash (Fibonacci multiplicative hashing) to a bucket; each bucket
//! is an independent sorted list, so the set inherits lock-freedom and
//! scheme-compatibility (every pointer-based scheme, HP included) from
//! the list.

use std::fmt;

use era_smr::common::Smr;

use crate::michael_list::MichaelList;

/// A lock-free hash set of `i64` keys.
///
/// # Example
///
/// ```
/// use era_ds::HashSet;
/// use era_smr::{hp::Hp, Smr};
///
/// let smr = Hp::new(2, 3);
/// let set = HashSet::new(&smr, 64);
/// let mut ctx = smr.register().unwrap();
/// assert!(set.insert(&mut ctx, 10));
/// assert!(set.contains(&mut ctx, 10));
/// assert!(set.delete(&mut ctx, 10));
/// assert!(!set.contains(&mut ctx, 10));
/// ```
pub struct HashSet<'s, S: Smr> {
    buckets: Vec<MichaelList<'s, S>>,
}

impl<S: Smr> fmt::Debug for HashSet<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashSet")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

impl<'s, S: Smr> HashSet<'s, S> {
    /// Creates a hash set with `buckets` buckets (rounded up to 1).
    pub fn new(smr: &'s S, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        HashSet {
            buckets: (0..buckets).map(|_| MichaelList::new(smr)).collect(),
        }
    }

    fn bucket(&self, key: i64) -> &MichaelList<'s, S> {
        // Fibonacci hashing on the two's-complement bits.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (h % self.buckets.len() as u64) as usize;
        &self.buckets[idx]
    }

    /// Inserts `key`; returns `true` iff it was absent.
    pub fn insert(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        self.bucket(key).insert(ctx, key)
    }

    /// Deletes `key`; returns `true` iff it was present.
    pub fn delete(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        self.bucket(key).delete(ctx, key)
    }

    /// Whether `key` is in the set.
    pub fn contains(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        self.bucket(key).contains(ctx, key)
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Snapshot of all keys, sorted (quiescent use only).
    pub fn collect_keys(&self) -> Vec<i64> {
        let mut out: Vec<i64> = self.buckets.iter().flat_map(|b| b.collect_keys()).collect();
        out.sort_unstable();
        out
    }

    /// Number of keys (quiescent use only).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Whether the set is empty (quiescent use only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::hp::Hp;

    #[test]
    fn basic_semantics() {
        let smr = Hp::new(2, 3);
        let set = HashSet::new(&smr, 16);
        let mut ctx = smr.register().unwrap();
        for k in 0..100 {
            assert!(set.insert(&mut ctx, k));
        }
        for k in 0..100 {
            assert!(!set.insert(&mut ctx, k));
            assert!(set.contains(&mut ctx, k));
        }
        assert_eq!(set.len(), 100);
        assert_eq!(set.collect_keys(), (0..100).collect::<Vec<_>>());
        for k in (0..100).step_by(2) {
            assert!(set.delete(&mut ctx, k));
        }
        assert_eq!(set.len(), 50);
        assert!(!set.contains(&mut ctx, 0));
        assert!(set.contains(&mut ctx, 1));
    }

    #[test]
    fn single_bucket_degenerates_to_list() {
        let smr = Ebr::new(2);
        let set = HashSet::new(&smr, 0); // rounded up to 1
        assert_eq!(set.bucket_count(), 1);
        let mut ctx = smr.register().unwrap();
        assert!(set.insert(&mut ctx, -5));
        assert!(set.insert(&mut ctx, 5));
        assert_eq!(set.collect_keys(), vec![-5, 5]);
    }

    #[test]
    fn negative_keys_hash_fine() {
        let smr = Ebr::new(2);
        let set = HashSet::new(&smr, 8);
        let mut ctx = smr.register().unwrap();
        for k in [-1000, -1, 0, 1, 1000, i64::MIN + 1, i64::MAX - 1] {
            assert!(set.insert(&mut ctx, k), "{k}");
            assert!(set.contains(&mut ctx, k), "{k}");
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_disjoint_and_contended() {
        let smr = Hp::new(8, 3);
        let set = HashSet::new(&smr, 32);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let (set, smr) = (&set, &smr);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    let base = t * 500;
                    for k in base..base + 500 {
                        assert!(set.insert(&mut ctx, k));
                    }
                    for k in base..base + 500 {
                        assert!(set.delete(&mut ctx, k));
                    }
                    for _ in 0..4 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
        assert!(set.is_empty());
    }
}
