//! A lock-free hash map: a fixed array of [`MichaelMap`] buckets.
//!
//! The map-valued sibling of [`crate::HashSet`], added as the
//! shard-friendly building block for the era-kv serving layer: a shard
//! is one `HashMap` owning nothing but borrowed scheme state, so a
//! service can stand up N shards over N *independent* reclaimer
//! domains (`HashMap::new(&schemes[i], buckets)`) and a stalled reader
//! in one domain cannot block reclamation in the others.
//!
//! Keys hash with Fibonacci multiplicative hashing to a bucket; each
//! bucket is an independent sorted [`MichaelMap`] list, so the map
//! inherits lock-freedom and scheme-compatibility (every pointer-based
//! scheme, HP included — three protection slots) from the list.

use std::fmt;

use era_smr::common::Smr;

use crate::michael_map::MichaelMap;

/// A lock-free hash map from `i64` keys to `i64` values.
///
/// # Example
///
/// ```
/// use era_ds::HashMap;
/// use era_smr::{hp::Hp, Smr};
///
/// let smr = Hp::new(2, 3); // protect-based schemes need 3 slots
/// let map = HashMap::new(&smr, 64);
/// let mut ctx = smr.register().unwrap();
/// assert_eq!(map.insert(&mut ctx, 10, 1), None);
/// assert_eq!(map.insert(&mut ctx, 10, 2), Some(1)); // upsert
/// assert_eq!(map.get(&mut ctx, 10), Some(2));
/// assert_eq!(map.remove(&mut ctx, 10), Some(2));
/// ```
pub struct HashMap<'s, S: Smr> {
    buckets: Vec<MichaelMap<'s, S>>,
}

impl<S: Smr> fmt::Debug for HashMap<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HashMap")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

impl<'s, S: Smr> HashMap<'s, S> {
    /// Creates a hash map with `buckets` buckets (rounded up to 1),
    /// all sharing the reclaimer domain `smr`.
    pub fn new(smr: &'s S, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        HashMap {
            buckets: (0..buckets).map(|_| MichaelMap::new(smr)).collect(),
        }
    }

    fn bucket(&self, key: i64) -> &MichaelMap<'s, S> {
        // Fibonacci hashing on the two's-complement bits.
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (h % self.buckets.len() as u64) as usize;
        &self.buckets[idx]
    }

    /// Inserts or updates `key`; returns the previous value if any.
    pub fn insert(&self, ctx: &mut S::ThreadCtx, key: i64, value: i64) -> Option<i64> {
        self.bucket(key).insert(ctx, key, value)
    }

    /// Current value of `key`.
    pub fn get(&self, ctx: &mut S::ThreadCtx, key: i64) -> Option<i64> {
        self.bucket(key).get(ctx, key)
    }

    /// Removes `key`; returns the removed value if it was present.
    pub fn remove(&self, ctx: &mut S::ThreadCtx, key: i64) -> Option<i64> {
        self.bucket(key).remove(ctx, key)
    }

    /// Atomically adds `delta` to the value of `key`; returns the new
    /// value, or `None` if the key is absent.
    pub fn fetch_add(&self, ctx: &mut S::ThreadCtx, key: i64, delta: i64) -> Option<i64> {
        self.bucket(key).fetch_add(ctx, key, delta)
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Snapshot of all entries, sorted by key (quiescent use only).
    pub fn collect_entries(&self) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = self
            .buckets
            .iter()
            .flat_map(|b| b.collect_entries())
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of entries (quiescent use only).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Whether the map is empty (quiescent use only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::hp::Hp;
    use era_smr::Smr;

    #[test]
    fn basic_semantics() {
        let smr = Hp::new(2, 3);
        let map = HashMap::new(&smr, 16);
        let mut ctx = smr.register().unwrap();
        for k in 0..100 {
            assert_eq!(map.insert(&mut ctx, k, k * 10), None);
        }
        for k in 0..100 {
            assert_eq!(map.get(&mut ctx, k), Some(k * 10));
            assert_eq!(map.insert(&mut ctx, k, k), Some(k * 10), "upsert");
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.collect_entries()[3], (3, 3));
        for k in (0..100).step_by(2) {
            assert_eq!(map.remove(&mut ctx, k), Some(k));
        }
        assert_eq!(map.len(), 50);
        assert_eq!(map.get(&mut ctx, 0), None);
        assert_eq!(map.fetch_add(&mut ctx, 1, 5), Some(6));
        assert_eq!(map.fetch_add(&mut ctx, 0, 5), None);
    }

    #[test]
    fn single_bucket_degenerates_to_list() {
        let smr = Ebr::new(2);
        let map = HashMap::new(&smr, 0); // rounded up to 1
        assert_eq!(map.bucket_count(), 1);
        let mut ctx = smr.register().unwrap();
        assert_eq!(map.insert(&mut ctx, -5, 1), None);
        assert_eq!(map.insert(&mut ctx, 5, 2), None);
        assert_eq!(map.collect_entries(), vec![(-5, 1), (5, 2)]);
    }

    #[test]
    fn independent_domains_reclaim_independently() {
        // The shard property era-kv relies on: two maps over two EBR
        // instances; a stalled reader in domain A blocks A's garbage
        // only — domain B keeps reclaiming.
        let a = Ebr::with_threshold(2, 1);
        let b = Ebr::with_threshold(2, 1);
        let map_a = HashMap::new(&a, 4);
        let map_b = HashMap::new(&b, 4);

        let mut stalled = a.register().unwrap();
        a.begin_op(&mut stalled); // pins domain A, never ends

        let mut ctx_a = a.register().unwrap();
        let mut ctx_b = b.register().unwrap();
        for k in 0..100 {
            map_a.insert(&mut ctx_a, k, k);
            map_a.remove(&mut ctx_a, k);
            map_b.insert(&mut ctx_b, k, k);
            map_b.remove(&mut ctx_b, k);
        }
        for _ in 0..4 {
            a.flush(&mut ctx_a);
            b.flush(&mut ctx_b);
        }
        assert_eq!(b.stats().retired_now, 0, "B must drain: {}", b.stats());
        assert!(
            a.stats().retired_now >= 100,
            "A must be pinned: {}",
            a.stats()
        );
        a.end_op(&mut stalled);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_disjoint_and_contended() {
        let smr = Hp::new(8, 3);
        let map = HashMap::new(&smr, 32);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let (map, smr) = (&map, &smr);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    let base = t * 500;
                    for k in base..base + 500 {
                        assert_eq!(map.insert(&mut ctx, k, k), None);
                    }
                    for k in base..base + 500 {
                        assert_eq!(map.remove(&mut ctx, k), Some(k));
                    }
                    for _ in 0..4 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
        assert!(map.is_empty());
    }
}
