//! The Michael–Scott lock-free FIFO queue, generic over any [`Smr`]
//! scheme.
//!
//! The classic two-pointer queue with a dummy node: `enqueue` links at
//! the tail (helping lagging tails forward), `dequeue` advances the head
//! and retires the old dummy. Needs two protection slots (`head`/`tail`
//! and the successor).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use era_smr::common::{DropFn, Smr, SmrHeader};

#[repr(C)]
struct Node {
    header: SmrHeader,
    value: i64,
    next: AtomicUsize,
}

impl Node {
    fn alloc(value: i64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            header: SmrHeader::new(),
            value,
            next: AtomicUsize::new(0),
        }))
    }
}

/// # Safety
/// `p` must be a pointer previously produced by `Node::alloc` that no other
/// thread can still reach (retired and past its grace period, or owned
/// exclusively by `Drop`).
unsafe fn drop_node(p: *mut u8) {
    // SAFETY: contract above — p originated in Node::alloc and is unreachable.
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

const DROP_NODE: DropFn = drop_node;

/// A lock-free FIFO queue of `i64` values.
///
/// # Example
///
/// ```
/// use era_ds::MsQueue;
/// use era_smr::{ebr::Ebr, Smr};
///
/// let smr = Ebr::new(2);
/// let queue = MsQueue::new(&smr);
/// let mut ctx = smr.register().unwrap();
/// queue.enqueue(&mut ctx, 1);
/// queue.enqueue(&mut ctx, 2);
/// assert_eq!(queue.dequeue(&mut ctx), Some(1));
/// assert_eq!(queue.dequeue(&mut ctx), Some(2));
/// assert_eq!(queue.dequeue(&mut ctx), None);
/// ```
pub struct MsQueue<'s, S: Smr> {
    smr: &'s S,
    head: AtomicUsize,
    tail: AtomicUsize,
}

impl<S: Smr> fmt::Debug for MsQueue<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue")
            .field("smr", &self.smr.name())
            .finish_non_exhaustive()
    }
}

impl<'s, S: Smr> MsQueue<'s, S> {
    /// Creates an empty queue using `smr` for reclamation.
    ///
    /// Protect-based schemes must provide at least 2 slots per thread.
    pub fn new(smr: &'s S) -> Self {
        let dummy = Node::alloc(0) as usize;
        MsQueue {
            smr,
            head: AtomicUsize::new(dummy),
            tail: AtomicUsize::new(dummy),
        }
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, ctx: &mut S::ThreadCtx, value: i64) {
        self.smr.begin_op(ctx);
        let node = Node::alloc(value);
        // SAFETY: `node` is fresh and unshared until the link CAS publishes it;
        // `tail_node` is protected by the slot armed by `smr.load` each round
        // before any deref, and a stale tail is detected by the re-check.
        self.smr.init_header(ctx, unsafe { &(*node).header });
        loop {
            let tail = self.smr.load(ctx, 0, &self.tail); // protected
            let tail_node = tail as *const Node;
            let next = unsafe { (*tail_node).next.load(Ordering::SeqCst) };
            if self.tail.load(Ordering::SeqCst) != tail {
                continue;
            }
            if next != 0 {
                // Tail lags: help it forward.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Ordering::SeqCst, Ordering::SeqCst);
                continue;
            }
            if unsafe { &(*tail_node).next }
                .compare_exchange(0, node as usize, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                let _ = self.tail.compare_exchange(
                    tail,
                    node as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                break;
            }
        }
        self.smr.end_op(ctx);
    }

    /// Removes the oldest value, or `None` when empty.
    pub fn dequeue(&self, ctx: &mut S::ThreadCtx) -> Option<i64> {
        self.smr.begin_op(ctx);
        let result = loop {
            let head = self.smr.load(ctx, 0, &self.head); // protected dummy
            let tail = self.tail.load(Ordering::SeqCst);
            // SAFETY: `head_node` is protected by slot 0 (armed by the smr.load
            // that produced `head`), `next` by slot 1 before its deref; the
            // head re-check catches a swing between load and protect.
            let head_node = head as *const Node;
            let next = self.smr.load(ctx, 1, unsafe { &(*head_node).next }); // protected successor
            if self.head.load(Ordering::SeqCst) != head {
                continue;
            }
            if next == 0 {
                break None; // empty
            }
            if head == tail {
                // Tail lags behind a non-empty queue: help.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, Ordering::SeqCst, Ordering::SeqCst);
                continue;
            }
            // Read the value *before* the CAS: after it, another thread
            // may dequeue-and-retire `next` (it becomes the new dummy).
            let value = unsafe { (*(next as *const Node)).value };
            if self
                .head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                unsafe {
                    self.smr
                        .retire(ctx, head as *mut u8, &(*head_node).header, DROP_NODE);
                }
                break Some(value);
            }
        };
        self.smr.end_op(ctx);
        result
    }

    /// Whether the queue is empty right now (racy outside quiescence).
    // LINT: quiescent — racy-by-contract probe; the sentinel head is never freed
    // while the queue is alive, so the single deref cannot touch reclaimed memory
    // only a stale answer.
    pub fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::SeqCst) as *const Node;
        // SAFETY: the dummy head is never freed while the queue is alive (see
        // LINT waiver above) — worst case this reads a stale emptiness answer.
        unsafe { (*head).next.load(Ordering::SeqCst) == 0 }
    }

    /// Number of values (quiescent use only).
    pub fn len(&self) -> usize {
        let mut n = 0;
        // SAFETY: quiescent contract (doc above): no concurrent producers or
        // consumers, so every reachable node is live.
        let mut word = unsafe {
            (*(self.head.load(Ordering::SeqCst) as *const Node))
                .next
                .load(Ordering::SeqCst)
        };
        while word != 0 {
            n += 1;
            word = unsafe { (*(word as *const Node)).next.load(Ordering::SeqCst) };
        }
        n
    }
}

impl<S: Smr> Drop for MsQueue<'_, S> {
    // LINT: exclusive — &mut self in Drop: no concurrent readers can exist.
    fn drop(&mut self) {
        let mut word = self.head.load(Ordering::SeqCst);
        while word != 0 {
            let node = word as *mut Node;
            // SAFETY: &mut self — exclusive access; each node freed exactly once.
            word = unsafe { (*node).next.load(Ordering::SeqCst) };
            unsafe { drop_node(node as *mut u8) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::he::He;
    use era_smr::hp::Hp;
    use era_smr::ibr::Ibr;
    use era_smr::leak::Leak;

    fn exercise<S: Smr>(smr: &S) {
        let q = MsQueue::new(smr);
        let mut ctx = smr.register().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(&mut ctx), None);
        for i in 0..10 {
            q.enqueue(&mut ctx, i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10 {
            assert_eq!(q.dequeue(&mut ctx), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn fifo_semantics_all_schemes() {
        exercise(&Ebr::new(2));
        exercise(&Hp::new(2, 2));
        exercise(&He::new(2, 2));
        exercise(&Ibr::new(2));
        exercise(&Leak::new(2));
    }

    fn stress<S: Smr + Sync>(smr: &S, producers: usize, consumers: usize, per_thread: i64) {
        let q = MsQueue::new(smr);
        let consumed = std::sync::atomic::AtomicI64::new(0);
        let consumed_count = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..producers {
                let q = &q;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    let base = t as i64 * per_thread;
                    for i in 0..per_thread {
                        q.enqueue(&mut ctx, base + i);
                    }
                });
            }
            for _ in 0..consumers {
                let (q, consumed, consumed_count) = (&q, &consumed, &consumed_count);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    let target = (producers as i64 * per_thread) as usize;
                    loop {
                        match q.dequeue(&mut ctx) {
                            Some(v) => {
                                // SAFETY(ordering): Relaxed — test tallies, read
                                // only after the worker threads are joined.
                                consumed.fetch_add(v, Ordering::Relaxed);
                                consumed_count.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if consumed_count.load(Ordering::Relaxed) >= target {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    for _ in 0..4 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
        let total: i64 = (0..producers as i64 * per_thread).sum();
        assert_eq!(consumed.load(Ordering::Relaxed), total);
        assert!(q.is_empty());
    }

    #[test]
    fn stress_hp() {
        stress(&Hp::new(8, 2), 2, 2, 2_000);
    }

    #[test]
    fn stress_ebr() {
        stress(&Ebr::new(8), 2, 2, 2_000);
    }

    #[test]
    fn stress_he() {
        stress(&He::new(8, 2), 2, 2, 2_000);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn per_thread_fifo_order_preserved() {
        // With one producer and one consumer, exact FIFO must hold.
        let smr = Ebr::new(2);
        let q = MsQueue::new(&smr);
        std::thread::scope(|s| {
            let q = &q;
            let smr = &smr;
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                for i in 0..5_000 {
                    q.enqueue(&mut ctx, i);
                }
            });
            s.spawn(move || {
                let mut ctx = smr.register().unwrap();
                let mut expected = 0i64;
                while expected < 5_000 {
                    if let Some(v) = q.dequeue(&mut ctx) {
                        assert_eq!(v, expected);
                        expected += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }

    #[test]
    fn memory_reclaimed_under_churn() {
        let smr = Hp::with_threshold(2, 2, 8);
        let q = MsQueue::new(&smr);
        let mut ctx = smr.register().unwrap();
        for i in 0..1_000 {
            q.enqueue(&mut ctx, i);
            let _ = q.dequeue(&mut ctx);
        }
        smr.flush(&mut ctx);
        let st = smr.stats();
        assert_eq!(st.total_retired, 1_000);
        assert!(st.retired_now <= 12, "{st}");
    }
}
