//! Harris's lock-free linked list [19] — Algorithm 1 of the paper.
//!
//! The defining behaviour (and the crux of the ERA theorem): the
//! `search` traversal does **not** stop at marked nodes — it walks
//! straight through chains of logically deleted (and possibly already
//! *retired*) nodes, unlinking a whole chain with one CAS only when the
//! traversal needs a window. This makes searches fast and lock-free, but
//! it means a traversal can stand on a retired node, which is exactly
//! what protect-validate schemes (HP/HE/IBR) cannot allow (Appendix E).
//!
//! Accordingly the list is generic over schemes carrying the
//! [`SupportsUnlinkedTraversal`] marker — EBR, NBR and Leak. The type
//! system enforces Appendix E: `HarrisList<Hp>` does not compile.
//!
//! The integration follows the paper end-to-end:
//!
//! * sentinels `head` (−∞) and `tail` (+∞) that are never removed;
//! * logical deletion by marking `next` (line 48), physical unlink by
//!   the marker or any later `search` (lines 18, 50);
//! * `retire()` at line 34 (duplicate insert retires its local node) and
//!   line 52 (delete retires its victim after it is surely unlinked);
//! * the Appendix D phase division, surfaced to the scheme through the
//!   NBR hooks: `enter_read_phase` when a traversal (re)starts,
//!   `needs_restart` polls at every hop, `reserve`/`commit_reservations`
//!   before the write phase. For EBR/Leak these hooks are no-ops and the
//!   integration degenerates to plain `begin_op`/`end_op` — easy
//!   integration, as the paper says.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use era_smr::common::{
    is_marked, untagged, with_mark, DropFn, Smr, SmrHeader, SupportsUnlinkedTraversal,
};

/// Reservation slots for the write phase (NBR).
const SLOT_PRED: usize = 0;
const SLOT_CURR: usize = 1;

#[repr(C)]
struct Node {
    header: SmrHeader,
    key: i64,
    next: AtomicUsize,
}

impl Node {
    fn alloc(key: i64, next: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            header: SmrHeader::new(),
            key,
            next: AtomicUsize::new(next),
        }))
    }
}

/// # Safety
/// `p` must be a pointer previously produced by `Node::alloc` that no other
/// thread can still reach (retired and past its grace period, or owned
/// exclusively by `Drop`).
unsafe fn drop_node(p: *mut u8) {
    // SAFETY: contract above — p originated in Node::alloc and is unreachable.
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

const DROP_NODE: DropFn = drop_node;

/// Harris's lock-free sorted set (sentinel keys −∞/+∞ are internal;
/// user keys span all of `i64`).
///
/// # Example
///
/// ```
/// use era_ds::HarrisList;
/// use era_smr::{ebr::Ebr, Smr};
///
/// let smr = Ebr::new(4);
/// let list = HarrisList::new(&smr);
/// let mut ctx = smr.register().unwrap();
/// assert!(list.insert(&mut ctx, 1));
/// assert!(list.insert(&mut ctx, 2));
/// assert!(list.delete(&mut ctx, 1));
/// assert!(!list.contains(&mut ctx, 1));
/// assert!(list.contains(&mut ctx, 2));
/// ```
///
/// Appendix E as a type error: hazard pointers do not implement
/// [`SupportsUnlinkedTraversal`], so this does not compile —
///
/// ```compile_fail,E0277
/// use era_ds::HarrisList;
/// use era_smr::hp::Hp;
///
/// let smr = Hp::new(4, 3);
/// let list = HarrisList::new(&smr); // HP cannot traverse marked chains
/// ```
pub struct HarrisList<'s, S: Smr + SupportsUnlinkedTraversal> {
    smr: &'s S,
    /// The −∞ sentinel. Never marked, never retired.
    head: *mut Node,
    /// The +∞ sentinel.
    tail: *mut Node,
}

// The raw sentinel pointers are immutable after construction and the
// nodes they reference are shared the same way the scheme's own nodes
// are.
// SAFETY: shared mutable state is atomics plus SMR-managed nodes; raw Node
// pointers are dereferenced only inside begin_op/end_op (or exclusively in
// Drop), and the scheme itself carries the Sync/Send bounds.
unsafe impl<S: Smr + SupportsUnlinkedTraversal + Sync> Sync for HarrisList<'_, S> {}
unsafe impl<S: Smr + SupportsUnlinkedTraversal + Send> Send for HarrisList<'_, S> {}

impl<S: Smr + SupportsUnlinkedTraversal> fmt::Debug for HarrisList<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HarrisList")
            .field("smr", &self.smr.name())
            .finish_non_exhaustive()
    }
}

struct Window {
    pred: *const Node,
    curr: *const Node,
}

impl<'s, S: Smr + SupportsUnlinkedTraversal> HarrisList<'s, S> {
    /// Creates an empty set using `smr` for reclamation.
    ///
    /// Schemes with reservation slots (NBR) must provide at least 2.
    pub fn new(smr: &'s S) -> Self {
        let tail = Node::alloc(i64::MAX, 0);
        let head = Node::alloc(i64::MIN, tail as usize);
        HarrisList { smr, head, tail }
    }

    /// Whether `key` is a user key (the sentinel keys are reserved).
    fn check_key(key: i64) {
        assert!(
            key != i64::MIN && key != i64::MAX,
            "i64::MIN/MAX are reserved sentinel keys"
        );
    }

    /// Algorithm 1, lines 1–22: locate the window for `key`, walking
    /// through marked chains and unlinking them lazily.
    ///
    /// Returns with the write phase entered: `pred`/`curr` are reserved
    /// and committed (NBR), so the caller may CAS on them; the caller
    /// must not traverse further without a new read phase.
    fn search(&self, ctx: &mut S::ThreadCtx, key: i64) -> Window {
        'retry: loop {
            self.smr.enter_read_phase(ctx);
            // SAFETY: the whole walk runs inside the caller's begin_op on a scheme
            // with SupportsUnlinkedTraversal — marked/unlinked nodes remain
            // dereferenceable until a grace period passes (Def. 4.2 Condition 1),
            // and needs_restart is polled before trusting any read after a
            // potential neutralization.
            let mut pred: *const Node = self.head;
            let mut pred_next = unsafe { (*pred).next.load(Ordering::SeqCst) }; // line 4
            let mut curr: *const Node = untagged(pred_next) as *const Node;
            let mut curr_next = unsafe { (*curr).next.load(Ordering::SeqCst) }; // line 6
                                                                                // line 7: traverse while curr is marked or key too small
            while is_marked(curr_next) || unsafe { (*curr).key } < key {
                if self.smr.needs_restart(ctx) {
                    continue 'retry; // neutralized: drop everything
                }
                if !is_marked(curr_next) {
                    pred = curr; // lines 8–10
                    pred_next = curr_next;
                }
                curr = untagged(curr_next) as *const Node; // line 11
                if curr == self.tail {
                    break; // line 12
                }
                curr_next = unsafe { (*curr).next.load(Ordering::SeqCst) }; // line 13
            }
            // Write phase: reserve the window before any CAS.
            self.smr.reserve(ctx, SLOT_PRED, pred as usize);
            self.smr.reserve(ctx, SLOT_CURR, curr as usize);
            if !self.smr.commit_reservations(ctx) {
                continue 'retry;
            }
            if pred_next == curr as usize {
                // line 14: no marked chain between pred and curr
                if curr != self.tail && is_marked(unsafe { (*curr).next.load(Ordering::SeqCst) }) {
                    self.smr.clear_reservations(ctx);
                    continue 'retry; // lines 15–16
                }
                return Window { pred, curr }; // line 17
            }
            // line 18: unlink the whole marked chain [pred_next, curr)
            if unsafe { &(*pred).next }
                .compare_exchange(pred_next, curr as usize, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                if curr != self.tail && is_marked(unsafe { (*curr).next.load(Ordering::SeqCst) }) {
                    self.smr.clear_reservations(ctx);
                    continue 'retry; // line 20
                }
                return Window { pred, curr }; // line 22
            }
            self.smr.clear_reservations(ctx);
        }
    }

    /// `insert(key)` — Algorithm 1, lines 27–38.
    pub fn insert(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        Self::check_key(key);
        self.smr.begin_op(ctx);
        let node = Node::alloc(key, 0);
        // SAFETY: `node` is fresh and unshared until the linking CAS publishes
        // it; w.pred/w.curr come from `search` under this op's protection.
        self.smr.init_header(ctx, unsafe { &(*node).header });
        let result = loop {
            let w = self.search(ctx, key); // line 30
            if w.curr != self.tail && unsafe { (*w.curr).key } == key {
                // lines 33–35: duplicate — retire the local node
                self.smr.clear_reservations(ctx);
                unsafe {
                    self.smr
                        .retire(ctx, node as *mut u8, &(*node).header, DROP_NODE);
                }
                break false;
            }
            unsafe { (*node).next.store(w.curr as usize, Ordering::SeqCst) }; // line 36
            let linked = unsafe { &(*w.pred).next }
                .compare_exchange(
                    w.curr as usize,
                    node as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok(); // line 37
            self.smr.clear_reservations(ctx);
            if linked {
                break true; // line 38
            }
        };
        self.smr.end_op(ctx);
        result
    }

    /// `delete(key)` — Algorithm 1, lines 39–53.
    pub fn delete(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        Self::check_key(key);
        self.smr.begin_op(ctx);
        let result = 'outer: loop {
            let w = self.search(ctx, key); // line 41
                                           // SAFETY: w.pred/w.curr are protected by this op (search returned them
                                           // under our begin_op); the mark CAS wins at most once, so the retire
                                           // below happens exactly once per node.
            if w.curr == self.tail || unsafe { (*w.curr).key } != key {
                self.smr.clear_reservations(ctx);
                break false; // lines 44–45
            }
            loop {
                let succ_word = unsafe { (*w.curr).next.load(Ordering::SeqCst) };
                if is_marked(succ_word) {
                    // line 46: concurrently deleted — retry the search
                    self.smr.clear_reservations(ctx);
                    continue 'outer;
                }
                // line 48: logical deletion (mark curr's next)
                if unsafe { &(*w.curr).next }
                    .compare_exchange(
                        succ_word,
                        with_mark(succ_word),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_err()
                {
                    continue; // line 49
                }
                // line 50: try to unlink; otherwise a search() will
                let unlinked = unsafe { &(*w.pred).next }
                    .compare_exchange(
                        w.curr as usize,
                        untagged(succ_word),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok();
                self.smr.clear_reservations(ctx);
                if !unlinked {
                    let _ = self.search(ctx, key); // line 51
                    self.smr.clear_reservations(ctx);
                }
                // line 52: the marker retires — exactly once per node
                unsafe {
                    self.smr
                        .retire(ctx, w.curr as *mut u8, &(*w.curr).header, DROP_NODE);
                }
                break 'outer true; // line 53
            }
        };
        self.smr.end_op(ctx);
        result
    }

    /// `contains(key)` — Algorithm 1 restricts searches to lines 23–26
    /// (a `search` call), but Harris's model never *requires* a search
    /// to help unlink, and every scheme this list's type bound admits
    /// is op-scoped (EBR/QSBR/NBR/leak — no per-node protection), so
    /// the read path here is the wait-free raw-link walk Herlihy &
    /// Shavit prove linearizable for this list family: follow `next`
    /// words — through marked chains — and decide from the first node
    /// with `key ≥ target`. No unlink CASes, no reservations (nothing
    /// is dereferenced after the read phase ends), no window tracking.
    ///
    /// Restart-based schemes void the op-scoped protection when they
    /// neutralize a thread, so the walk polls [`Smr::needs_restart`]
    /// every hop (a relaxed self-flag load) and rewalks from the head.
    pub fn contains(&self, ctx: &mut S::ThreadCtx, key: i64) -> bool {
        Self::check_key(key);
        self.smr.begin_op(ctx);
        let found = 'retry: loop {
            self.smr.enter_read_phase(ctx);
            // SAFETY(ordering): SeqCst link loads keep the walk in the
            // retire-stamp SC chain (see `Smr::load`) — free on x86-TSO.
            let mut curr =
                untagged(unsafe { (*self.head).next.load(Ordering::SeqCst) }) as *const Node;
            loop {
                if self.smr.needs_restart(ctx) {
                    continue 'retry;
                }
                // The tail sentinel (key = i64::MAX, never retired)
                // stops the walk without an explicit pointer compare:
                // check_key rejects i64::MAX as a user key.
                let next = unsafe { (*curr).next.load(Ordering::SeqCst) };
                let ckey = unsafe { (*curr).key };
                if ckey < key {
                    curr = untagged(next) as *const Node;
                    continue;
                }
                break 'retry ckey == key && !is_marked(next);
            }
        };
        self.smr.end_op(ctx);
        found
    }

    /// Snapshot of the keys (quiescent use only).
    // LINT: quiescent — snapshot API, documented callers-must-be-quiescent contract.
    pub fn collect_keys(&self) -> Vec<i64> {
        let mut out = Vec::new();
        // SAFETY: quiescent snapshot contract (doc above): no concurrent writers,
        // so every reachable node is live.
        let mut node = untagged(unsafe { (*self.head).next.load(Ordering::SeqCst) }) as *const Node;
        while node != self.tail {
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            if !is_marked(next) {
                out.push(unsafe { (*node).key });
            }
            node = untagged(next) as *const Node;
        }
        out
    }

    /// Number of unmarked nodes (quiescent use only).
    pub fn len(&self) -> usize {
        self.collect_keys().len()
    }

    /// Whether the set is empty (quiescent use only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<S: Smr + SupportsUnlinkedTraversal> Drop for HarrisList<'_, S> {
    // LINT: exclusive — &mut self in Drop: no concurrent readers can exist.
    fn drop(&mut self) {
        let mut node = self.head;
        while !node.is_null() {
            // SAFETY: &mut self — exclusive access; marked nodes included, each
            // reachable node is freed exactly once, stopping at the tail sentinel.
            let next = untagged(unsafe { (*node).next.load(Ordering::SeqCst) }) as *mut Node;
            unsafe { drop_node(node as *mut u8) };
            if node == self.tail {
                break;
            }
            node = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::leak::Leak;
    use era_smr::nbr::Nbr;

    fn exercise_sequential<S: Smr + SupportsUnlinkedTraversal>(smr: &S) {
        let list = HarrisList::new(smr);
        let mut ctx = smr.register().unwrap();
        assert!(list.is_empty());
        assert!(list.insert(&mut ctx, 3));
        assert!(list.insert(&mut ctx, 1));
        assert!(list.insert(&mut ctx, 2));
        assert!(!list.insert(&mut ctx, 2));
        assert_eq!(list.collect_keys(), vec![1, 2, 3]);
        assert!(list.contains(&mut ctx, 2));
        assert!(!list.contains(&mut ctx, 7));
        assert!(list.delete(&mut ctx, 2));
        assert!(!list.delete(&mut ctx, 2));
        assert!(list.insert(&mut ctx, 2));
        for k in [1, 2, 3] {
            assert!(list.delete(&mut ctx, k));
        }
        assert!(list.is_empty());
    }

    #[test]
    fn sequential_semantics_all_compatible_schemes() {
        exercise_sequential(&Ebr::new(2));
        exercise_sequential(&Nbr::new(2, 2));
        exercise_sequential(&Leak::new(2));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    #[should_panic(expected = "reserved sentinel keys")]
    fn sentinel_keys_rejected() {
        let smr = Leak::new(1);
        let list = HarrisList::new(&smr);
        let mut ctx = smr.register().unwrap();
        let _ = list.insert(&mut ctx, i64::MAX);
    }

    fn stress<S: Smr + SupportsUnlinkedTraversal + Sync>(smr: &S, threads: usize, per_thread: i64) {
        let list = HarrisList::new(smr);
        std::thread::scope(|s| {
            for t in 0..threads {
                let list = &list;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    let base = t as i64 * per_thread;
                    for k in base..base + per_thread {
                        assert!(list.insert(&mut ctx, k));
                    }
                    for k in base..base + per_thread {
                        assert!(list.contains(&mut ctx, k));
                    }
                    for k in base..base + per_thread {
                        assert!(list.delete(&mut ctx, k));
                    }
                    for _ in 0..4 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
        assert!(list.is_empty());
        // Contended churn on overlapping keys.
        std::thread::scope(|s| {
            for _ in 0..threads {
                let list = &list;
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for round in 0..300i64 {
                        let k = round % 10;
                        if list.insert(&mut ctx, k) {
                            let _ = list.delete(&mut ctx, k);
                        }
                        let _ = list.contains(&mut ctx, k);
                    }
                    for _ in 0..4 {
                        smr.flush(&mut ctx);
                    }
                });
            }
        });
    }

    #[test]
    fn stress_ebr() {
        stress(&Ebr::new(8), 4, 250);
    }

    #[test]
    fn stress_nbr() {
        stress(&Nbr::with_threshold(8, 2, 32), 4, 250);
    }

    #[test]
    fn stress_leak() {
        stress(&Leak::new(8), 4, 250);
    }

    #[test]
    fn marked_chain_unlinked_in_one_cas() {
        // Build 1→2→3, mark 1 and 2 without unlinking (simulating two
        // deletes paused after line 48), then let a search unlink the
        // whole chain at once.
        let smr = Leak::new(1);
        let list = HarrisList::new(&smr);
        let mut ctx = smr.register().unwrap();
        for k in [1, 2, 3] {
            assert!(list.insert(&mut ctx, k));
        }
        // LINT: quiescent — single-threaded test poking at a private list.
        // SAFETY: single-threaded test; no node has been retired, so every link
        // target is live. Marking by hand mimics delete's line 48.
        // Mark nodes 1 and 2 by hand (what delete's line 48 does).
        unsafe {
            let n1 = untagged((*list.head).next.load(Ordering::SeqCst)) as *const Node;
            assert_eq!((*n1).key, 1);
            let n1_next = (*n1).next.load(Ordering::SeqCst);
            let n2 = untagged(n1_next) as *const Node;
            assert_eq!((*n2).key, 2);
            let n2_next = (*n2).next.load(Ordering::SeqCst);
            (*n2).next.store(with_mark(n2_next), Ordering::SeqCst);
            (*n1).next.store(with_mark(n1_next), Ordering::SeqCst);
        }
        assert_eq!(list.collect_keys(), vec![3]);
        // contains is read-only: it sees through the marked chain
        // without unlinking anything.
        assert!(list.contains(&mut ctx, 3));
        assert!(!list.contains(&mut ctx, 1));
        unsafe {
            let first = untagged((*list.head).next.load(Ordering::SeqCst)) as *const Node;
            assert_eq!((*first).key, 1, "read-only contains must not unlink");
        }
        // A mutation's search() unlinks the whole chain in one CAS.
        assert!(!list.delete(&mut ctx, 0));
        unsafe {
            let first = untagged((*list.head).next.load(Ordering::SeqCst)) as *const Node;
            assert_eq!((*first).key, 3, "marked chain must be physically unlinked");
        }
    }

    #[test]
    fn ebr_reclaims_under_churn() {
        let smr = Ebr::with_threshold(2, 8);
        let list = HarrisList::new(&smr);
        let mut ctx = smr.register().unwrap();
        for k in 0..300 {
            assert!(list.insert(&mut ctx, k));
            assert!(list.delete(&mut ctx, k));
        }
        for _ in 0..6 {
            smr.flush(&mut ctx);
        }
        let st = smr.stats();
        assert_eq!(st.total_retired, 300);
        assert!(st.total_reclaimed >= 200, "{st}");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn nbr_reclaims_with_cooperative_readers() {
        let smr = Nbr::with_threshold(4, 2, 16);
        let list = HarrisList::new(&smr);
        std::thread::scope(|s| {
            let list = &list;
            let smr_ref = &smr;
            // Churner retires nodes and neutralizes.
            s.spawn(move || {
                let mut ctx = smr_ref.register().unwrap();
                for k in 0..500i64 {
                    assert!(list.insert(&mut ctx, k % 50 + 1000));
                    assert!(list.delete(&mut ctx, k % 50 + 1000));
                }
                smr_ref.flush(&mut ctx);
            });
            // Cooperative readers poll inside search().
            for _ in 0..2 {
                s.spawn(move || {
                    let mut ctx = smr_ref.register().unwrap();
                    for k in 0..500i64 {
                        let _ = list.contains(&mut ctx, k % 50 + 1000);
                    }
                });
            }
        });
        let st = smr.stats();
        assert_eq!(st.total_retired, 500);
        assert!(
            st.total_reclaimed >= 400,
            "cooperative neutralization must reclaim: {st}"
        );
    }
}
