//! A lock-free ordered **map** (`i64 → i64`) built on Michael's list
//! discipline, with in-place value updates.
//!
//! Nodes carry a mutable value word next to the immutable key. `get`
//! reads the value of a protected node; `insert` either links a new
//! node or CASes the value of the existing one (upsert); `remove`
//! unlinks Michael-style. The value word belongs to the *data
//! structure* — the reclamation scheme never touches it (Definition
//! 5.3, Condition 5, from the structure's side of the fence).
//!
//! Works with every pointer-based scheme (the traversal is Michael's —
//! unlink before advance), so HP's three hazard slots suffice.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

use era_smr::common::{is_marked, untagged, with_mark, DropFn, Smr, SmrHeader};

#[repr(C)]
struct Node {
    header: SmrHeader,
    key: i64,
    value: AtomicI64,
    next: AtomicUsize,
}

impl Node {
    fn alloc(key: i64, value: i64, next: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            header: SmrHeader::new(),
            key,
            value: AtomicI64::new(value),
            next: AtomicUsize::new(next),
        }))
    }
}

/// # Safety
/// `p` must be a pointer previously produced by `Node::alloc` that no other
/// thread can still reach (retired and past its grace period, or owned
/// exclusively by `Drop`).
unsafe fn drop_node(p: *mut u8) {
    // SAFETY: contract above — p originated in Node::alloc and is unreachable.
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

const DROP_NODE: DropFn = drop_node;

const SLOT_PREV: usize = 2;

/// A lock-free sorted map from `i64` keys to `i64` values.
///
/// # Example
///
/// ```
/// use era_ds::MichaelMap;
/// use era_smr::{hp::Hp, Smr};
///
/// let smr = Hp::new(2, 3);
/// let map = MichaelMap::new(&smr);
/// let mut ctx = smr.register().unwrap();
/// assert_eq!(map.insert(&mut ctx, 1, 10), None);
/// assert_eq!(map.insert(&mut ctx, 1, 11), Some(10)); // upsert
/// assert_eq!(map.get(&mut ctx, 1), Some(11));
/// assert_eq!(map.remove(&mut ctx, 1), Some(11));
/// assert_eq!(map.get(&mut ctx, 1), None);
/// ```
pub struct MichaelMap<'s, S: Smr> {
    smr: &'s S,
    head: AtomicUsize,
}

impl<S: Smr> fmt::Debug for MichaelMap<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MichaelMap")
            .field("smr", &self.smr.name())
            .finish_non_exhaustive()
    }
}

struct Window {
    prev: *const AtomicUsize,
    curr_word: usize,
    found: bool,
}

impl<'s, S: Smr> MichaelMap<'s, S> {
    /// Creates an empty map using `smr` for reclamation.
    ///
    /// Protect-based schemes must provide at least 3 slots per thread.
    pub fn new(smr: &'s S) -> Self {
        MichaelMap {
            smr,
            head: AtomicUsize::new(0),
        }
    }

    /// Michael's find (see [`crate::michael_list`] for the discipline).
    fn find(&self, ctx: &mut S::ThreadCtx, key: i64) -> Window {
        'retry: loop {
            let mut prev: *const AtomicUsize = &self.head;
            // SAFETY: Michael-style hand-over-hand protection — `prev` always
            // points into a node protected by SLOT_PREV (or the head, which is
            // never freed), and `curr` is protected by the alternating slot before
            // any deref; validation failures restart the walk.
            let mut cs = 0usize;
            let mut curr_word = self.smr.load(ctx, cs, unsafe { &*prev });
            loop {
                debug_assert!(!is_marked(curr_word));
                if curr_word == 0 {
                    return Window {
                        prev,
                        curr_word: 0,
                        found: false,
                    };
                }
                let node = curr_word as *const Node;
                let next_word = self.smr.load(ctx, 1 - cs, unsafe { &(*node).next });
                // Re-validation only for publish-and-validate schemes;
                // see michael_list::find for the elision argument.
                if self.smr.requires_validation()
                    && unsafe { &*prev }.load(Ordering::SeqCst) != curr_word
                {
                    continue 'retry;
                }
                if is_marked(next_word) {
                    let succ = untagged(next_word);
                    if unsafe { &*prev }
                        .compare_exchange(curr_word, succ, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    unsafe {
                        self.smr
                            .retire(ctx, curr_word as *mut u8, &(*node).header, DROP_NODE);
                    }
                    curr_word = self.smr.load(ctx, cs, unsafe { &*prev });
                    if is_marked(curr_word) {
                        continue 'retry;
                    }
                    continue;
                }
                let ckey = unsafe { (*node).key };
                if ckey >= key {
                    return Window {
                        prev,
                        curr_word,
                        found: ckey == key,
                    };
                }
                // Advance: transfer curr's established protection into
                // the prev slot (see michael_list::find).
                self.smr.protect_alias(ctx, SLOT_PREV, cs, curr_word);
                prev = unsafe { &(*node).next };
                curr_word = untagged(next_word);
                cs = 1 - cs;
            }
        }
    }

    /// Upsert: maps `key` to `value`; returns the previous value if the
    /// key was present (whose mapping was atomically replaced), `None`
    /// if a new entry was created.
    pub fn insert(&self, ctx: &mut S::ThreadCtx, key: i64, value: i64) -> Option<i64> {
        self.smr.begin_op(ctx);
        let mut node: *mut Node = std::ptr::null_mut();
        let result = loop {
            let w = self.find(ctx, key);
            if w.found {
                // Update in place (the node is protected by find).
                let existing = w.curr_word as *const Node;
                // SAFETY: w.curr_word/w.prev are protected by the slots `find` left
                // armed; the local `node` stays unshared until the CAS publishes it.
                let old = unsafe { (*existing).value.swap(value, Ordering::SeqCst) };
                if !node.is_null() {
                    unsafe {
                        self.smr
                            .retire(ctx, node as *mut u8, &(*node).header, DROP_NODE);
                    }
                }
                break Some(old);
            }
            if node.is_null() {
                node = Node::alloc(key, value, 0);
                self.smr.init_header(ctx, unsafe { &(*node).header });
            }
            unsafe { (*node).next.store(w.curr_word, Ordering::SeqCst) };
            if unsafe { &*w.prev }
                .compare_exchange(
                    w.curr_word,
                    node as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                break None;
            }
        };
        self.smr.end_op(ctx);
        result
    }

    /// Returns the value mapped to `key`, if any.
    pub fn get(&self, ctx: &mut S::ThreadCtx, key: i64) -> Option<i64> {
        self.smr.begin_op(ctx);
        let result = if self.smr.requires_validation() {
            let w = self.find(ctx, key);
            w.found.then(|| {
                let node = w.curr_word as *const Node;
                // SAFETY: protected by the slot `find` left armed for curr.
                unsafe { (*node).value.load(Ordering::SeqCst) }
            })
        } else {
            self.get_read_only(ctx, key)
        };
        self.smr.end_op(ctx);
        result
    }

    /// Read-only lookup for op-scoped protection schemes — the map
    /// analogue of [`crate::MichaelList`]'s `contains_read_only` (see
    /// there for the linearizability and restart-polling arguments).
    /// The value is read after the mark check; as with `remove`, a
    /// racing in-place update may land in between, and either value is
    /// a linearizable answer.
    // LINT: op-scoped — callers hold begin_op (see `get`); op-scoped schemes
    // protect the walk globally.
    fn get_read_only(&self, ctx: &mut S::ThreadCtx, key: i64) -> Option<i64> {
        'retry: loop {
            // SAFETY(ordering): SeqCst link loads — part of the
            // retire-stamp SC chain (see `Smr::load`); free on x86-TSO.
            let mut word = untagged(self.head.load(Ordering::SeqCst));
            loop {
                if self.smr.needs_restart(ctx) {
                    continue 'retry;
                }
                if word == 0 {
                    return None;
                }
                let node = word as *const Node;
                let next = unsafe { (*node).next.load(Ordering::SeqCst) };
                let ckey = unsafe { (*node).key };
                if ckey < key {
                    word = untagged(next);
                    continue;
                }
                if ckey != key || is_marked(next) {
                    return None;
                }
                return Some(unsafe { (*node).value.load(Ordering::SeqCst) });
            }
        }
    }

    /// Removes `key`; returns the value it mapped to, if any.
    ///
    /// The returned value is the one read under protection just before
    /// the logical deletion; concurrent `insert` updates may interleave,
    /// in which case either value is a linearizable answer.
    pub fn remove(&self, ctx: &mut S::ThreadCtx, key: i64) -> Option<i64> {
        self.smr.begin_op(ctx);
        let result = loop {
            let w = self.find(ctx, key);
            if !w.found {
                break None;
            }
            let node = w.curr_word as *const Node;
            // SAFETY: node and w.prev are protected by the slots `find` left armed;
            // the winning mark CAS makes this op the unique retirer.
            let next_word = unsafe { (*node).next.load(Ordering::SeqCst) };
            if is_marked(next_word) {
                continue;
            }
            let value = unsafe { (*node).value.load(Ordering::SeqCst) };
            if unsafe { &(*node).next }
                .compare_exchange(
                    next_word,
                    with_mark(next_word),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                continue;
            }
            if unsafe { &*w.prev }
                .compare_exchange(w.curr_word, next_word, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                unsafe {
                    self.smr
                        .retire(ctx, w.curr_word as *mut u8, &(*node).header, DROP_NODE);
                }
            } else {
                let _ = self.find(ctx, key);
            }
            break Some(value);
        };
        self.smr.end_op(ctx);
        result
    }

    /// Atomically bumps the value of `key` by `delta` via CAS; returns
    /// the new value, or `None` when absent.
    pub fn fetch_add(&self, ctx: &mut S::ThreadCtx, key: i64, delta: i64) -> Option<i64> {
        self.smr.begin_op(ctx);
        let w = self.find(ctx, key);
        let result = w.found.then(|| {
            let node = w.curr_word as *const Node;
            // SAFETY: protected by the slot `find` left armed for curr.
            unsafe { (*node).value.fetch_add(delta, Ordering::SeqCst) + delta }
        });
        self.smr.end_op(ctx);
        result
    }

    /// Snapshot of the entries, sorted by key (quiescent use only).
    // LINT: quiescent — snapshot API, documented callers-must-be-quiescent contract.
    pub fn collect_entries(&self) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        let mut word = self.head.load(Ordering::SeqCst);
        while word != 0 {
            let node = untagged(word) as *const Node;
            // SAFETY: quiescent snapshot contract (doc above): no concurrent
            // writers, so every reachable node is live.
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            if !is_marked(next) {
                out.push(unsafe { ((*node).key, (*node).value.load(Ordering::SeqCst)) });
            }
            word = untagged(next);
        }
        out
    }

    /// Number of entries (quiescent use only).
    pub fn len(&self) -> usize {
        self.collect_entries().len()
    }

    /// Whether the map is empty (quiescent use only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<S: Smr> Drop for MichaelMap<'_, S> {
    // LINT: exclusive — &mut self in Drop: no concurrent readers can exist.
    fn drop(&mut self) {
        let mut word = untagged(self.head.load(Ordering::SeqCst));
        while word != 0 {
            let node = word as *mut Node;
            // SAFETY: &mut self — exclusive access; each reachable node is freed
            // exactly once.
            let next = unsafe { (*node).next.load(Ordering::SeqCst) };
            unsafe { drop_node(node as *mut u8) };
            word = untagged(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::hp::Hp;

    #[test]
    fn map_semantics() {
        let smr = Hp::new(2, 3);
        let map = MichaelMap::new(&smr);
        let mut ctx = smr.register().unwrap();
        assert_eq!(map.get(&mut ctx, 1), None);
        assert_eq!(map.insert(&mut ctx, 1, 100), None);
        assert_eq!(map.insert(&mut ctx, 2, 200), None);
        assert_eq!(map.get(&mut ctx, 1), Some(100));
        assert_eq!(map.insert(&mut ctx, 1, 101), Some(100));
        assert_eq!(map.get(&mut ctx, 1), Some(101));
        assert_eq!(map.fetch_add(&mut ctx, 2, 5), Some(205));
        assert_eq!(map.fetch_add(&mut ctx, 9, 5), None);
        assert_eq!(map.remove(&mut ctx, 1), Some(101));
        assert_eq!(map.remove(&mut ctx, 1), None);
        assert_eq!(map.collect_entries(), vec![(2, 205)]);
    }

    #[test]
    fn upsert_does_not_leak_the_speculative_node() {
        let smr = Hp::with_threshold(2, 3, 4);
        let map = MichaelMap::new(&smr);
        let mut ctx = smr.register().unwrap();
        assert_eq!(map.insert(&mut ctx, 7, 1), None);
        for i in 0..100 {
            assert_eq!(
                map.insert(&mut ctx, 7, i),
                Some(if i == 0 { 1 } else { i - 1 })
            );
        }
        smr.flush(&mut ctx);
        // At most the one live node remains unaccounted; upsert paths
        // must have retired nothing (no speculative nodes allocated when
        // the key exists on the first look).
        assert_eq!(map.len(), 1);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_counters_are_exact() {
        // fetch_add is atomic: concurrent bumps never lose updates.
        let smr = Ebr::new(8);
        let map = MichaelMap::new(&smr);
        {
            let mut ctx = smr.register().unwrap();
            assert_eq!(map.insert(&mut ctx, 0, 0), None);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (map, smr) = (&map, &smr);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for _ in 0..1_000 {
                        map.fetch_add(&mut ctx, 0, 1).expect("key 0 exists");
                    }
                });
            }
        });
        assert_eq!(map.collect_entries(), vec![(0, 4_000)]);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn concurrent_upserts_and_removes() {
        let smr = Hp::new(8, 3);
        let map = MichaelMap::new(&smr);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let (map, smr) = (&map, &smr);
                s.spawn(move || {
                    let mut ctx = smr.register().unwrap();
                    for i in 0..500i64 {
                        let k = (t * 31 + i) % 64;
                        map.insert(&mut ctx, k, t * 10_000 + i);
                        let _ = map.get(&mut ctx, k);
                        if i % 3 == 0 {
                            let _ = map.remove(&mut ctx, k);
                        }
                    }
                    smr.flush(&mut ctx);
                });
            }
        });
        // Quiescent: keys sorted and unique.
        let entries = map.collect_entries();
        let keys: Vec<i64> = entries.iter().map(|&(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn reclamation_flows_through() {
        let smr = Ebr::with_threshold(2, 8);
        let map = MichaelMap::new(&smr);
        let mut ctx = smr.register().unwrap();
        for k in 0..300 {
            assert_eq!(map.insert(&mut ctx, k, k), None);
            assert_eq!(map.remove(&mut ctx, k), Some(k));
        }
        for _ in 0..6 {
            smr.flush(&mut ctx);
        }
        let st = smr.stats();
        assert_eq!(st.total_retired, 300);
        assert!(st.total_reclaimed >= 200, "{st}");
    }
}
