//! `era-net serve` — run the TCP front-end over a fresh sharded store.
//!
//! Usage:
//!   era-net serve [--addr 127.0.0.1:0] [--scheme ebr|qsbr|hp]
//!                 [--shards N] [--workers N] [--soft N] [--hard N]
//!                 [--duration SECS] [--addr-file PATH]
//!                 [--flight-dump out.eraflt]
//!
//! Defaults: ephemeral port on localhost, EBR, 4 shards, 4 workers,
//! soft budget 512, hard budget 2048, serve until SIGKILL (or for
//! `--duration` seconds). The bound address is printed to stdout (and
//! written to `--addr-file` when given) so scripts driving an
//! ephemeral port can discover it. The flight recorder is always
//! armed: a panic writes a crash `.eraflt`, and a clean `--duration`
//! exit writes the same dump.

use std::path::PathBuf;
use std::time::Duration;

use era_kv::{KvConfig, KvStore};
use era_net::{NetConfig, NetServer};
use era_smr::{ebr::Ebr, hp::Hp, qsbr::Qsbr, Smr};

struct Options {
    addr: String,
    scheme: String,
    shards: usize,
    workers: usize,
    soft: usize,
    hard: usize,
    duration: Option<Duration>,
    addr_file: Option<PathBuf>,
    flight_dump: PathBuf,
}

fn parse_options() -> Options {
    let mut opts = Options {
        addr: "127.0.0.1:0".to_string(),
        scheme: "ebr".to_string(),
        shards: 4,
        workers: 4,
        soft: 512,
        hard: 2_048,
        duration: None,
        addr_file: None,
        flight_dump: PathBuf::from("era-net.eraflt"),
    };
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => {}
        Some(other) => {
            eprintln!("unknown subcommand {other} (only `serve` exists)");
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: era-net serve [--addr HOST:PORT] [--scheme ebr|qsbr|hp] ...");
            std::process::exit(2);
        }
    }
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = value(&mut args, "--addr"),
            "--scheme" => opts.scheme = value(&mut args, "--scheme"),
            "--shards" => opts.shards = value(&mut args, "--shards").parse().unwrap_or(4).max(1),
            "--workers" => opts.workers = value(&mut args, "--workers").parse().unwrap_or(4).max(1),
            "--soft" => opts.soft = value(&mut args, "--soft").parse().unwrap_or(512),
            "--hard" => opts.hard = value(&mut args, "--hard").parse().unwrap_or(2_048),
            "--duration" => {
                let secs: f64 = value(&mut args, "--duration").parse().unwrap_or(5.0);
                opts.duration = Some(Duration::from_secs_f64(secs));
            }
            "--addr-file" => opts.addr_file = Some(PathBuf::from(value(&mut args, "--addr-file"))),
            "--flight-dump" => opts.flight_dump = PathBuf::from(value(&mut args, "--flight-dump")),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn serve_with<S: Smr>(schemes: &[S], opts: &Options) {
    let cfg = KvConfig {
        retired_soft: opts.soft,
        retired_hard: opts.hard,
        max_threads: opts.workers + 8,
        ..KvConfig::default()
    };
    let store = KvStore::new(schemes, cfg);
    let net_cfg = NetConfig {
        workers: opts.workers,
        ..NetConfig::default()
    };
    let server = match NetServer::bind(&store, net_cfg, opts.addr.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    server.flight().install_panic_hook(opts.flight_dump.clone());
    let addr = server.local_addr();
    println!(
        "era-net listening on {addr} ({} shards, {} workers, scheme {})",
        opts.shards, opts.workers, opts.scheme
    );
    if let Some(path) = &opts.addr_file {
        // Scripts poll for this file to learn the ephemeral port; the
        // rename makes its appearance atomic.
        let tmp = path.with_extension("tmp");
        if let Err(e) =
            std::fs::write(&tmp, addr.to_string()).and_then(|()| std::fs::rename(&tmp, path))
        {
            eprintln!("failed to write addr file {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    let handle = server.handle();
    let timer = opts.duration.map(|d| {
        std::thread::spawn(move || {
            std::thread::sleep(d);
            handle.shutdown();
        })
    });
    match server.run() {
        Ok(stats) => println!("era-net stopped: {stats}"),
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
    if let Some(t) = timer {
        let _ = t.join();
    }
    match server.write_flight(&opts.flight_dump) {
        Ok(()) => println!(
            "wrote flight dump to {} (replay with `era-view {0}`)",
            opts.flight_dump.display()
        ),
        Err(e) => eprintln!(
            "failed to write flight dump {}: {e}",
            opts.flight_dump.display()
        ),
    }
}

fn main() {
    let opts = parse_options();
    let capacity = opts.workers + 8;
    match opts.scheme.as_str() {
        "ebr" => {
            let schemes: Vec<Ebr> = (0..opts.shards).map(|_| Ebr::new(capacity)).collect();
            serve_with(&schemes, &opts);
        }
        "qsbr" => {
            let schemes: Vec<Qsbr> = (0..opts.shards).map(|_| Qsbr::new(capacity)).collect();
            serve_with(&schemes, &opts);
        }
        "hp" => {
            let schemes: Vec<Hp> = (0..opts.shards).map(|_| Hp::new(capacity, 3)).collect();
            serve_with(&schemes, &opts);
        }
        other => {
            eprintln!("unknown --scheme {other} (use ebr|qsbr|hp)");
            std::process::exit(2);
        }
    }
}
