//! JSON-lines run records for `net_bench`.
//!
//! A [`NetRunRecord`] is one load-generator run against one `era-net`
//! server: offered vs. achieved throughput, exact latency percentiles
//! (measured from the *intended* open-loop send time, so coordinated
//! omission is charged to the server, not hidden by the client), the
//! typed-error tallies that admission control produced, and the
//! server's own `trace_dropped` pulled over the wire from a final
//! `STATS` request.

use std::io::Write;
use std::path::Path;
use std::time::Duration;

use era_obs::report::JsonObject;

/// One `net_bench` run, ready to serialize as a JSON line.
#[derive(Debug, Clone)]
pub struct NetRunRecord {
    /// Server address the run targeted.
    pub addr: String,
    /// Client connections (each its own thread).
    pub connections: usize,
    /// Key-distribution name ("uniform"/"zipfian").
    pub dist: String,
    /// Mix name ("ycsb-a", …).
    pub mix: String,
    /// Key range sampled.
    pub key_range: u64,
    /// Frames pipelined per batch.
    pub pipeline: usize,
    /// Offered load in ops/s (0 = closed loop, as fast as possible).
    pub target_rate: u64,
    /// Requests sent.
    pub ops: u64,
    /// Responses carrying `Overloaded`.
    pub overloaded: u64,
    /// Responses carrying `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Wall time of the measured window.
    pub elapsed: Duration,
    /// p50 response latency, µs (from intended send time).
    pub p50_us: u64,
    /// p99 response latency, µs.
    pub p99_us: u64,
    /// p99.9 response latency, µs.
    pub p999_us: u64,
    /// Worst observed latency, µs.
    pub max_us: u64,
    /// Trace events the *server* lost to ring overwrite (shard
    /// recorders + net recorder), from the closing `STATS` frame.
    pub trace_dropped: u64,
    /// Admission sheds the server counted (store + net layer).
    pub server_sheds: u64,
    /// Final per-shard health bytes from the closing `STATS` frame.
    pub health: Vec<u8>,
}

impl NetRunRecord {
    /// Achieved throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ops as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Renders the record as one line of JSON.
    pub fn to_json_line(&self) -> String {
        JsonObject::new()
            .str("bench", "net")
            .str("addr", &self.addr)
            .u64("connections", self.connections as u64)
            .str("dist", &self.dist)
            .str("mix", &self.mix)
            .u64("key_range", self.key_range)
            .u64("pipeline", self.pipeline as u64)
            .u64("target_rate", self.target_rate)
            .u64("ops", self.ops)
            .u64("overloaded", self.overloaded)
            .u64("deadline_exceeded", self.deadline_exceeded)
            .f64("elapsed_s", self.elapsed.as_secs_f64())
            .f64("mops", self.mops())
            .u64("p50_us", self.p50_us)
            .u64("p99_us", self.p99_us)
            .u64("p999_us", self.p999_us)
            .u64("max_us", self.max_us)
            .u64("trace_dropped", self.trace_dropped)
            .u64("server_sheds", self.server_sheds)
            .u64_array(
                "health",
                &self.health.iter().map(|&h| h as u64).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Exact nearest-rank percentiles over recorded latencies. Sorts in
/// place; returns `(p50, p99, p999, max)` in the samples' unit.
pub fn percentiles(samples: &mut [u64]) -> (u64, u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0, 0);
    }
    samples.sort_unstable();
    let rank = |p: f64| {
        let idx = ((p * samples.len() as f64).ceil() as usize).max(1) - 1;
        samples[idx.min(samples.len() - 1)]
    };
    (
        rank(0.50),
        rank(0.99),
        rank(0.999),
        samples[samples.len() - 1],
    )
}

/// Writes `records` as a JSON-lines file (one record per line).
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_jsonl(path: &Path, records: &[NetRunRecord]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    for r in records {
        writeln!(file, "{}", r.to_json_line())?;
    }
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> NetRunRecord {
        NetRunRecord {
            addr: "127.0.0.1:7000".into(),
            connections: 4,
            dist: "zipfian".into(),
            mix: "ycsb-a".into(),
            key_range: 1 << 16,
            pipeline: 16,
            target_rate: 100_000,
            ops: 123_456,
            overloaded: 7,
            deadline_exceeded: 2,
            elapsed: Duration::from_millis(1500),
            p50_us: 80,
            p99_us: 900,
            p999_us: 4200,
            max_us: 9000,
            trace_dropped: 0,
            server_sheds: 9,
            health: vec![0, 2],
        }
    }

    #[test]
    fn json_line_is_complete_and_single_line() {
        let line = record().to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        for key in [
            "\"bench\":\"net\"",
            "\"dist\":\"zipfian\"",
            "\"mix\":\"ycsb-a\"",
            "\"pipeline\":16",
            "\"p50_us\":80",
            "\"p99_us\":900",
            "\"p999_us\":4200",
            "\"trace_dropped\":0",
            "\"server_sheds\":9",
            "\"health\":[0,2]",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn mops_and_percentiles() {
        let r = record();
        let mops = r.mops();
        assert!((mops - 123_456.0 / 1e6 / 1.5).abs() < 1e-9);

        let mut empty: Vec<u64> = vec![];
        assert_eq!(percentiles(&mut empty), (0, 0, 0, 0));

        // 1..=1000: nearest-rank p50 = 500, p99 = 990, p99.9 = 999.
        let mut v: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentiles(&mut v), (500, 990, 999, 1000));

        let mut one = vec![42];
        assert_eq!(percentiles(&mut one), (42, 42, 42, 42));
    }

    #[test]
    fn write_jsonl_roundtrip() {
        let dir = std::env::temp_dir().join("era_net_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        write_jsonl(&path, &[record(), record()]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        for line in body.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
