//! The era-net wire protocol: length-prefixed binary frames.
//!
//! Every frame is `[u32 length (big-endian)][u8 opcode][body]`, where
//! `length` counts the opcode byte plus the body. Integers inside the
//! body are big-endian; keys and values are `i64` (the `era-kv` key
//! space). Request opcodes live below `0x80`, response opcodes at or
//! above it, so a stream captured mid-flight is self-orienting.
//!
//! Decoding is strict: unknown opcodes, truncated bodies, trailing
//! bytes, and oversized or empty frames are all typed
//! [`ProtoError`]s, never panics — the framing tests flip bytes at
//! every position to pin that down.

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame's `length` field (opcode + body). Large
/// enough for a maximal `Entries` response, small enough that a
/// corrupted length prefix cannot make the reader allocate gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Most entries an [`Response::Entries`] frame may carry (16 bytes
/// per entry keeps the frame inside [`MAX_FRAME`] with headroom).
pub const MAX_SCAN_ENTRIES: usize = 32_768;

/// A client→server request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read one key.
    Get {
        /// Key to read.
        key: i64,
    },
    /// Insert or update one key.
    Put {
        /// Key to write.
        key: i64,
        /// Value to store.
        value: i64,
    },
    /// Remove one key.
    Remove {
        /// Key to remove.
        key: i64,
    },
    /// Atomically add `delta` to a key's value.
    Incr {
        /// Key to update.
        key: i64,
        /// Amount to add.
        delta: i64,
    },
    /// Read up to `limit` consecutive keys starting at `lo` (the
    /// server additionally clamps `limit` to its configured maximum).
    Scan {
        /// First key of the window (inclusive).
        lo: i64,
        /// End of the window (exclusive).
        hi: i64,
        /// Maximum entries to return.
        limit: u32,
    },
    /// Liveness probe.
    Ping,
    /// Server-side counters (footprint, navigator, trace loss).
    Stats,
}

/// A server→client response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Result of Get/Put/Remove/Incr: the read, previous, or updated
    /// value (`None` when the key was absent).
    Value(Option<i64>),
    /// Result of Scan: `(key, value)` pairs in key order.
    Entries(Vec<(i64, i64)>),
    /// Reply to Ping.
    Pong,
    /// Reply to Stats.
    Stats(StatsReply),
    /// A typed failure — the wire-visible face of the ERA navigator's
    /// admission control.
    Error(ErrorReply),
}

/// Server counters carried by [`Response::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Retired-but-unreclaimed nodes right now, summed over shards.
    pub retired_now: u64,
    /// Peak retired population (sum of per-shard peaks).
    pub retired_peak: u64,
    /// Nodes ever retired.
    pub total_retired: u64,
    /// Nodes ever reclaimed.
    pub total_reclaimed: u64,
    /// Writes shed by admission control (store + net layer).
    pub sheds: u64,
    /// Navigator health transitions.
    pub transitions: u64,
    /// Navigator neutralizations.
    pub neutralizations: u64,
    /// Trace events lost to ring overwrites (server-side, all
    /// recorders) — threaded into `NetRunRecord` so ring truncation is
    /// never silent on the serving path.
    pub trace_dropped: u64,
    /// Per-shard health class (`era_kv::ShardHealth` as `u8`), in
    /// shard order; doubles as the shard count.
    pub health: Vec<u8>,
}

/// Error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The target shard is Violating/Quarantined (or its bounded
    /// admission queue is full): the write was shed. Retry after the
    /// frame's `retry_after_ms`.
    Overloaded = 1,
    /// The write was queued while the shard was Degrading but did not
    /// land within the server's bounded deadline.
    DeadlineExceeded = 2,
    /// The request frame did not decode; the server closes the
    /// connection after sending this (framing is unrecoverable).
    Malformed = 3,
}

impl ErrorCode {
    /// Decodes the wire byte.
    pub fn from_u8(raw: u8) -> Option<ErrorCode> {
        match raw {
            1 => Some(ErrorCode::Overloaded),
            2 => Some(ErrorCode::DeadlineExceeded),
            3 => Some(ErrorCode::Malformed),
            _ => None,
        }
    }

    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Malformed => "malformed",
        }
    }
}

/// Body of [`Response::Error`]: a typed failure with a backoff hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorReply {
    /// What failed.
    pub code: ErrorCode,
    /// The shard admission control acted on (`u32::MAX` when the
    /// error is not shard-scoped, e.g. `Malformed`).
    pub shard: u32,
    /// Suggested client backoff before retrying, in milliseconds —
    /// the protocol's `Retry-After`.
    pub retry_after_ms: u32,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The opcode byte names no known request/response.
    UnknownOpcode(u8),
    /// The body ended before the named field.
    Truncated(&'static str),
    /// The body had bytes left over after the last field.
    TrailingBytes(usize),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The frame has no opcode byte.
    EmptyFrame,
    /// An entry count that cannot fit the remaining body.
    BadCount(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::Truncated(field) => write!(f, "frame truncated at {field}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after last field"),
            ProtoError::Oversized(len) => {
                write!(f, "length {len} exceeds MAX_FRAME ({MAX_FRAME})")
            }
            ProtoError::EmptyFrame => write!(f, "frame carries no opcode"),
            ProtoError::BadCount(what) => write!(f, "{what} count does not fit the frame"),
        }
    }
}

impl std::error::Error for ProtoError {}

// Request opcodes (< 0x80).
const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_REMOVE: u8 = 0x03;
const OP_INCR: u8 = 0x04;
const OP_SCAN: u8 = 0x05;
const OP_PING: u8 = 0x06;
const OP_STATS: u8 = 0x07;

// Response opcodes (>= 0x80).
const OP_VALUE: u8 = 0x81;
const OP_ENTRIES: u8 = 0x82;
const OP_PONG: u8 = 0x83;
const OP_STATS_REPLY: u8 = 0x84;
const OP_ERROR: u8 = 0x85;

/// Strict little parser over a frame body.
struct Body<'a> {
    bytes: &'a [u8],
}

impl<'a> Body<'a> {
    fn new(bytes: &'a [u8]) -> Body<'a> {
        Body { bytes }
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, ProtoError> {
        let (&b, rest) = self
            .bytes
            .split_first()
            .ok_or(ProtoError::Truncated(field))?;
        self.bytes = rest;
        Ok(b)
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ProtoError> {
        if self.bytes.len() < 4 {
            return Err(ProtoError::Truncated(field));
        }
        let (head, rest) = self.bytes.split_at(4);
        self.bytes = rest;
        Ok(u32::from_be_bytes(head.try_into().expect("4-byte split")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ProtoError> {
        if self.bytes.len() < 8 {
            return Err(ProtoError::Truncated(field));
        }
        let (head, rest) = self.bytes.split_at(8);
        self.bytes = rest;
        Ok(u64::from_be_bytes(head.try_into().expect("8-byte split")))
    }

    fn i64(&mut self, field: &'static str) -> Result<i64, ProtoError> {
        Ok(self.u64(field)? as i64)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.bytes.len()))
        }
    }
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&(v as u64).to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Patches the 4-byte length prefix reserved at `frame_start`.
fn seal_frame(out: &mut [u8], frame_start: usize) {
    let len = (out.len() - frame_start - 4) as u32;
    out[frame_start..frame_start + 4].copy_from_slice(&len.to_be_bytes());
}

impl Request {
    /// Appends this request as one complete frame (length prefix
    /// included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0; 4]);
        match *self {
            Request::Get { key } => {
                out.push(OP_GET);
                put_i64(out, key);
            }
            Request::Put { key, value } => {
                out.push(OP_PUT);
                put_i64(out, key);
                put_i64(out, value);
            }
            Request::Remove { key } => {
                out.push(OP_REMOVE);
                put_i64(out, key);
            }
            Request::Incr { key, delta } => {
                out.push(OP_INCR);
                put_i64(out, key);
                put_i64(out, delta);
            }
            Request::Scan { lo, hi, limit } => {
                out.push(OP_SCAN);
                put_i64(out, lo);
                put_i64(out, hi);
                put_u32(out, limit);
            }
            Request::Ping => out.push(OP_PING),
            Request::Stats => out.push(OP_STATS),
        }
        seal_frame(out, start);
    }

    /// Decodes one frame payload (opcode + body, no length prefix).
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`]: unknown opcode, truncation, trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Request, ProtoError> {
        let (&op, body) = frame.split_first().ok_or(ProtoError::EmptyFrame)?;
        let mut b = Body::new(body);
        let req = match op {
            OP_GET => Request::Get {
                key: b.i64("get.key")?,
            },
            OP_PUT => Request::Put {
                key: b.i64("put.key")?,
                value: b.i64("put.value")?,
            },
            OP_REMOVE => Request::Remove {
                key: b.i64("remove.key")?,
            },
            OP_INCR => Request::Incr {
                key: b.i64("incr.key")?,
                delta: b.i64("incr.delta")?,
            },
            OP_SCAN => Request::Scan {
                lo: b.i64("scan.lo")?,
                hi: b.i64("scan.hi")?,
                limit: b.u32("scan.limit")?,
            },
            OP_PING => Request::Ping,
            OP_STATS => Request::Stats,
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        b.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Appends this response as one complete frame (length prefix
    /// included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0; 4]);
        match self {
            Response::Value(v) => {
                out.push(OP_VALUE);
                match v {
                    Some(v) => {
                        out.push(1);
                        put_i64(out, *v);
                    }
                    None => out.push(0),
                }
            }
            Response::Entries(entries) => {
                out.push(OP_ENTRIES);
                put_u32(out, entries.len() as u32);
                for &(k, v) in entries {
                    put_i64(out, k);
                    put_i64(out, v);
                }
            }
            Response::Pong => out.push(OP_PONG),
            Response::Stats(s) => {
                out.push(OP_STATS_REPLY);
                put_u64(out, s.retired_now);
                put_u64(out, s.retired_peak);
                put_u64(out, s.total_retired);
                put_u64(out, s.total_reclaimed);
                put_u64(out, s.sheds);
                put_u64(out, s.transitions);
                put_u64(out, s.neutralizations);
                put_u64(out, s.trace_dropped);
                put_u32(out, s.health.len() as u32);
                out.extend_from_slice(&s.health);
            }
            Response::Error(e) => {
                out.push(OP_ERROR);
                out.push(e.code as u8);
                put_u32(out, e.shard);
                put_u32(out, e.retry_after_ms);
            }
        }
        seal_frame(out, start);
    }

    /// Decodes one frame payload (opcode + body, no length prefix).
    ///
    /// # Errors
    ///
    /// Any [`ProtoError`]: unknown opcode, truncation, trailing
    /// bytes, or an entry/health count that cannot fit the body.
    pub fn decode(frame: &[u8]) -> Result<Response, ProtoError> {
        let (&op, body) = frame.split_first().ok_or(ProtoError::EmptyFrame)?;
        let mut b = Body::new(body);
        let resp = match op {
            OP_VALUE => match b.u8("value.flag")? {
                0 => Response::Value(None),
                _ => Response::Value(Some(b.i64("value.value")?)),
            },
            OP_ENTRIES => {
                let n = b.u32("entries.count")? as usize;
                // The count must exactly fit the remaining body: a
                // corrupted count can neither over-allocate nor leave
                // unread bytes behind.
                if n > MAX_SCAN_ENTRIES || b.bytes.len() != n * 16 {
                    return Err(ProtoError::BadCount("entries"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = b.i64("entries.key")?;
                    let v = b.i64("entries.value")?;
                    entries.push((k, v));
                }
                Response::Entries(entries)
            }
            OP_PONG => Response::Pong,
            OP_STATS_REPLY => {
                let retired_now = b.u64("stats.retired_now")?;
                let retired_peak = b.u64("stats.retired_peak")?;
                let total_retired = b.u64("stats.total_retired")?;
                let total_reclaimed = b.u64("stats.total_reclaimed")?;
                let sheds = b.u64("stats.sheds")?;
                let transitions = b.u64("stats.transitions")?;
                let neutralizations = b.u64("stats.neutralizations")?;
                let trace_dropped = b.u64("stats.trace_dropped")?;
                let n = b.u32("stats.shards")? as usize;
                if b.bytes.len() != n {
                    return Err(ProtoError::BadCount("stats.health"));
                }
                let health = b.bytes.to_vec();
                b.bytes = &[];
                Response::Stats(StatsReply {
                    retired_now,
                    retired_peak,
                    total_retired,
                    total_reclaimed,
                    sheds,
                    transitions,
                    neutralizations,
                    trace_dropped,
                    health,
                })
            }
            OP_ERROR => {
                let code = b.u8("error.code")?;
                let code = ErrorCode::from_u8(code).ok_or(ProtoError::UnknownOpcode(code))?;
                Response::Error(ErrorReply {
                    code,
                    shard: b.u32("error.shard")?,
                    retry_after_ms: b.u32("error.retry_after_ms")?,
                })
            }
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        b.finish()?;
        Ok(resp)
    }
}

/// Reads one length-prefixed frame payload from `r` into `scratch`
/// and returns it (opcode + body, prefix stripped). `Ok(None)` means
/// the peer closed the stream cleanly at a frame boundary.
///
/// # Errors
///
/// `UnexpectedEof` on a mid-frame close, `InvalidData` on a length
/// prefix beyond [`MAX_FRAME`] or below 1, and any transport error
/// (including `WouldBlock`/`TimedOut` from a read timeout, which
/// callers that poll a stop flag handle themselves).
pub fn read_frame<'b, R: Read>(
    r: &mut R,
    scratch: &'b mut Vec<u8>,
) -> io::Result<Option<&'b [u8]>> {
    let mut prefix = [0u8; 4];
    match r.read(&mut prefix[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut prefix[1..])?,
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::Oversized(len),
        ));
    }
    scratch.clear();
    scratch.resize(len, 0);
    r.read_exact(scratch)?;
    Ok(Some(scratch.as_slice()))
}

/// Encodes `req` and writes it as one frame.
///
/// # Errors
///
/// Any transport error from `w`.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    let mut buf = Vec::with_capacity(32);
    req.encode(&mut buf);
    w.write_all(&buf)
}

/// Encodes `resp` and writes it as one frame.
///
/// # Errors
///
/// Any transport error from `w`.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    let mut buf = Vec::with_capacity(64);
    resp.encode(&mut buf);
    w.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(frame: &[u8]) -> &[u8] {
        assert!(frame.len() >= 5, "frame has prefix + opcode");
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4, "length prefix counts the payload");
        &frame[4..]
    }

    #[test]
    fn request_roundtrip_all_variants() {
        let reqs = [
            Request::Get { key: -3 },
            Request::Put {
                key: i64::MIN,
                value: i64::MAX,
            },
            Request::Remove { key: 0 },
            Request::Incr { key: 7, delta: -9 },
            Request::Scan {
                lo: -10,
                hi: 10,
                limit: 128,
            },
            Request::Ping,
            Request::Stats,
        ];
        for req in reqs {
            let mut buf = Vec::new();
            req.encode(&mut buf);
            assert_eq!(Request::decode(strip(&buf)), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip_all_variants() {
        let resps = [
            Response::Value(None),
            Response::Value(Some(-1)),
            Response::Entries(vec![]),
            Response::Entries(vec![(1, 10), (2, -20)]),
            Response::Pong,
            Response::Stats(StatsReply {
                retired_now: 1,
                retired_peak: 2,
                total_retired: 3,
                total_reclaimed: 4,
                sheds: 5,
                transitions: 6,
                neutralizations: 7,
                trace_dropped: 8,
                health: vec![0, 1, 2, 3],
            }),
            Response::Error(ErrorReply {
                code: ErrorCode::Overloaded,
                shard: 3,
                retry_after_ms: 50,
            }),
        ];
        for resp in resps {
            let mut buf = Vec::new();
            resp.encode(&mut buf);
            assert_eq!(Response::decode(strip(&buf)), Ok(resp.clone()), "{resp:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::EmptyFrame));
        assert_eq!(
            Request::decode(&[0xff]),
            Err(ProtoError::UnknownOpcode(0xff))
        );
        assert_eq!(
            Request::decode(&[OP_GET, 1, 2]),
            Err(ProtoError::Truncated("get.key"))
        );
        let mut buf = Vec::new();
        Request::Ping.encode(&mut buf);
        buf.push(0xAB); // trailing garbage inside the (re-sealed) frame
        assert_eq!(
            Request::decode(&buf[4..]),
            Err(ProtoError::TrailingBytes(1))
        );
        // Entries count that does not match the body length.
        let mut bad = vec![OP_ENTRIES];
        bad.extend_from_slice(&100u32.to_be_bytes());
        assert_eq!(Response::decode(&bad), Err(ProtoError::BadCount("entries")));
    }

    #[test]
    fn frame_reader_roundtrip_and_limits() {
        let mut wire = Vec::new();
        Request::Put { key: 1, value: 2 }.encode(&mut wire);
        Request::Ping.encode(&mut wire);
        let mut cursor = io::Cursor::new(wire);
        let mut scratch = Vec::new();
        let f1 = read_frame(&mut cursor, &mut scratch).unwrap().unwrap();
        assert_eq!(Request::decode(f1), Ok(Request::Put { key: 1, value: 2 }));
        let f2 = read_frame(&mut cursor, &mut scratch).unwrap().unwrap();
        assert_eq!(Request::decode(f2), Ok(Request::Ping));
        assert!(read_frame(&mut cursor, &mut scratch).unwrap().is_none());

        // Oversized and zero-length prefixes are refused before any
        // allocation happens.
        for bad_len in [0u32, (MAX_FRAME as u32) + 1, u32::MAX] {
            let mut bytes = bad_len.to_be_bytes().to_vec();
            bytes.push(OP_PING);
            let mut cursor = io::Cursor::new(bytes);
            let err = read_frame(&mut cursor, &mut scratch).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad_len}");
        }

        // A mid-frame close is an UnexpectedEof, not a clean None.
        let mut wire = Vec::new();
        Request::Put { key: 1, value: 2 }.encode(&mut wire);
        wire.truncate(wire.len() - 3);
        let mut cursor = io::Cursor::new(wire);
        let err = read_frame(&mut cursor, &mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
