//! # era-net — a TCP serving front-end for era-kv
//!
//! This crate puts the ERA navigator's admission decisions on the
//! wire. It serves a sharded [`era_kv::KvStore`] over TCP with a
//! length-prefixed binary protocol ([`proto`]), an acceptor feeding a
//! fixed worker pool with per-connection request pipelining and
//! per-shard write batching ([`server`]), and JSON-lines run records
//! for the `net_bench` load generator ([`report`]).
//!
//! The point is not the socket plumbing — it is that the ERA theorem's
//! applicability/robustness trade-off becomes **visible to remote
//! clients** as typed protocol frames:
//!
//! | shard health | remote write | remote read |
//! |---|---|---|
//! | `Robust` | applied | served |
//! | `Degrading` | queued with a bounded deadline | served |
//! | `Violating` | shed: `Overloaded` + `Retry-After` | served |
//! | `Quarantined` | shed (longer `Retry-After`) | served |
//!
//! Reads are never refused because a read adds no reclamation
//! footprint; writes are the traffic a navigator must sacrifice to
//! keep the shard's memory bound — the paper's "ERA sacrifice",
//! answered as a frame instead of a silent stall.
//!
//! The serving path is always flight-recorded: [`server::NetServer`]
//! arms an [`era_obs::FlightRecorder`] over every shard recorder plus
//! its own accept/shed event stream, so a crashed server leaves an
//! `.eraflt` dump that `era-view` can replay — including the shard
//! health state machine (`era-view --timeline` renders `navigate`
//! transitions).

pub mod proto;
pub mod report;
pub mod server;

pub use proto::{
    read_frame, write_request, write_response, ErrorCode, ErrorReply, ProtoError, Request,
    Response, StatsReply, MAX_FRAME,
};
pub use report::{percentiles, write_jsonl, NetRunRecord};
pub use server::{NetConfig, NetHandle, NetServer, ServeStats};
