//! The TCP server: one acceptor, a fixed worker pool, pipelined
//! connections, and the ERA navigator as a live admission signal.
//!
//! ## Thread shape
//!
//! [`NetServer::run`] blocks the calling thread on `accept()` and
//! spawns (scoped) one watchdog thread — navigator ticks plus flight
//! polls — and `workers` worker threads. Accepted connections go into
//! a bounded queue; each worker pops a connection and serves it to
//! completion, so a connection's requests are answered **in order** by
//! construction.
//!
//! ## Pipelining and batching
//!
//! A worker reads one frame, then keeps draining frames that are
//! already buffered (up to [`NetConfig::batch_max`]) before answering
//! any of them — a client that pipelines N requests gets N in-order
//! responses with one syscall round-trip instead of N. Consecutive
//! `PUT`s inside such a burst are applied through
//! [`KvStore::put_batch`], which pays one admission decision and one
//! quiescent point per *shard group* instead of per write.
//!
//! ## Admission control (the theorem, on the wire)
//!
//! Per write, the target shard's [`ShardHealth`] decides:
//!
//! * `Robust` — the write goes straight through.
//! * `Degrading` — the write is queued with a bounded deadline
//!   ([`NetConfig::degraded_deadline`]); if it cannot land in time the
//!   client gets a typed `DeadlineExceeded` frame.
//! * `Violating` / `Quarantined` — the write is shed immediately with
//!   an `Overloaded` frame carrying a `retry_after_ms` hint. This is
//!   the ERA theorem's applicability sacrifice made visible to remote
//!   clients: the shard keeps its robustness bound by refusing their
//!   traffic.
//!
//! Reads are never shed (they add no footprint), so a Violating shard
//! still serves `GET`s — exactly the split the chaos socket test
//! asserts end-to-end.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use era_kv::{KvCtx, KvError, KvStore, RetryPolicy, ShardHealth};
use era_obs::{DumpStats, FlightRecorder, Hook, Recorder, SchemeId, ThreadTracer};
use era_smr::Smr;

use crate::proto::{
    read_frame, write_response, ErrorCode, ErrorReply, Request, Response, StatsReply,
};

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before the
    /// acceptor sheds new ones by closing them.
    pub queue_depth: usize,
    /// Socket read timeout — the granularity at which idle workers
    /// notice a shutdown request.
    pub read_timeout: Duration,
    /// Bounded queueing deadline for writes to a `Degrading` shard;
    /// past it the client gets `DeadlineExceeded`.
    pub degraded_deadline: Duration,
    /// `retry_after_ms` hint attached to `Overloaded` error frames.
    pub retry_after_ms: u32,
    /// Navigator tick period for the watchdog thread.
    pub nav_poll: Duration,
    /// Most frames drained into one pipelined burst.
    pub batch_max: usize,
    /// Server-side clamp on `SCAN` limits.
    pub scan_limit: u32,
    /// Backoff schedule for writes queued against a `Degrading` shard.
    /// Only the shape fields are honored on this path —
    /// `base_backoff`, `max_backoff`, and `jitter` (salted per key, so
    /// workers retrying different keys of one overloaded shard
    /// desynchronize) — while the wall-clock cutoff stays
    /// [`NetConfig::degraded_deadline`] and attempts are bounded by
    /// that deadline alone.
    pub write_backoff: RetryPolicy,
    /// Event-ring capacity of the server's own `net` recorder
    /// (accept/shed events). The store's per-shard rings are sized by
    /// [`era_kv::KvConfig::ring_capacity`] instead.
    pub ring_capacity: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_millis(50),
            degraded_deadline: Duration::from_millis(20),
            retry_after_ms: 50,
            nav_poll: Duration::from_micros(200),
            batch_max: 64,
            scan_limit: 1024,
            write_backoff: RetryPolicy {
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(2),
                // Attempts/deadline are governed by degraded_deadline on
                // the serving path; keep the policy's own caps lax.
                max_attempts: u32::MAX,
                deadline: Duration::MAX,
                jitter: true,
            },
            ring_capacity: era_obs::DEFAULT_RING_CAPACITY,
        }
    }
}

/// Counters aggregated over a server's lifetime, returned by
/// [`NetServer::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections shed because the pending queue was full.
    pub queue_shed: u64,
    /// Connections served to completion.
    pub served: u64,
    /// Request frames processed.
    pub frames: u64,
    /// Writes answered with `Overloaded`/`DeadlineExceeded` (the net
    /// layer's sheds, on top of the store's own counter).
    pub shed_writes: u64,
    /// Writes applied through the per-shard batch path.
    pub batched_writes: u64,
    /// Connections dropped over malformed frames.
    pub malformed: u64,
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accepted={} served={} frames={} batched_writes={} shed_writes={} queue_shed={} malformed={}",
            self.accepted,
            self.served,
            self.frames,
            self.batched_writes,
            self.shed_writes,
            self.queue_shed,
            self.malformed
        )
    }
}

/// Shared stop signal between a [`NetServer`] and its [`NetHandle`]s.
struct Ctl {
    stop: AtomicBool,
    addr: SocketAddr,
}

/// Remote control for a running [`NetServer`] — the only way to stop
/// [`NetServer::run`] from another thread.
#[must_use = "a NetHandle is the only way to stop a running server; dropping it leaks the run loop"]
pub struct NetHandle {
    ctl: Arc<Ctl>,
}

impl NetHandle {
    /// Signals the server to stop and unblocks its acceptor. Safe to
    /// call more than once and from any thread.
    pub fn shutdown(&self) {
        self.ctl.stop.store(true, Ordering::SeqCst);
        // accept() only returns when a connection arrives; poke it.
        let _ = TcpStream::connect(self.ctl.addr);
    }

    /// The address the server is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.ctl.addr
    }
}

struct Counters {
    accepted: AtomicU64,
    queue_shed: AtomicU64,
    served: AtomicU64,
    frames: AtomicU64,
    shed_writes: AtomicU64,
    batched_writes: AtomicU64,
    malformed: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            accepted: AtomicU64::new(0),
            queue_shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            shed_writes: AtomicU64::new(0),
            batched_writes: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> ServeStats {
        ServeStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            queue_shed: self.queue_shed.load(Ordering::SeqCst),
            served: self.served.load(Ordering::SeqCst),
            frames: self.frames.load(Ordering::SeqCst),
            shed_writes: self.shed_writes.load(Ordering::SeqCst),
            batched_writes: self.batched_writes.load(Ordering::SeqCst),
            malformed: self.malformed.load(Ordering::SeqCst),
        }
    }
}

/// A TCP front-end over a borrowed [`KvStore`].
///
/// The server borrows the store (and, transitively, the schemes) the
/// same way the store borrows its schemes — callers keep both alive
/// for the server's lifetime and typically run everything under one
/// `std::thread::scope`.
pub struct NetServer<'a, 's, S: Smr> {
    store: &'a KvStore<'s, S>,
    cfg: NetConfig,
    listener: TcpListener,
    recorder: Recorder,
    flight: Arc<FlightRecorder>,
    ctl: Arc<Ctl>,
    counters: Counters,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cond: Condvar,
}

impl<'a, 's, S: Smr> NetServer<'a, 's, S> {
    /// Binds to `addr` (use port 0 for an ephemeral port) and arms the
    /// flight recorder: one source per shard plus a `net` source for
    /// accept/shed events.
    ///
    /// # Errors
    ///
    /// Any socket error from binding.
    pub fn bind(
        store: &'a KvStore<'s, S>,
        cfg: NetConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let recorder = Recorder::with_ring_capacity(cfg.workers + 2, cfg.ring_capacity);
        let flight = Arc::new(FlightRecorder::new());
        for i in 0..store.shard_count() {
            flight.add_source(&format!("shard{i}"), store.recorder(i));
        }
        flight.add_source("net", &recorder);
        Ok(NetServer {
            store,
            cfg,
            listener,
            recorder,
            flight,
            ctl: Arc::new(Ctl {
                stop: AtomicBool::new(false),
                addr: local,
            }),
            counters: Counters::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctl.addr
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> NetHandle {
        NetHandle {
            ctl: Arc::clone(&self.ctl),
        }
    }

    /// The armed flight recorder (e.g. to install a panic hook).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// The net-layer recorder (accept/shed events).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Freshens per-shard footprint stats and writes the flight dump.
    ///
    /// # Errors
    ///
    /// Any filesystem error from writing `path`.
    pub fn write_flight(&self, path: &Path) -> io::Result<()> {
        self.flight.poll();
        for i in 0..self.store.shard_count() {
            let st = self.store.scheme(i).stats();
            self.flight.set_stats(
                i,
                DumpStats {
                    retired_now: st.retired_now as u64,
                    retired_peak: st.retired_peak as u64,
                    total_retired: st.total_retired,
                    total_reclaimed: st.total_reclaimed,
                    era: st.era,
                },
            );
        }
        self.flight.snapshot_to_file(path)
    }

    /// Serves until [`NetHandle::shutdown`] is called. Blocks the
    /// calling thread (the acceptor) and scopes the watchdog + worker
    /// threads under it.
    ///
    /// # Errors
    ///
    /// [`era_smr::RegisterError`] (as `io::Error`) when the store's
    /// schemes cannot seat one context per worker — size scheme
    /// capacity at `workers + slack`.
    pub fn run(&self) -> io::Result<ServeStats> {
        let mut worker_ctxs: Vec<KvCtx<S>> = Vec::with_capacity(self.cfg.workers);
        for _ in 0..self.cfg.workers.max(1) {
            worker_ctxs.push(self.store.register().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::ResourceBusy,
                    format!("scheme capacity too small for worker pool: {e}"),
                )
            })?);
        }
        std::thread::scope(|s| {
            s.spawn(|| self.watchdog_loop());
            for (w, mut ctx) in worker_ctxs.into_iter().enumerate() {
                s.spawn(move || self.worker_loop(w as u16, &mut ctx));
            }
            self.accept_loop();
        });
        Ok(self.counters.snapshot())
    }

    /// Navigator ticks + periodic flight polls until shutdown.
    fn watchdog_loop(&self) {
        let mut last_flight = Instant::now();
        while !self.ctl.stop.load(Ordering::SeqCst) {
            self.store.navigator_tick();
            if last_flight.elapsed() >= Duration::from_millis(25) {
                self.flight.poll();
                last_flight = Instant::now();
            }
            std::thread::sleep(self.cfg.nav_poll);
        }
    }

    fn accept_loop(&self) {
        // The acceptor gets the slot just past the workers' in the net
        // recorder (sized workers + 2 at bind time).
        let mut tracer = self
            .recorder
            .tracer(self.cfg.workers as u16, SchemeId::NONE);
        let mut conn_id = 0u64;
        for stream in self.listener.incoming() {
            if self.ctl.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            conn_id += 1;
            // SAFETY(ordering): Relaxed — serving-path tallies are
            // telemetry read by the final snapshot (SeqCst loads);
            // no decision is taken on their momentary values.
            self.counters.accepted.fetch_add(1, Ordering::Relaxed);
            let queued = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                if q.len() >= self.cfg.queue_depth {
                    drop(stream); // shed at the door: no worker in sight
                                  // SAFETY(ordering): Relaxed — telemetry, as above.
                    self.counters.queue_shed.fetch_add(1, Ordering::Relaxed);
                    tracer.emit(Hook::Shed, u64::MAX, conn_id);
                    continue;
                }
                q.push_back(stream);
                q.len() as u64
            };
            tracer.emit(Hook::Accept, conn_id, queued);
            self.queue_cond.notify_one();
        }
        // Shutdown: wake every parked worker so they observe the flag.
        self.queue_cond.notify_all();
    }

    fn worker_loop(&self, worker: u16, ctx: &mut KvCtx<S>) {
        let mut tracer = self.recorder.tracer(worker, SchemeId::NONE);
        loop {
            let conn = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(c) = q.pop_front() {
                        break Some(c);
                    }
                    if self.ctl.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (guard, timed_out) = self
                        .queue_cond
                        .wait_timeout(q, self.cfg.read_timeout)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                    if timed_out.timed_out() {
                        // Idle maintenance: flush this worker's retire
                        // lists so a quiet server drains its backlog
                        // (see KvStore::maintain). The queue lock is
                        // released around the flush.
                        drop(q);
                        self.store.maintain(ctx);
                        q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                    }
                }
            };
            match conn {
                Some(stream) => {
                    let _ = self.serve_conn(stream, ctx, &mut tracer);
                    // SAFETY(ordering): Relaxed — telemetry tally.
                    self.counters.served.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Serves one connection to completion: pipelined frame bursts in,
    /// in-order responses out.
    fn serve_conn(
        &self,
        stream: TcpStream,
        ctx: &mut KvCtx<S>,
        tracer: &mut ThreadTracer,
    ) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        let mut scratch = Vec::new();
        let mut burst: Vec<Request> = Vec::new();
        loop {
            burst.clear();
            // First frame of a burst: allowed to idle out so the stop
            // flag gets polled on quiet connections.
            match self.read_request(&mut reader, &mut scratch, true) {
                FrameIn::Idle => {
                    if self.ctl.stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    // The connection is open but quiet — same idle
                    // maintenance as a worker parked on the queue.
                    self.store.maintain(ctx);
                    continue;
                }
                FrameIn::Eof | FrameIn::Transport => return Ok(()),
                FrameIn::Malformed => return self.reject_malformed(&mut writer),
                FrameIn::Frame(req) => burst.push(req),
            }
            // Drain whatever the client already pipelined behind it.
            let mut malformed = false;
            while burst.len() < self.cfg.batch_max && !reader.buffer().is_empty() {
                match self.read_request(&mut reader, &mut scratch, false) {
                    FrameIn::Frame(req) => burst.push(req),
                    FrameIn::Malformed => {
                        malformed = true;
                        break;
                    }
                    FrameIn::Idle | FrameIn::Eof | FrameIn::Transport => break,
                }
            }
            // SAFETY(ordering): Relaxed — telemetry tally.
            self.counters
                .frames
                .fetch_add(burst.len() as u64, Ordering::Relaxed);
            for resp in self.process_burst(ctx, &burst, tracer) {
                write_response(&mut writer, &resp)?;
            }
            writer.flush()?;
            if malformed {
                return self.reject_malformed(&mut writer);
            }
        }
    }

    /// Answers a framing violation with a typed error, then closes.
    fn reject_malformed(&self, writer: &mut BufWriter<TcpStream>) -> io::Result<()> {
        // SAFETY(ordering): Relaxed — telemetry tally.
        self.counters.malformed.fetch_add(1, Ordering::Relaxed);
        let resp = Response::Error(ErrorReply {
            code: ErrorCode::Malformed,
            shard: u32::MAX,
            retry_after_ms: 0,
        });
        write_response(writer, &resp)?;
        writer.flush()
    }

    fn read_request(
        &self,
        reader: &mut BufReader<TcpStream>,
        scratch: &mut Vec<u8>,
        idle_ok: bool,
    ) -> FrameIn {
        match read_frame_patient(reader, scratch, &self.ctl.stop, idle_ok) {
            Ok(Some(frame)) => match Request::decode(frame) {
                Ok(req) => FrameIn::Frame(req),
                Err(_) => FrameIn::Malformed,
            },
            Ok(None) => FrameIn::Eof,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                FrameIn::Idle
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => FrameIn::Malformed,
            Err(_) => FrameIn::Transport,
        }
    }

    /// Executes a pipelined burst, answering each request in order.
    /// Runs of two or more consecutive `PUT`s go through the store's
    /// per-shard batch path.
    fn process_burst(
        &self,
        ctx: &mut KvCtx<S>,
        burst: &[Request],
        tracer: &mut ThreadTracer,
    ) -> Vec<Response> {
        let mut out = Vec::with_capacity(burst.len());
        let mut i = 0;
        while i < burst.len() {
            let run_end = if matches!(burst[i], Request::Put { .. }) {
                let mut j = i;
                while j < burst.len() && matches!(burst[j], Request::Put { .. }) {
                    j += 1;
                }
                j
            } else {
                i
            };
            if run_end - i >= 2 {
                let items: Vec<(i64, i64)> = burst[i..run_end]
                    .iter()
                    .map(|r| match *r {
                        Request::Put { key, value } => (key, value),
                        _ => unreachable!("run contains only puts"),
                    })
                    .collect();
                // SAFETY(ordering): Relaxed — telemetry tally.
                self.counters
                    .batched_writes
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                for (item, res) in items.iter().zip(self.store.put_batch(ctx, &items)) {
                    out.push(match res {
                        Ok(prev) => Response::Value(prev),
                        // A shed group falls back to the single-write
                        // policy so Degrading still means "queue with
                        // a deadline", not "batch missed, bad luck".
                        Err(_) => self.write_op(ctx, item.0, tracer, |store, ctx| {
                            store.put(ctx, item.0, item.1)
                        }),
                    });
                }
                i = run_end;
            } else {
                out.push(self.respond(ctx, &burst[i], tracer));
                i += 1;
            }
        }
        out
    }

    fn respond(&self, ctx: &mut KvCtx<S>, req: &Request, tracer: &mut ThreadTracer) -> Response {
        match *req {
            Request::Get { key } => Response::Value(self.store.get(ctx, key)),
            Request::Put { key, value } => {
                self.write_op(ctx, key, tracer, |store, ctx| store.put(ctx, key, value))
            }
            Request::Remove { key } => {
                self.write_op(ctx, key, tracer, |store, ctx| store.remove(ctx, key))
            }
            Request::Incr { key, delta } => {
                self.write_op(ctx, key, tracer, |store, ctx| store.incr(ctx, key, delta))
            }
            Request::Scan { lo, hi, limit } => {
                // A live server cannot take the store's quiescent-only
                // snapshot; SCAN is a bounded sweep of protected point
                // reads over at most `limit` consecutive keys instead.
                let limit = limit.min(self.cfg.scan_limit) as i64;
                let hi = hi.min(lo.saturating_add(limit.max(0)));
                let mut entries = Vec::new();
                let mut k = lo;
                while k < hi {
                    if let Some(v) = self.store.get(ctx, k) {
                        entries.push((k, v));
                    }
                    k += 1;
                }
                Response::Entries(entries)
            }
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(self.stats_reply()),
        }
    }

    /// The navigator-driven write policy shared by PUT/REMOVE/INCR and
    /// the batch fallback.
    fn write_op<F>(
        &self,
        ctx: &mut KvCtx<S>,
        key: i64,
        tracer: &mut ThreadTracer,
        mut op: F,
    ) -> Response
    where
        F: FnMut(&KvStore<'s, S>, &mut KvCtx<S>) -> Result<Option<i64>, KvError>,
    {
        let shard = self.store.shard_of(key);
        match self.store.health(shard) {
            ShardHealth::Violating | ShardHealth::Quarantined => self.shed(shard, tracer),
            ShardHealth::Robust | ShardHealth::Degrading => {
                // Robust: the first attempt succeeds immediately.
                // Degrading: bounded queueing — retry with backoff
                // until the write lands or the deadline passes.
                let deadline = Instant::now() + self.cfg.degraded_deadline;
                let mut attempt = 0u32;
                loop {
                    match op(self.store, ctx) {
                        Ok(prev) => return Response::Value(prev),
                        Err(KvError::Overloaded { shard }) => {
                            if self.store.health(shard) > ShardHealth::Degrading {
                                return self.shed(shard, tracer);
                            }
                            let backoff = self.cfg.write_backoff.backoff_for(attempt, key as u64);
                            attempt = attempt.saturating_add(1);
                            if Instant::now() + backoff > deadline {
                                // SAFETY(ordering): Relaxed — telemetry.
                                self.counters.shed_writes.fetch_add(1, Ordering::Relaxed);
                                return Response::Error(ErrorReply {
                                    code: ErrorCode::DeadlineExceeded,
                                    shard: shard as u32,
                                    retry_after_ms: self.cfg.retry_after_ms,
                                });
                            }
                            std::thread::sleep(backoff);
                        }
                        Err(KvError::DeadlineExceeded { shard }) => {
                            // SAFETY(ordering): Relaxed — telemetry.
                            self.counters.shed_writes.fetch_add(1, Ordering::Relaxed);
                            return Response::Error(ErrorReply {
                                code: ErrorCode::DeadlineExceeded,
                                shard: shard as u32,
                                retry_after_ms: self.cfg.retry_after_ms,
                            });
                        }
                    }
                }
            }
        }
    }

    /// The typed `Overloaded` + `Retry-After` frame.
    fn shed(&self, shard: usize, tracer: &mut ThreadTracer) -> Response {
        // SAFETY(ordering): Relaxed — telemetry tally.
        let shed = self.counters.shed_writes.fetch_add(1, Ordering::Relaxed) + 1;
        tracer.emit(Hook::Shed, shard as u64, shed);
        Response::Error(ErrorReply {
            code: ErrorCode::Overloaded,
            shard: shard as u32,
            // Quarantined shards drain a death's backlog, not a load
            // spike — hint clients to stay away twice as long.
            retry_after_ms: if self.store.health(shard) == ShardHealth::Quarantined {
                self.cfg.retry_after_ms * 2
            } else {
                self.cfg.retry_after_ms
            },
        })
    }

    fn stats_reply(&self) -> StatsReply {
        let st = self.store.stats();
        let (transitions, neutralizations, store_sheds) = self.store.nav_counters();
        let trace_dropped: u64 = (0..self.store.shard_count())
            .map(|i| self.store.recorder(i).dropped())
            .sum::<u64>()
            + self.recorder.dropped();
        StatsReply {
            retired_now: st.retired_now as u64,
            retired_peak: st.retired_peak as u64,
            total_retired: st.total_retired,
            total_reclaimed: st.total_reclaimed,
            sheds: store_sheds + self.counters.shed_writes.load(Ordering::SeqCst),
            transitions,
            neutralizations,
            trace_dropped,
            health: (0..self.store.shard_count())
                .map(|i| self.store.health(i) as u8)
                .collect(),
        }
    }
}

/// What one attempt to read a request produced.
enum FrameIn {
    /// A decoded request.
    Frame(Request),
    /// Clean close at a frame boundary.
    Eof,
    /// Read timeout before the first byte of a frame.
    Idle,
    /// A frame that does not decode (or a poisoned length prefix).
    Malformed,
    /// Any other transport failure.
    Transport,
}

/// [`read_frame`] with timeout patience: a timeout **before** the
/// first byte surfaces as `WouldBlock`/`TimedOut` (the caller's idle
/// poll), but a timeout **inside** a frame retries — the client has
/// already committed the length prefix, so the remainder is in flight
/// — until `stop` aborts the wait.
fn read_frame_patient<'b, R: Read>(
    r: &mut R,
    scratch: &'b mut Vec<u8>,
    stop: &AtomicBool,
    idle_ok: bool,
) -> io::Result<Option<&'b [u8]>> {
    struct Patient<'r, R: Read> {
        inner: &'r mut R,
        stop: &'r AtomicBool,
        got_any: bool,
        idle_ok: bool,
    }
    impl<R: Read> Read for Patient<'_, R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            loop {
                match self.inner.read(buf) {
                    Ok(n) => {
                        self.got_any |= n > 0;
                        return Ok(n);
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        if !self.got_any && self.idle_ok {
                            return Err(e);
                        }
                        if self.stop.load(Ordering::SeqCst) {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionAborted,
                                "server shutting down mid-frame",
                            ));
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    let mut patient = Patient {
        inner: r,
        stop,
        got_any: false,
        idle_ok,
    };
    read_frame(&mut patient, scratch)
}

// Re-exported so integration tests and docs can name the error type
// without importing era-kv.
pub use era_kv::KvConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ProtoError;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = NetConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_depth >= cfg.workers);
        assert!(cfg.degraded_deadline < Duration::from_secs(1));
        // The Degrading-path schedule is jittered but still bounded:
        // no single wait exceeds the policy ceiling, so the number of
        // sleeps inside degraded_deadline stays finite.
        assert!(cfg.write_backoff.jitter);
        for attempt in 0..64 {
            assert!(
                cfg.write_backoff.backoff_for(attempt, 42) <= cfg.write_backoff.max_backoff,
                "attempt {attempt} exceeded the backoff ceiling"
            );
        }
        assert_eq!(
            ServeStats::default().to_string(),
            "accepted=0 served=0 frames=0 batched_writes=0 shed_writes=0 queue_shed=0 malformed=0"
        );
    }

    #[test]
    fn proto_error_kind_is_invalid_data() {
        // The Malformed branch in read_request keys off InvalidData —
        // pin the mapping read_frame promises.
        let err = io::Error::new(io::ErrorKind::InvalidData, ProtoError::Oversized(0));
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
