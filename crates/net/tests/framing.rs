//! Wire-format properties and the pipelined-ordering guarantee.
//!
//! Three layers of trust in the protocol are pinned here:
//!
//! 1. **Losslessness** — any legal [`Request`]/[`Response`] survives
//!    encode→decode unchanged (proptest).
//! 2. **Rejection, never panic** — truncated frames, flipped bytes and
//!    hostile length prefixes produce structured errors (proptest).
//! 3. **In-order pipelining, end to end** — one real connection sends
//!    a pipelined burst to a live server and the responses come back
//!    strictly in request order, while other threads hammer the same
//!    shards directly through the store API.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use era_net::proto::{read_frame, write_request, Request, Response, StatsReply};
use era_net::{ErrorCode, ErrorReply, NetConfig, NetServer};

use era_kv::{KvConfig, KvStore};
use era_smr::ebr::Ebr;

use proptest::prelude::*;

const I64_FULL: std::ops::Range<i64> = i64::MIN..i64::MAX;

/// Tagged-tuple strategy over every request variant (the vendored
/// proptest shim has no `prop_oneof`, so the discriminant is drawn as
/// an integer and mapped).
fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..7, I64_FULL, I64_FULL, 0u32..1 << 20).prop_map(|(tag, a, b, limit)| match tag {
        0 => Request::Get { key: a },
        1 => Request::Put { key: a, value: b },
        2 => Request::Remove { key: a },
        3 => Request::Incr { key: a, delta: b },
        4 => Request::Scan {
            lo: a,
            hi: b,
            limit,
        },
        5 => Request::Ping,
        _ => Request::Stats,
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..5,
        (I64_FULL, I64_FULL, 0u64..u64::MAX),
        prop::collection::vec((I64_FULL, I64_FULL), 0..64),
        prop::collection::vec(0u8..4, 0..16),
    )
        .prop_map(|(tag, (a, b, n), entries, health)| match tag {
            0 => Response::Value(if a % 2 == 0 { Some(b) } else { None }),
            1 => Response::Entries(entries),
            2 => Response::Pong,
            3 => Response::Stats(StatsReply {
                retired_now: n,
                retired_peak: n.rotate_left(7),
                total_retired: n.wrapping_mul(3),
                total_reclaimed: n / 2,
                sheds: n % 977,
                transitions: n % 31,
                neutralizations: n % 7,
                trace_dropped: n % 13,
                health,
            }),
            _ => Response::Error(ErrorReply {
                code: ErrorCode::from_u8(1 + (n % 3) as u8).unwrap(),
                shard: a as u32,
                retry_after_ms: b as u32,
            }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_encode_decode_is_lossless(req in arb_request()) {
        let mut frame = Vec::new();
        req.encode(&mut frame);
        // Frame = 4-byte length prefix + payload; decode takes payload.
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, frame.len() - 4);
        let back = Request::decode(&frame[4..]).expect("own encoding must decode");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_encode_decode_is_lossless(resp in arb_response()) {
        let mut frame = Vec::new();
        resp.encode(&mut frame);
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, frame.len() - 4);
        let back = Response::decode(&frame[4..]).expect("own encoding must decode");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn truncation_is_rejected_never_panics(req in arb_request(), cut in 0usize..64) {
        let mut frame = Vec::new();
        req.encode(&mut frame);
        let payload = &frame[4..];
        if cut < payload.len() {
            // Every strict prefix must fail to decode — the strict
            // parser tolerates no missing tail bytes.
            let err = Request::decode(&payload[..cut]);
            prop_assert!(err.is_err(), "prefix of len {cut} decoded");
        }
    }

    #[test]
    fn byte_flips_never_panic(
        req in arb_request(),
        flip_at in 0usize..64,
        flip_to in 0u16..256,
    ) {
        let mut frame = Vec::new();
        req.encode(&mut frame);
        let mut payload = frame[4..].to_vec();
        let idx = flip_at % payload.len();
        payload[idx] = flip_to as u8;
        // Either a clean decode (the flip stayed in vocabulary) or a
        // structured ProtoError — never a panic.
        let _ = Request::decode(&payload);
    }

    #[test]
    fn trailing_garbage_is_rejected(req in arb_request(), extra in 1usize..8) {
        let mut frame = Vec::new();
        req.encode(&mut frame);
        let mut payload = frame[4..].to_vec();
        payload.extend(vec![0xEEu8; extra]);
        prop_assert!(Request::decode(&payload).is_err(), "trailing bytes accepted");
    }
}

/// Reads exactly one response frame off `stream`.
fn read_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> Response {
    let frame = read_frame(stream, scratch)
        .expect("transport error mid-response")
        .expect("server closed mid-response");
    Response::decode(frame).expect("server sent an undecodable frame")
}

/// N pipelined requests on one connection answer strictly in request
/// order, while other threads write the same shards directly — the
/// worker's in-order burst processing may batch, interleave with store
/// traffic, or split the burst, but it may never reorder.
#[test]
fn pipelined_requests_answer_in_order_under_concurrent_writes() {
    const PIPELINE: i64 = 64;
    let schemes: Vec<Ebr> = (0..4).map(|_| Ebr::new(16)).collect();
    let cfg = KvConfig {
        max_threads: 12,
        ..KvConfig::default()
    };
    let store = KvStore::new(&schemes, cfg);
    let server = NetServer::bind(
        &store,
        NetConfig {
            workers: 2,
            ..NetConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();

    // Background interference: direct store writes on every shard for
    // the whole client exchange.
    let stop_noise = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run().expect("serve"));
        let noise = s.spawn(|| {
            let mut ctx = store.register().expect("noise ctx");
            let mut k = 1_000_000i64;
            while !stop_noise.load(std::sync::atomic::Ordering::SeqCst) {
                let _ = store.put(&mut ctx, k % 1_000_000 + 500_000, k);
                k += 1;
            }
        });

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut scratch = Vec::new();

        // Prepare the counter key, unpipelined.
        write_request(&mut stream, &Request::Put { key: 7, value: 0 }).unwrap();
        assert_eq!(
            read_response(&mut stream, &mut scratch),
            Response::Value(None)
        );

        // One write() carrying the whole pipelined burst: 64 INCRs on
        // the same key, a PING, and a GET.
        let mut burst = Vec::new();
        for _ in 0..PIPELINE {
            Request::Incr { key: 7, delta: 1 }.encode(&mut burst);
        }
        Request::Ping.encode(&mut burst);
        Request::Get { key: 7 }.encode(&mut burst);
        stream.write_all(&burst).expect("send burst");
        stream.flush().unwrap();

        // Only this connection touches key 7, so in-order execution is
        // observable: INCR i must answer exactly Some(i + 1).
        for i in 0..PIPELINE {
            assert_eq!(
                read_response(&mut stream, &mut scratch),
                Response::Value(Some(i + 1)),
                "response {i} out of order"
            );
        }
        assert_eq!(read_response(&mut stream, &mut scratch), Response::Pong);
        assert_eq!(
            read_response(&mut stream, &mut scratch),
            Response::Value(Some(PIPELINE))
        );
        drop(stream);

        stop_noise.store(true, std::sync::atomic::Ordering::SeqCst);
        noise.join().unwrap();
        handle.shutdown();
        let stats = run.join().unwrap();
        assert!(stats.frames >= PIPELINE as u64 + 3);
        assert!(
            stats.batched_writes == 0,
            "INCRs must not ride the put-batch path"
        );
    });
}

/// A malformed frame gets a typed `Malformed` error and the connection
/// is closed; a fresh connection still works.
#[test]
fn malformed_frame_gets_typed_error_then_close() {
    let schemes: Vec<Ebr> = (0..1).map(|_| Ebr::new(8)).collect();
    let store = KvStore::new(&schemes, KvConfig::default());
    let server = NetServer::bind(
        &store,
        NetConfig {
            workers: 1,
            ..NetConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    std::thread::scope(|s| {
        let run = s.spawn(|| server.run().expect("serve"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut scratch = Vec::new();
        // Length 1, unknown opcode 0x7F.
        stream.write_all(&[0, 0, 0, 1, 0x7F]).unwrap();
        match read_response(&mut stream, &mut scratch) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::Malformed);
                assert_eq!(e.shard, u32::MAX, "framing errors are not shard-scoped");
            }
            other => panic!("expected Malformed error, got {other:?}"),
        }
        // The server hangs up after a framing violation.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);

        // A new connection is unaffected.
        let mut fresh = TcpStream::connect(addr).expect("reconnect");
        fresh
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write_request(&mut fresh, &Request::Ping).unwrap();
        assert_eq!(read_response(&mut fresh, &mut scratch), Response::Pong);
        drop(fresh);

        handle.shutdown();
        let stats = run.join().unwrap();
        assert_eq!(stats.malformed, 1);
    });
}
