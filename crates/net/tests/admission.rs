//! End-to-end admission control over a real loopback socket.
//!
//! A seeded [`FaultPlan`] stalls a reader on the server's only shard
//! (the robustness adversary), the remote client churns writes until
//! the navigator classifies the shard `Violating`, and the assertions
//! are exactly the serving contract from DESIGN §3.12:
//!
//! * writes come back as typed `Overloaded` frames with a
//!   `Retry-After` hint — not silent stalls, not dropped connections;
//! * reads on the same connection keep succeeding throughout;
//! * after the stall window passes and the shard is drained and
//!   healed, remote writes succeed again and `STATS` reports the
//!   shard `Robust`.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use era_chaos::{ChaosSmr, FaultAction, FaultPlan};
use era_kv::{KvConfig, KvStore, ShardHealth};
use era_net::proto::{read_frame, write_request, Request, Response};
use era_net::{ErrorCode, NetConfig, NetServer};
use era_smr::ebr::Ebr;

/// The stall fires once the server has executed `STALL_AT` store ops
/// and pins its victim for the next `STALL_FOR` ops.
const STALL_AT: u64 = 24;
const STALL_FOR: u64 = 100_000;

fn read_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> Response {
    let frame = read_frame(stream, scratch)
        .expect("transport error mid-response")
        .expect("server closed mid-response");
    Response::decode(frame).expect("server sent an undecodable frame")
}

fn roundtrip(stream: &mut TcpStream, scratch: &mut Vec<u8>, req: &Request) -> Response {
    write_request(stream, req).expect("send");
    stream.flush().unwrap();
    read_response(stream, scratch)
}

#[test]
fn violating_shard_sheds_remote_writes_serves_reads_then_heals() {
    // One shard, tiny budgets, a seeded deterministic stall plan.
    let plan = FaultPlan::new(
        0x0E8A_AD11,
        vec![FaultAction::StallThread {
            at_op: STALL_AT,
            for_ops: STALL_FOR,
        }],
    );
    let schemes = vec![ChaosSmr::new(Ebr::new(16), plan)];
    let cfg = KvConfig {
        retired_soft: 64,
        retired_hard: 128,
        max_threads: 12,
        ..KvConfig::default()
    };
    let store = KvStore::new(&schemes, cfg);
    let server = NetServer::bind(
        &store,
        NetConfig {
            workers: 2,
            // Fast idle ticks so worker maintenance (the path that
            // flushes the serving worker's retire lists) runs often.
            read_timeout: Duration::from_millis(5),
            ..NetConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();

    // A failed assertion below unwinds the scope closure before the
    // explicit shutdown call; without this guard the scope would then
    // join a server that nobody will ever stop.
    struct StopOnDrop(era_net::NetHandle);
    impl Drop for StopOnDrop {
        fn drop(&mut self) {
            self.0.shutdown();
        }
    }

    std::thread::scope(|s| {
        let _guard = StopOnDrop(server.handle());
        let run = s.spawn(|| server.run().expect("serve"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut scratch = Vec::new();

        // A sentinel key that stays present for the whole incident —
        // written while the shard is still Robust.
        assert_eq!(
            roundtrip(
                &mut stream,
                &mut scratch,
                &Request::Put { key: -1, value: 7 }
            ),
            Response::Value(None)
        );

        // Phase 1 — insert/remove churn. Values update in place on
        // overwrite, so only removals retire nodes: each put+remove
        // pair leaves one retired node behind. Once the chaos victim
        // pins the epoch, retired_now marches through the soft budget
        // (Degrading: writes queue but land) into the hard budget.
        // There the navigator flips the shard Violating and the net
        // layer sheds — and because shed writes stop the retire/flush
        // traffic, the footprint stays above the recovery threshold:
        // the shard latches Violating until the test drains it. The
        // first typed error frame is the proof.
        let mut shed = None;
        'churn: for i in 0..2_000i64 {
            let key = 8 + i;
            for req in [Request::Put { key, value: i }, Request::Remove { key }] {
                match roundtrip(&mut stream, &mut scratch, &req) {
                    Response::Value(_) => {}
                    Response::Error(e) => {
                        shed = Some(e);
                        break 'churn;
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        let shed = shed.expect("navigator never shed a write despite the pinned epoch");
        assert_eq!(
            shed.code,
            ErrorCode::Overloaded,
            "expected Overloaded, got {shed:?}"
        );
        assert_eq!(shed.shard, 0, "the shed must name the violating shard");
        assert!(
            shed.retry_after_ms > 0,
            "Overloaded must carry a Retry-After hint"
        );

        // Phase 2 — reads on the same connection still succeed while
        // writes are refused (reads add no reclamation footprint), and
        // the shard is still refusing writes (latched Violating).
        assert_eq!(
            roundtrip(&mut stream, &mut scratch, &Request::Get { key: -1 }),
            Response::Value(Some(7)),
            "read during violation must serve the sentinel"
        );
        match roundtrip(
            &mut stream,
            &mut scratch,
            &Request::Put { key: -2, value: 0 },
        ) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Overloaded),
            other => panic!("write during latched violation answered {other:?}"),
        }
        // Phase 3 — recovery. Advance the chaos op clock past the
        // stall window with reads (each begin_op ticks the clock),
        // then drain the shard and heal this thread's context. The
        // server's own watchdog keeps classifying; once footprint
        // falls below half the soft budget the shard re-opens.
        let mut ctx = store.register().expect("test ctx");
        for _ in 0..(STALL_AT + STALL_FOR + 16) {
            let _ = store.get(&mut ctx, 3);
        }
        // The churned garbage lives in the *serving worker's* retire
        // lists, so this thread's drain alone cannot reclaim it — the
        // workers' idle-maintenance flushes (every read_timeout) do.
        // Drive drain rounds until both sides have drained everything.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while !store.drain(&mut ctx, 100) {
            assert!(
                Instant::now() < drain_deadline,
                "shard failed to drain after the stall window closed: {:?}",
                store.stats()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        store.heal(&mut ctx, 0).expect("heal after the incident");

        let deadline = Instant::now() + Duration::from_secs(10);
        while store.health(0) != ShardHealth::Robust {
            assert!(
                Instant::now() < deadline,
                "shard stuck {:?} after drain + heal",
                store.health(0)
            );
            std::thread::sleep(Duration::from_millis(1));
        }

        // Remote writes are admitted again...
        let recovered = roundtrip(
            &mut stream,
            &mut scratch,
            &Request::Put { key: 3, value: 99 },
        );
        assert!(
            matches!(recovered, Response::Value(_)),
            "write after heal answered {recovered:?}"
        );
        // ...and the wire-visible stats agree: shard Robust, sheds > 0.
        match roundtrip(&mut stream, &mut scratch, &Request::Stats) {
            Response::Stats(st) => {
                assert_eq!(st.health, vec![ShardHealth::Robust as u8]);
                assert!(st.sheds > 0, "the shed phase must be visible in STATS");
                assert!(st.transitions > 0, "health transitions must be counted");
            }
            other => panic!("STATS answered {other:?}"),
        }

        drop(stream);
        handle.shutdown();
        let stats = run.join().unwrap();
        assert!(stats.shed_writes > 0, "server must count its sheds");
        assert_eq!(stats.malformed, 0);
    });
}
