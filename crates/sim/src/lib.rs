//! # era-sim — the deterministic shared-memory simulator
//!
//! This crate is the substrate that makes the ERA theorem's *proof*
//! executable. It provides:
//!
//! * [`heap`] — a simulated heap with logical node incarnations,
//!   program/system space, bit-level link words (ABA-faithful CAS), and
//!   every access streamed through `era-core`'s Definition 4.1/4.2
//!   safety oracle;
//! * [`schemes`] — simulated reclamation schemes (EBR, HP, HE, IBR,
//!   VBR, NBR, Leak) as per-primitive hooks, each carrying its static
//!   Definition 5.3 interface description;
//! * [`harris`] — a small-step interpreter for Harris's linked list
//!   (Algorithm 1), one shared-memory access per step, so adversarial
//!   schedules can pause a thread *anywhere*;
//! * [`michael`] — the same for Michael's HP-compatible modification,
//!   on which HP/HE/IBR are provably *safe* (§4.3) — the positive
//!   counterpart to the Figure 1/2 violations;
//! * [`progress`] — operational progress checks (solo-completion
//!   sweeps, minimal progress) for Condition 3 of Definition 5.4;
//! * [`theorem`] — the Theorem 6.1 construction (Figure 1): the paused
//!   reader, the churning writer, the solo run, and the per-scheme
//!   outcome (which ERA property was sacrificed);
//! * [`figure2`] — the Appendix E counterexample (Figure 2) showing
//!   HP/HE/IBR's protect-validate discipline failing on Harris's list;
//! * [`phases`] — the Appendix C/D access-aware phase check for the
//!   Harris interpreter.
//!
//! ## Example: replay the theorem against EBR
//!
//! ```
//! use era_sim::schemes::SimEbr;
//! use era_sim::theorem::{run_figure1, Sacrificed};
//!
//! let outcome = run_figure1(Box::new(SimEbr::new(2)), 64);
//! // EBR is safe and easy — the property it gives up is robustness.
//! assert_eq!(outcome.sacrificed, Sacrificed::Robustness);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figure2;
pub mod harris;
pub mod heap;
pub mod locked;
pub mod michael;
pub mod phases;
pub mod progress;
pub mod schemes;
pub mod theorem;
pub mod world;

pub use harris::{HarrisOp, HarrisSim, OpKind};
pub use michael::{MichaelOp, MichaelSim};
pub use theorem::{run_figure1, Sacrificed, TheoremOutcome};
pub use world::Sim;
