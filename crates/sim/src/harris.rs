//! Small-step interpreter for Harris's linked list (Algorithm 1).
//!
//! Every [`HarrisSim::step`] performs **at most one shared-memory
//! access**, which is the granularity the Theorem 6.1 construction
//! needs: the adversarial scheduler pauses thread `T1` *between* the
//! read of `head.next` and its next traversal step, runs `T2` for
//! arbitrarily long, then solo-runs `T1`.
//!
//! All primitive accesses go through the integrated scheme's hooks
//! ([`crate::schemes::SimScheme`]); scheme-forced roll-backs are counted
//! in the [`era_core::integration::IntegrationMonitor`] (the dynamic
//! half of the Definition 5.3 verdict), while algorithm-level retries
//! (Harris's `goto retry`) are not.

use era_core::applicability::{PhaseEvent, PhaseKind};
use era_core::history::{Op, Ret};
use era_core::ids::{NodeId, ThreadId};
use era_core::validity::VarId;

use crate::heap::Local;
use crate::schemes::{Outcome, SimScheme};
use crate::world::Sim;

/// Which set operation a [`HarrisOp`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `insert(key)`.
    Insert(i64),
    /// `delete(key)`.
    Delete(i64),
    /// `contains(key)`.
    Contains(i64),
}

impl OpKind {
    fn key(self) -> i64 {
        match self {
            OpKind::Insert(k) | OpKind::Delete(k) | OpKind::Contains(k) => k,
        }
    }

    fn as_history_op(self) -> Op {
        match self {
            OpKind::Insert(k) => Op::Insert(k),
            OpKind::Delete(k) => Op::Delete(k),
            OpKind::Contains(k) => Op::Contains(k),
        }
    }
}

/// Interpreter state (one variant ≈ one pending shared access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Begin,
    ReadHead,
    ReadPredNext,
    ReadCurrNext,
    ReadCurrKey,
    WindowRecheck,
    UnlinkChain,
    InsertWriteNext,
    InsertCas,
    DeleteReadSucc,
    DeleteMarkCas,
    DeleteUnlinkCas,
    RetireVictim,
    Done,
}

/// What to do once a (re-)search completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PostSearch {
    /// Normal dispatch by operation kind.
    Dispatch,
    /// Delete line 51: the victim is marked; retire it and finish.
    RetireVictim,
}

/// One in-flight operation of a simulated thread.
#[derive(Debug)]
pub struct HarrisOp {
    /// Executing thread.
    pub tid: ThreadId,
    kind: OpKind,
    state: State,
    post_search: PostSearch,
    pred: Local,
    pred_next: Local,
    curr: Local,
    curr_next: Local,
    succ: Local,
    new_node: Local,
    new_node_id: Option<NodeId>,
    victim: Local,
    victim_node: Option<NodeId>,
    key_scratch: VarId,
    curr_key: i64,
    result: Option<bool>,
    /// Shared-memory steps executed so far.
    pub steps: usize,
    /// Scheme-forced roll-backs experienced by this operation.
    pub rollbacks: usize,
    /// Appendix D phase the operation is currently in.
    phase: PhaseKind,
}

impl HarrisOp {
    /// The operation's result once complete.
    pub fn result(&self) -> Option<bool> {
        self.result
    }

    /// Whether the operation has responded.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Whether the thread is mid-traversal (useful for scheduling).
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Whether the delete has already marked its victim (Algorithm 1,
    /// line 48 executed) — the pause point Figure 2 needs.
    pub fn has_marked_victim(&self) -> bool {
        self.victim_node.is_some()
    }
}

/// A Harris list living inside a [`Sim`] world.
#[derive(Debug)]
pub struct HarrisSim {
    /// The simulation world.
    pub sim: Sim,
    head: Local,
    tail: Local,
    head_node: NodeId,
    tail_node: NodeId,
}

impl HarrisSim {
    /// Builds the two-sentinel empty list inside a fresh world.
    pub fn new(scheme: Box<dyn SimScheme>) -> Self {
        let mut sim = Sim::new(scheme);
        let setup_tid = ThreadId(0);
        let mut tail = sim.heap.new_local();
        let tail_node = sim.heap.alloc(setup_tid, i64::MAX, &mut tail);
        sim.scheme.on_alloc(&mut sim.heap, tail_node);
        let mut head = sim.heap.new_local();
        let head_node = sim.heap.alloc(setup_tid, i64::MIN, &mut head);
        sim.scheme.on_alloc(&mut sim.heap, head_node);
        sim.heap.write_next(setup_tid, &head, &tail, false);
        sim.heap.share(&tail);
        sim.heap.share(&head);
        HarrisSim {
            sim,
            head,
            tail,
            head_node,
            tail_node,
        }
    }

    /// The sentinels' logical identities (for assertions).
    pub fn sentinels(&self) -> (NodeId, NodeId) {
        (self.head_node, self.tail_node)
    }

    /// Starts an operation for `tid` (the invocation step).
    pub fn start_op(&mut self, tid: ThreadId, kind: OpKind) -> HarrisOp {
        let heap = &mut self.sim.heap;
        let mk = |heap: &mut crate::heap::SimHeap| heap.new_local();
        HarrisOp {
            tid,
            kind,
            state: State::Begin,
            post_search: PostSearch::Dispatch,
            pred: mk(heap),
            pred_next: mk(heap),
            curr: mk(heap),
            curr_next: mk(heap),
            succ: mk(heap),
            new_node: mk(heap),
            new_node_id: None,
            victim: mk(heap),
            victim_node: None,
            key_scratch: heap.new_var(),
            curr_key: 0,
            result: None,
            steps: 0,
            rollbacks: 0,
            phase: PhaseKind::ReadOnly,
        }
    }

    /// The logical node `op`'s `curr` pointer references (diagnostics).
    pub fn current_target(&self, op: &HarrisOp) -> Option<NodeId> {
        self.sim.heap.target(&op.curr)
    }

    fn restart(&mut self, op: &mut HarrisOp, scheme_forced: bool) {
        if scheme_forced {
            op.rollbacks += 1;
            self.sim.monitor.record_rollback();
            self.sim.tracer.emit_for(
                op.tid.0 as u16,
                era_obs::Hook::Rollback,
                op.steps as u64,
                op.rollbacks as u64,
            );
        }
        {
            let Sim { heap, scheme, .. } = &mut self.sim;
            scheme.on_retry(heap, op.tid);
        }
        // A retry re-enters the traversal: a new read-only phase when we
        // were writing, a continuation of the current one otherwise.
        if op.phase == PhaseKind::Write {
            self.sim
                .phase_event(op.tid, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
            op.phase = PhaseKind::ReadOnly;
        }
        op.state = State::ReadHead;
    }

    /// The node `local` currently (logically) references.
    fn target_of(&self, local: &Local) -> Option<NodeId> {
        self.sim.heap.target(local)
    }

    /// Executes one step of `op`. Returns `true` when the operation has
    /// completed (its response step executed).
    pub fn step(&mut self, op: &mut HarrisOp) -> bool {
        if op.state == State::Done {
            return true;
        }
        op.steps += 1;
        let tid = op.tid;
        let key = op.kind.key();
        match op.state {
            State::Done => unreachable!(),
            State::Begin => {
                self.sim.record_invoke(tid, op.kind.as_history_op());
                let Sim { heap, scheme, .. } = &mut self.sim;
                scheme.begin_op(heap, tid);
                if let OpKind::Insert(k) = op.kind {
                    // Algorithm 1, line 28: allocate up front.
                    let node = heap.alloc(tid, k, &mut op.new_node);
                    scheme.on_alloc(heap, node);
                    op.new_node_id = Some(node);
                }
                op.phase = PhaseKind::ReadOnly;
                self.sim
                    .phase_event(tid, PhaseEvent::PhaseStart(PhaseKind::ReadOnly));
                if op.kind.key() != i64::MIN && op.new_node_id.is_some() {
                    self.sim.phase_event(
                        tid,
                        PhaseEvent::LocalAlloc {
                            var: op.new_node.var,
                        },
                    );
                }
                op.state = State::ReadHead;
            }
            State::ReadHead => {
                // Read the entry point (a global variable, always valid).
                let head = self.head;
                self.sim.heap.read_global(&mut op.pred, &head);
                self.sim
                    .phase_event(tid, PhaseEvent::ReadGlobalInto { var: op.pred.var });
                op.state = State::ReadPredNext;
            }
            State::ReadPredNext => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_next(heap, tid, &op.pred, &mut op.pred_next) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim.phase_event(
                            tid,
                            PhaseEvent::DerefReadInto {
                                src: op.pred.var,
                                dst: op.pred_next.var,
                            },
                        );
                        let pn = op.pred_next;
                        self.sim.heap.assign_with_mark(&mut op.curr, &pn, false);
                        self.sim.phase_event(
                            tid,
                            PhaseEvent::LocalCopy {
                                src: op.pred_next.var,
                                dst: op.curr.var,
                            },
                        );
                        op.state = State::ReadCurrNext;
                    }
                }
            }
            State::ReadCurrNext => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_next(heap, tid, &op.curr, &mut op.curr_next) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim.phase_event(
                            tid,
                            PhaseEvent::DerefReadInto {
                                src: op.curr.var,
                                dst: op.curr_next.var,
                            },
                        );
                        // Branch on the mark bit: a *use* of the value.
                        self.sim.heap.use_var(tid, op.curr_next.var);
                        let marked = op.curr_next.word.is_some_and(|w| w.mark);
                        if marked {
                            // Traverse straight through (line 7/11) —
                            // Harris's defining move.
                            let cn = op.curr_next;
                            self.sim.heap.assign_with_mark(&mut op.curr, &cn, false);
                            self.sim.phase_event(
                                tid,
                                PhaseEvent::LocalCopy {
                                    src: op.curr_next.var,
                                    dst: op.curr.var,
                                },
                            );
                            op.state = State::ReadCurrNext;
                        } else {
                            op.state = State::ReadCurrKey;
                        }
                    }
                }
            }
            State::ReadCurrKey => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_key(heap, tid, &op.curr, op.key_scratch) {
                    Err(Outcome::Rollback) => self.restart(op, true),
                    Err(Outcome::Ok) => unreachable!(),
                    Ok(bits) => {
                        self.sim.phase_event(
                            tid,
                            PhaseEvent::DerefReadInto {
                                src: op.curr.var,
                                dst: op.key_scratch,
                            },
                        );
                        self.sim.heap.use_var(tid, op.key_scratch);
                        op.curr_key = bits;
                        if bits < key {
                            // Advance (lines 8–11).
                            let (c, cn) = (op.curr, op.curr_next);
                            self.sim.heap.assign(&mut op.pred, &c);
                            self.sim.heap.assign(&mut op.pred_next, &cn);
                            self.sim.heap.assign_with_mark(&mut op.curr, &cn, false);
                            self.sim.phase_event(
                                tid,
                                PhaseEvent::LocalCopy {
                                    src: op.curr.var,
                                    dst: op.pred.var,
                                },
                            );
                            self.sim.phase_event(
                                tid,
                                PhaseEvent::LocalCopy {
                                    src: op.curr_next.var,
                                    dst: op.pred_next.var,
                                },
                            );
                            self.sim.phase_event(
                                tid,
                                PhaseEvent::LocalCopy {
                                    src: op.curr_next.var,
                                    dst: op.curr.var,
                                },
                            );
                            op.state = State::ReadCurrNext;
                        } else {
                            // Window formed; compare the words (line 14).
                            self.sim.heap.use_var(tid, op.pred_next.var);
                            self.sim.heap.use_var(tid, op.curr.var);
                            // The traversal is over: the write phase
                            // begins (Appendix D).
                            op.phase = PhaseKind::Write;
                            self.sim
                                .phase_event(tid, PhaseEvent::PhaseStart(PhaseKind::Write));
                            if op.pred_next.word == op.curr.word {
                                op.state = State::WindowRecheck;
                            } else {
                                op.state = State::UnlinkChain;
                            }
                        }
                    }
                }
            }
            State::WindowRecheck => {
                // Lines 15/20: the window's curr must not be marked.
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_next(heap, tid, &op.curr, &mut op.succ) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim.phase_event(
                            tid,
                            PhaseEvent::DerefReadInto {
                                src: op.curr.var,
                                dst: op.succ.var,
                            },
                        );
                        self.sim.heap.use_var(tid, op.succ.var);
                        let marked = op.succ.word.is_some_and(|w| w.mark);
                        if marked {
                            self.restart(op, false); // goto retry
                        } else {
                            self.dispatch_after_search(op);
                        }
                    }
                }
            }
            State::UnlinkChain => {
                // Line 18: one CAS removes the whole marked chain.
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.pre_write(heap, tid, &[&op.pred, &op.curr]) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim
                            .phase_event(tid, PhaseEvent::SharedWrite { via: op.pred.var });
                        let ok = self.sim.heap.cas_next(
                            tid,
                            &op.pred,
                            op.pred_next.word,
                            &op.curr,
                            false,
                        );
                        if ok {
                            let c = op.curr;
                            self.sim.heap.assign(&mut op.pred_next, &c);
                            self.sim.phase_event(
                                tid,
                                PhaseEvent::LocalCopy {
                                    src: op.curr.var,
                                    dst: op.pred_next.var,
                                },
                            );
                            op.state = State::WindowRecheck;
                        } else {
                            self.restart(op, false);
                        }
                    }
                }
            }
            State::InsertWriteNext => {
                // Line 36: new_node.next = curr (the node is still local).
                let (nn, c) = (op.new_node, op.curr);
                self.sim.heap.write_next(tid, &nn, &c, false);
                self.sim.phase_event(
                    tid,
                    PhaseEvent::SharedWrite {
                        via: op.new_node.var,
                    },
                );
                op.state = State::InsertCas;
            }
            State::InsertCas => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.pre_write(heap, tid, &[&op.pred]) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim
                            .phase_event(tid, PhaseEvent::SharedWrite { via: op.pred.var });
                        let ok = self.sim.heap.cas_next(
                            tid,
                            &op.pred,
                            op.curr.word,
                            &op.new_node,
                            false,
                        );
                        if ok {
                            self.sim.heap.share(&op.new_node);
                            self.sim.phase_event(
                                tid,
                                PhaseEvent::Shared {
                                    var: op.new_node.var,
                                },
                            );
                            self.finish(op, true);
                        } else {
                            self.restart(op, false);
                        }
                    }
                }
            }
            State::DeleteReadSucc => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_next(heap, tid, &op.curr, &mut op.succ) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim.phase_event(
                            tid,
                            PhaseEvent::DerefReadInto {
                                src: op.curr.var,
                                dst: op.succ.var,
                            },
                        );
                        self.sim.heap.use_var(tid, op.succ.var);
                        let marked = op.succ.word.is_some_and(|w| w.mark);
                        if marked {
                            self.restart(op, false); // line 46
                        } else {
                            op.state = State::DeleteMarkCas;
                        }
                    }
                }
            }
            State::DeleteMarkCas => {
                // Line 48: logical deletion.
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.pre_write(heap, tid, &[&op.pred, &op.curr]) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim
                            .phase_event(tid, PhaseEvent::SharedWrite { via: op.curr.var });
                        let ok =
                            self.sim
                                .heap
                                .cas_next(tid, &op.curr, op.succ.word, &op.succ, true);
                        if ok {
                            op.victim_node = self.target_of(&op.curr);
                            let c = op.curr;
                            self.sim.heap.assign(&mut op.victim, &c);
                            op.state = State::DeleteUnlinkCas;
                        } else {
                            op.state = State::DeleteReadSucc; // line 49
                        }
                    }
                }
            }
            State::DeleteUnlinkCas => {
                // Line 50: try to unlink the victim ourselves.
                self.sim
                    .phase_event(tid, PhaseEvent::SharedWrite { via: op.pred.var });
                let ok = self
                    .sim
                    .heap
                    .cas_next(tid, &op.pred, op.curr.word, &op.succ, false);
                if ok {
                    op.state = State::RetireVictim;
                } else {
                    // Line 51: a full search will unlink it.
                    op.post_search = PostSearch::RetireVictim;
                    self.restart(op, false);
                }
            }
            State::RetireVictim => {
                // Line 52: the marking thread retires, exactly once.
                let node = op.victim_node.expect("victim recorded at mark");
                let Sim { heap, scheme, .. } = &mut self.sim;
                scheme.retire(heap, tid, node);
                self.finish(op, true);
            }
        }
        op.state == State::Done
    }

    fn dispatch_after_search(&mut self, op: &mut HarrisOp) {
        if op.post_search == PostSearch::RetireVictim {
            op.state = State::RetireVictim;
            return;
        }
        let key = op.kind.key();
        match op.kind {
            OpKind::Contains(_) => {
                let found = op.curr_key == key;
                self.finish(op, found);
            }
            OpKind::Insert(_) => {
                if op.curr_key == key {
                    // Lines 33–35: duplicate — retire the local node.
                    let node = op.new_node_id.take().expect("insert allocated");
                    let Sim { heap, scheme, .. } = &mut self.sim;
                    scheme.retire(heap, tid_of(op), node);
                    self.finish(op, false);
                } else {
                    op.state = State::InsertWriteNext;
                }
            }
            OpKind::Delete(_) => {
                if op.curr_key == key {
                    op.state = State::DeleteReadSucc;
                } else {
                    self.finish(op, false);
                }
            }
        }
    }

    fn finish(&mut self, op: &mut HarrisOp, result: bool) {
        let Sim { heap, scheme, .. } = &mut self.sim;
        scheme.end_op(heap, op.tid);
        self.sim.record_response(op.tid, Ret::Bool(result));
        op.result = Some(result);
        op.state = State::Done;
    }

    /// Runs `op` to completion (or until `max_steps`); returns the
    /// result, or `None` if the budget ran out.
    pub fn run_to_completion(&mut self, op: &mut HarrisOp, max_steps: usize) -> Option<bool> {
        for _ in 0..max_steps {
            if self.step(op) {
                return op.result;
            }
        }
        None
    }

    /// Convenience: run a whole operation for `tid`.
    pub fn run_op(&mut self, tid: ThreadId, kind: OpKind) -> bool {
        let mut op = self.start_op(tid, kind);
        self.run_to_completion(&mut op, 1_000_000)
            .expect("operation completes")
    }

    /// Quiescent snapshot of the set's keys.
    pub fn collect_keys(&mut self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut addr = self.head.word().addr;
        loop {
            let node = self.sim.heap.live_node_at(addr);
            let next = {
                // Peek without oracle events: use a scratch read through
                // a fresh traversal is overkill for a debug helper; go
                // through the heap API with a throwaway thread id.
                let mut tmp = self.sim.heap.new_local();
                let holder = Local {
                    var: self.head.var,
                    word: Some(crate::heap::Word { addr, mark: false }),
                };
                self.sim.heap.read_next(ThreadId(99), &holder, &mut tmp)
            };
            match next {
                None => break,
                Some(w) => {
                    if w.addr == self.tail.word().addr {
                        break;
                    }
                    let mut tmp = self.sim.heap.new_local();
                    let holder = Local {
                        var: self.head.var,
                        word: Some(crate::heap::Word {
                            addr: w.addr,
                            mark: false,
                        }),
                    };
                    let nn = self.sim.heap.read_next(ThreadId(99), &holder, &mut tmp);
                    if !nn.is_some_and(|x| x.mark) {
                        let scratch = self.sim.heap.new_var();
                        let k = self.sim.heap.read_key(ThreadId(99), &holder, scratch);
                        out.push(k);
                    }
                    addr = w.addr;
                    let _ = node;
                    continue;
                }
            }
        }
        out
    }
}

fn tid_of(op: &HarrisOp) -> ThreadId {
    op.tid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{SimEbr, SimLeak, SimNbr, SimVbr};

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn fresh(scheme: Box<dyn crate::schemes::SimScheme>) -> HarrisSim {
        HarrisSim::new(scheme)
    }

    #[test]
    fn sequential_set_semantics_under_leak() {
        let mut sim = fresh(Box::new(SimLeak));
        assert!(sim.run_op(T0, OpKind::Insert(3)));
        assert!(sim.run_op(T0, OpKind::Insert(1)));
        assert!(!sim.run_op(T0, OpKind::Insert(1)));
        assert!(sim.run_op(T0, OpKind::Contains(3)));
        assert!(!sim.run_op(T0, OpKind::Contains(2)));
        assert!(sim.run_op(T0, OpKind::Delete(1)));
        assert!(!sim.run_op(T0, OpKind::Delete(1)));
        assert_eq!(sim.collect_keys(), vec![3]);
        assert!(sim.sim.heap.verdict().is_smr());
        assert!(sim.sim.heap.verdict().all_accesses_safe());
    }

    #[test]
    fn sequential_set_semantics_under_every_scheme() {
        for scheme in crate::schemes::all_schemes(2) {
            let name = scheme.name();
            let mut sim = fresh(scheme);
            for k in [5, 3, 8, 1] {
                assert!(sim.run_op(T0, OpKind::Insert(k)), "{name} insert {k}");
            }
            assert!(!sim.run_op(T0, OpKind::Insert(5)), "{name}");
            for k in [1, 3] {
                assert!(sim.run_op(T0, OpKind::Delete(k)), "{name} delete {k}");
            }
            assert!(sim.run_op(T0, OpKind::Contains(8)), "{name}");
            assert!(!sim.run_op(T0, OpKind::Contains(3)), "{name}");
            assert_eq!(sim.collect_keys(), vec![5, 8], "{name}");
            assert!(
                sim.sim.heap.verdict().is_smr(),
                "{name}: sequential runs cannot violate Def 4.2"
            );
        }
    }

    #[test]
    fn interleaved_ops_stay_linearizable() {
        use era_core::linearizability::Checker;
        use era_core::spec::SetSpec;
        let mut sim = fresh(Box::new(SimEbr::new(2)));
        // Interleave two threads' operations step by step.
        let mut a = sim.start_op(T0, OpKind::Insert(1));
        let mut b = sim.start_op(T1, OpKind::Insert(1));
        loop {
            let da = sim.step(&mut a);
            let db = sim.step(&mut b);
            if da && db {
                break;
            }
        }
        // Exactly one insert(1) succeeds.
        assert_ne!(a.result(), b.result());
        let mut c = sim.start_op(T0, OpKind::Delete(1));
        let mut d = sim.start_op(T1, OpKind::Contains(1));
        loop {
            let dc = sim.step(&mut c);
            let dd = sim.step(&mut d);
            if dc && dd {
                break;
            }
        }
        assert_eq!(c.result(), Some(true));
        assert!(Checker::new(&SetSpec).is_linearizable(&sim.sim.history));
        assert!(sim.sim.heap.verdict().is_smr());
    }

    #[test]
    fn ebr_retired_nodes_grow_under_a_stalled_reader() {
        // The seed of Figure 1: T1 pauses mid-traversal, T2 churns.
        let mut sim = fresh(Box::new(SimEbr::new(2)));
        sim.run_op(T1, OpKind::Insert(1));
        sim.run_op(T1, OpKind::Insert(2));
        let mut t0 = sim.start_op(T0, OpKind::Delete(3));
        for _ in 0..4 {
            sim.step(&mut t0); // through Begin/ReadHead/ReadPredNext…
        }
        // T2 churns; nothing can be reclaimed while T0 is in-op.
        for round in 0..50 {
            assert!(sim.run_op(T1, OpKind::Insert(100 + round)));
            assert!(sim.run_op(T1, OpKind::Delete(100 + round)));
        }
        assert!(
            sim.sim.heap.sample().retired >= 50,
            "stalled EBR reader pins every retirement"
        );
        assert!(sim.sim.heap.verdict().is_smr());
    }

    #[test]
    fn vbr_rollbacks_are_counted() {
        let mut sim = fresh(Box::new(SimVbr::new()));
        sim.run_op(T0, OpKind::Insert(1));
        sim.run_op(T0, OpKind::Insert(2));
        // T1 pauses mid-traversal standing on node 1; T0 deletes nodes 1
        // and 2 (immediately reclaimed under VBR); T1 resumes and must
        // roll back rather than touch reclaimed memory.
        let mut t1 = sim.start_op(T1, OpKind::Contains(2));
        for _ in 0..5 {
            sim.step(&mut t1);
        }
        assert!(sim.run_op(T0, OpKind::Delete(1)));
        assert!(sim.run_op(T0, OpKind::Delete(2)));
        let done = sim.run_to_completion(&mut t1, 10_000);
        assert_eq!(done, Some(false));
        assert!(sim.sim.heap.verdict().is_smr(), "VBR rolled back safely");
        assert!(
            sim.sim.monitor.rollbacks() > 0,
            "the safe outcome required roll-backs: not easily integrated"
        );
    }

    #[test]
    fn nbr_neutralization_keeps_footprint_bounded_and_safe() {
        let mut sim = fresh(Box::new(SimNbr::new(2, 1)));
        sim.run_op(T0, OpKind::Insert(1));
        sim.run_op(T0, OpKind::Insert(2));
        let mut t1 = sim.start_op(T1, OpKind::Contains(2));
        for _ in 0..5 {
            sim.step(&mut t1);
        }
        for round in 0..50 {
            assert!(sim.run_op(T0, OpKind::Insert(100 + round)));
            assert!(sim.run_op(T0, OpKind::Delete(100 + round)));
        }
        assert!(
            sim.sim.heap.sample().retired <= 2,
            "neutralization reclaims despite the paused reader"
        );
        let done = sim.run_to_completion(&mut t1, 10_000);
        assert_eq!(done, Some(true));
        assert!(sim.sim.heap.verdict().is_smr());
        assert!(
            sim.sim.monitor.rollbacks() > 0,
            "neutralized restarts happened"
        );
    }

    #[test]
    fn step_budget_reports_incomplete() {
        let mut sim = fresh(Box::new(SimLeak));
        let mut op = sim.start_op(T0, OpKind::Insert(1));
        assert_eq!(sim.run_to_completion(&mut op, 2), None);
        assert!(!op.is_done());
        assert_eq!(sim.run_to_completion(&mut op, 1_000), Some(true));
    }
}
