//! A deliberately *blocking* list — the negative control for the
//! progress checker.
//!
//! Condition 3 of Definition 5.4 requires the integrated implementation
//! to preserve the plain implementation's progress guarantee. The
//! operational checks in [`crate::progress`] claim to detect blocking;
//! this module provides a coarse-grained locked list so the claim can
//! be validated: pause the lock holder anywhere inside its critical
//! section and the solo-running peer spins forever, which the sweep
//! reports as stuck.
//!
//! (The lock itself lives outside the simulated heap: the safety oracle
//! tracks memory reclamation, and a mutex-protected list with no
//! reclamation hazards is perfectly "safe" — it fails *progress*, not
//! safety, which is exactly the distinction Definition 5.4 draws.)

use era_core::ids::ThreadId;

use crate::heap::Local;
use crate::schemes::SimScheme;
use crate::world::Sim;

/// Interpreter state for one locked-list operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Begin,
    Acquire,
    Traverse,
    Mutate,
    Release,
    Done,
}

/// Which operation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockedOpKind {
    /// Insert a key.
    Insert(i64),
    /// Delete a key.
    Delete(i64),
}

/// One in-flight operation on the locked list.
#[derive(Debug)]
pub struct LockedOp {
    tid: ThreadId,
    kind: LockedOpKind,
    state: State,
    cursor: Local,
    result: Option<bool>,
    /// Steps taken (spinning on the lock counts — that is the point).
    pub steps: usize,
}

impl LockedOp {
    /// The result once complete.
    pub fn result(&self) -> Option<bool> {
        self.result
    }

    /// Whether the operation holds the lock right now.
    pub fn holds_lock(&self) -> bool {
        matches!(self.state, State::Traverse | State::Mutate | State::Release)
    }

    /// Whether the operation has completed.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }
}

/// A coarse-grained locked sorted list in the simulator.
#[derive(Debug)]
pub struct LockedListSim {
    /// The simulation world (reclamation is trivial here — retired
    /// nodes are reclaimed immediately, safely, because the lock
    /// serializes everything).
    pub sim: Sim,
    head: Local,
    locked_by: Option<ThreadId>,
    keys: Vec<i64>,
}

impl LockedListSim {
    /// Builds an empty locked list.
    pub fn new(scheme: Box<dyn SimScheme>) -> Self {
        let mut sim = Sim::new(scheme);
        let setup = ThreadId(0);
        let mut head = sim.heap.new_local();
        let head_node = sim.heap.alloc(setup, i64::MIN, &mut head);
        sim.scheme.on_alloc(&mut sim.heap, head_node);
        sim.heap.share(&head);
        LockedListSim {
            sim,
            head,
            locked_by: None,
            keys: Vec::new(),
        }
    }

    /// Starts an operation.
    pub fn start_op(&mut self, tid: ThreadId, kind: LockedOpKind) -> LockedOp {
        let cursor = self.sim.heap.new_local();
        LockedOp {
            tid,
            kind,
            state: State::Begin,
            cursor,
            result: None,
            steps: 0,
        }
    }

    /// One step. A blocked acquire consumes a step without progress —
    /// the behaviour the solo-completion sweep must catch.
    pub fn step(&mut self, op: &mut LockedOp) -> bool {
        if op.state == State::Done {
            return true;
        }
        op.steps += 1;
        match op.state {
            State::Done => unreachable!(),
            State::Begin => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                scheme.begin_op(heap, op.tid);
                op.state = State::Acquire;
            }
            State::Acquire => {
                if self.locked_by.is_none() {
                    self.locked_by = Some(op.tid);
                    op.state = State::Traverse;
                }
                // else: spin — stay in Acquire.
            }
            State::Traverse => {
                // Touch the head so the step is a real shared access.
                let head = self.head;
                self.sim.heap.read_global(&mut op.cursor, &head);
                op.state = State::Mutate;
            }
            State::Mutate => {
                let result = match op.kind {
                    LockedOpKind::Insert(k) => {
                        if self.keys.contains(&k) {
                            false
                        } else {
                            self.keys.push(k);
                            true
                        }
                    }
                    LockedOpKind::Delete(k) => {
                        if let Some(i) = self.keys.iter().position(|&x| x == k) {
                            self.keys.remove(i);
                            true
                        } else {
                            false
                        }
                    }
                };
                op.result = Some(result);
                op.state = State::Release;
            }
            State::Release => {
                debug_assert_eq!(self.locked_by, Some(op.tid));
                self.locked_by = None;
                let Sim { heap, scheme, .. } = &mut self.sim;
                scheme.end_op(heap, op.tid);
                op.state = State::Done;
            }
        }
        op.state == State::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::SimLeak;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn sequential_ops_work() {
        let mut sim = LockedListSim::new(Box::new(SimLeak));
        let mut op = sim.start_op(T0, LockedOpKind::Insert(1));
        while !sim.step(&mut op) {}
        assert_eq!(op.result(), Some(true));
        let mut op = sim.start_op(T0, LockedOpKind::Delete(1));
        while !sim.step(&mut op) {}
        assert_eq!(op.result(), Some(true));
    }

    #[test]
    fn progress_sweep_detects_the_blocking() {
        // The negative control: pause the lock holder inside its
        // critical section; the solo thread must NOT complete.
        let mut stuck_positions = 0usize;
        let mut free_positions = 0usize;
        for k in 0..8 {
            let mut sim = LockedListSim::new(Box::new(SimLeak));
            let mut adv = sim.start_op(T1, LockedOpKind::Insert(1));
            let mut done_early = false;
            for _ in 0..k {
                if sim.step(&mut adv) {
                    done_early = true;
                    break;
                }
            }
            if done_early {
                break;
            }
            let holder_blocked = adv.holds_lock();
            let mut solo = sim.start_op(T0, LockedOpKind::Insert(2));
            let mut completed = false;
            for _ in 0..10_000 {
                if sim.step(&mut solo) {
                    completed = true;
                    break;
                }
            }
            if completed {
                free_positions += 1;
                assert!(
                    !holder_blocked,
                    "completion while the adversary holds the lock?!"
                );
            } else {
                stuck_positions += 1;
                assert!(
                    holder_blocked,
                    "stuck without the adversary holding the lock?!"
                );
            }
        }
        assert!(
            stuck_positions > 0,
            "the sweep must find the blocking window"
        );
        assert!(
            free_positions > 0,
            "outside the critical section it is free"
        );
    }

    #[test]
    fn blocking_is_a_progress_failure_not_a_safety_failure() {
        // Even at the stuck position, the Definition 4.2 oracle is
        // silent: safety and progress are separate conditions of
        // Definition 5.4, and the checkers separate them too.
        let mut sim = LockedListSim::new(Box::new(SimLeak));
        let mut adv = sim.start_op(T1, LockedOpKind::Insert(1));
        for _ in 0..3 {
            sim.step(&mut adv);
        }
        assert!(adv.holds_lock());
        let mut solo = sim.start_op(T0, LockedOpKind::Insert(2));
        for _ in 0..1_000 {
            sim.step(&mut solo);
        }
        assert!(!solo.is_done());
        assert!(
            sim.sim.heap.verdict().is_smr(),
            "blocked, but perfectly safe"
        );
    }
}
