//! The Appendix E counterexample (Figure 2): HP/HE/IBR are not
//! applicable to Harris's linked list.
//!
//! The schedule, on the list `{15, 76}`:
//!
//! 1. `T1` invokes `insert(58)`, reads `head.next` (obtaining — and,
//!    under a protect-based scheme, *protecting* — node 15) and is
//!    halted (stage *a*);
//! 2. another thread inserts 43 (stage *b*);
//! 3. `T2` invokes `delete(43)` and `T3` invokes `delete(15)`; both
//!    pause right after **marking** their victims (stage *c*,
//!    Algorithm 1 line 48);
//! 4. `T4` invokes `delete(44)`: its search walks through the marked
//!    chain and unlinks nodes 15 and 43 with one CAS, then returns
//!    `false`;
//! 5. `T2` and `T3` resume, retire their victims; node 15 is protected
//!    by `T1` and survives, node 43 is not and is **reclaimed**;
//! 6. `T1` resumes: it reads `15.next` (stable — 15 is protected and
//!    its `next` no longer changes), "protects" node 43's address, and
//!    dereferences memory that has been reclaimed: the oracle reports
//!    the Definition 4.2 violation a real system would experience as a
//!    use-after-free.
//!
//! Run the same schedule under EBR and nothing bad happens (`T1` pins
//! the epoch, 43 is never reclaimed) — the counterexample separates the
//! protect-based schemes from the epoch-based ones, which is the point
//! of Appendix E.

use std::fmt;

use era_core::ids::ThreadId;

use crate::harris::{HarrisSim, OpKind};
use crate::schemes::SimScheme;

const T1: ThreadId = ThreadId(0);
const T2: ThreadId = ThreadId(1);
const T3: ThreadId = ThreadId(2);
const T4: ThreadId = ThreadId(3);

/// Result of replaying the Figure 2 schedule.
#[derive(Debug, Clone)]
pub struct Figure2Outcome {
    /// Scheme name.
    pub scheme: String,
    /// Definition 4.2 violations detected.
    pub violations: usize,
    /// Description of the first violation, if any.
    pub first_violation: Option<String>,
    /// Scheme-forced roll-backs observed.
    pub rollbacks: usize,
    /// Whether the retired node 43 was reclaimed during the schedule
    /// (the precondition for the unsafe access).
    pub node43_reclaimed: bool,
    /// Whether `T1`'s insert(58) eventually completed.
    pub t1_completed: bool,
}

impl Figure2Outcome {
    /// Whether the scheme survived the schedule safely (it is, at least
    /// on this execution, applicable).
    pub fn safe(&self) -> bool {
        self.violations == 0
    }
}

impl fmt::Display for Figure2Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} violations={} rollbacks={:<3} 43_reclaimed={:<5} t1_done={:<5} {}",
            self.scheme,
            self.violations,
            self.rollbacks,
            self.node43_reclaimed,
            self.t1_completed,
            self.first_violation.as_deref().unwrap_or("-"),
        )
    }
}

/// Replays the Figure 2 schedule with `scheme` integrated.
///
/// # Panics
///
/// Panics if the schedule cannot be realized (e.g. an op completes at an
/// unexpected point) — that would indicate an interpreter bug, not a
/// scheme property.
pub fn run_figure2(scheme: Box<dyn SimScheme>) -> Figure2Outcome {
    let name = scheme.name().to_string();
    let mut sim = HarrisSim::new(scheme);

    // Stage (a): the list holds {15, 76}.
    assert!(sim.run_op(T4, OpKind::Insert(15)));
    assert!(sim.run_op(T4, OpKind::Insert(76)));

    // T1 invokes insert(58), reads head.next (protecting node 15 under
    // protect-based schemes), and is halted by the scheduler.
    let mut t1 = sim.start_op(T1, OpKind::Insert(58));
    for _ in 0..3 {
        assert!(!sim.step(&mut t1));
    }

    // Stage (b): node 43 is inserted after T1's protection exists. The
    // paper's footnote 7 stresses that this ordering is crucial for the
    // HE/IBR contradiction: 43's *birth era* must postdate T1's
    // reservation. Era clocks tick on allocations, so an unrelated
    // insert advances the clock first (any busy execution does this
    // constantly).
    assert!(sim.run_op(T4, OpKind::Insert(99)));
    assert!(sim.run_op(T4, OpKind::Insert(43)));

    // Stage (c): T2 marks 43 and T3 marks 15 — both pause after the
    // marking CAS, before the unlink.
    let mut t2 = sim.start_op(T2, OpKind::Delete(43));
    for _ in 0..10_000 {
        if t2.has_marked_victim() {
            break;
        }
        assert!(
            !sim.step(&mut t2),
            "T2 must pause after marking, not finish"
        );
    }
    assert!(t2.has_marked_victim());
    let mut t3 = sim.start_op(T3, OpKind::Delete(15));
    for _ in 0..10_000 {
        if t3.has_marked_victim() {
            break;
        }
        assert!(
            !sim.step(&mut t3),
            "T3 must pause after marking, not finish"
        );
    }
    assert!(t3.has_marked_victim());

    // T4 deletes 44: the search unlinks the marked chain {15, 43} and
    // the operation returns false.
    assert!(!sim.run_op(T4, OpKind::Delete(44)));

    // T2 and T3 resume: their own unlink CASes fail (T4 already
    // unlinked), they re-search and retire their victims.
    assert_eq!(sim.run_to_completion(&mut t2, 100_000), Some(true));
    assert_eq!(sim.run_to_completion(&mut t3, 100_000), Some(true));

    // Was node 43 reclaimed? (Under protect-based schemes: yes — nobody
    // protects it. Under EBR: no — T1 pins the epoch.)
    let retired_now = sim.sim.heap.sample().retired;
    // 15 may be pinned (protected / epoch), 43 may or may not be.
    let node43_reclaimed = retired_now < 2;

    // Stage (d): T1 resumes and traverses onward from node 15.
    let mut t1_completed = false;
    for _ in 0..100_000 {
        if sim.step(&mut t1) {
            t1_completed = true;
            break;
        }
        if !sim.sim.heap.verdict().is_smr() {
            break;
        }
    }

    let verdict = sim.sim.heap.verdict();
    Figure2Outcome {
        scheme: name,
        violations: verdict.violations.len(),
        first_violation: verdict.violations.first().map(|v| v.to_string()),
        rollbacks: sim.sim.monitor.rollbacks(),
        node43_reclaimed,
        t1_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{SimEbr, SimHe, SimHp, SimIbr, SimLeak, SimNbr, SimVbr};

    #[test]
    fn hp_violates_safety_on_figure2() {
        let out = run_figure2(Box::new(SimHp::new(4, 3)));
        assert!(out.node43_reclaimed, "nothing protects 43: {out}");
        assert!(!out.safe(), "HP must hit the unsafe access: {out}");
        assert!(!out.t1_completed);
    }

    #[test]
    fn he_violates_safety_on_figure2() {
        let out = run_figure2(Box::new(SimHe::new(4, 3)));
        assert!(!out.safe(), "{out}");
    }

    #[test]
    fn ibr_violates_safety_on_figure2() {
        let out = run_figure2(Box::new(SimIbr::new(4)));
        assert!(!out.safe(), "{out}");
    }

    #[test]
    fn ebr_survives_figure2() {
        let out = run_figure2(Box::new(SimEbr::new(4)));
        assert!(out.safe(), "{out}");
        assert!(!out.node43_reclaimed, "T1's pinned epoch protects 43");
        assert!(out.t1_completed);
        assert_eq!(out.rollbacks, 0);
    }

    #[test]
    fn leak_survives_figure2() {
        let out = run_figure2(Box::new(SimLeak));
        assert!(out.safe());
        assert!(out.t1_completed);
    }

    #[test]
    fn vbr_survives_figure2_with_rollbacks() {
        let out = run_figure2(Box::new(SimVbr::new()));
        assert!(out.safe(), "{out}");
        assert!(out.node43_reclaimed, "VBR reclaims immediately");
        assert!(out.t1_completed);
        assert!(out.rollbacks > 0, "safety came from rolling back: {out}");
    }

    #[test]
    fn nbr_survives_figure2_with_rollbacks() {
        let out = run_figure2(Box::new(SimNbr::new(4, 1)));
        assert!(out.safe(), "{out}");
        assert!(out.t1_completed);
        assert!(out.rollbacks > 0, "{out}");
    }

    #[test]
    fn outcome_display() {
        let out = run_figure2(Box::new(SimEbr::new(4)));
        assert!(out.to_string().contains("EBR"));
    }
}
