//! The Theorem 6.1 construction (§6, Figure 1), executable.
//!
//! The adversarial execution: two reachable nodes `{1, 2}`; thread `T1`
//! begins `delete(3)` and is paused right after reading `head.next`
//! (stage *a*); thread `T2` runs `delete(1)` (stages *b*–*c*) and then
//! an alternating sequence `insert(n+1); delete(n)` (stages *d*–*f* and
//! onward), keeping `max_active` pinned at 4 while the retired
//! population is whatever the scheme allows; finally `T1` solo-runs.
//!
//! Exactly one of three things happens, and which one tells you the ERA
//! property the scheme sacrificed:
//!
//! * the retired population grew linearly with the churn (nothing was
//!   reclaimed under the stalled reader): **robustness** was sacrificed
//!   (EBR, Leak);
//! * the solo-running `T1` dereferenced memory of a reclaimed node and
//!   a Definition 4.2 violation fired: **wide applicability** was
//!   sacrificed (HP, HE, IBR — Appendix E);
//! * `T1` was forced to roll back to a checkpoint and re-traverse:
//!   **easy integration** was sacrificed (VBR, NBR — Definition 5.3,
//!   Condition 4).
//!
//! [`measured_matrix`] assembles the full §6 trade-off matrix from
//! these runs plus robustness scaling observations, and
//! [`era_core::EraMatrix::check_theorem`] asserts no scheme beat the
//! theorem.

use std::fmt;

use era_core::applicability::ApplicabilityClass;
use era_core::era::{EraMatrix, EraProfile};
use era_core::ids::ThreadId;
use era_core::integration::check_easy_integration;
use era_core::robustness::{classify, RobustnessObservation};
use era_obs::{Hook, Recorder};

use crate::harris::{HarrisSim, OpKind};
use crate::schemes::SimScheme;

/// Which ERA property the scheme gave up in the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sacrificed {
    /// Retired nodes accumulated without bound (Definition 5.1/5.2
    /// failure).
    Robustness,
    /// The scheme forced roll-backs (Definition 5.3 failure).
    EasyIntegration,
    /// A Definition 4.2 violation fired — the scheme is unsafe for
    /// Harris's list, hence not widely applicable (Definition 5.6).
    Applicability,
}

impl fmt::Display for Sacrificed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sacrificed::Robustness => write!(f, "robustness"),
            Sacrificed::EasyIntegration => write!(f, "easy integration"),
            Sacrificed::Applicability => write!(f, "wide applicability"),
        }
    }
}

/// Result of one Figure 1 run.
#[derive(Debug, Clone)]
pub struct TheoremOutcome {
    /// Scheme name.
    pub scheme: String,
    /// Churn rounds executed by `T2`.
    pub rounds: usize,
    /// Peak retired population during the churn.
    pub peak_retired: usize,
    /// Peak `max_active` (the paper proves this is 4).
    pub peak_max_active: usize,
    /// Definition 4.2 violations detected.
    pub violations: usize,
    /// Description of the first violation, if any.
    pub first_violation: Option<String>,
    /// Scheme-forced roll-backs observed.
    pub rollbacks: usize,
    /// Whether `T1`'s solo run completed its operation.
    pub solo_completed: bool,
    /// The ERA property the scheme sacrificed.
    pub sacrificed: Sacrificed,
}

impl fmt::Display for TheoremOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} rounds={:<6} peak_retired={:<6} max_active={} violations={} \
             rollbacks={:<5} solo_done={:<5} sacrificed={}",
            self.scheme,
            self.rounds,
            self.peak_retired,
            self.peak_max_active,
            self.violations,
            self.rollbacks,
            self.solo_completed,
            self.sacrificed
        )
    }
}

const T1: ThreadId = ThreadId(0);
const T2: ThreadId = ThreadId(1);

/// Replays the Figure 1 execution with `rounds` churn rounds.
///
/// # Panics
///
/// Panics if the world deviates from the construction's invariants
/// (e.g. an operation of `T2` fails to complete).
pub fn run_figure1(scheme: Box<dyn SimScheme>, rounds: usize) -> TheoremOutcome {
    run_figure1_inner(scheme, rounds, None)
}

/// [`run_figure1`] with an attached [`era_obs::Recorder`]: the run
/// additionally emits [`Hook::Phase`] transitions (indices decoded by
/// [`era_obs::phase_name`]), oracle checks/violations, roll-backs, and
/// footprint samples into the recorder.
pub fn run_figure1_traced(
    scheme: Box<dyn SimScheme>,
    rounds: usize,
    recorder: &Recorder,
) -> TheoremOutcome {
    run_figure1_inner(scheme, rounds, Some(recorder))
}

fn run_figure1_inner(
    scheme: Box<dyn SimScheme>,
    rounds: usize,
    recorder: Option<&Recorder>,
) -> TheoremOutcome {
    let name = scheme.name().to_string();
    let mut sim = HarrisSim::new(scheme);
    if let Some(rec) = recorder {
        sim.sim.attach_recorder(rec);
    }
    let phase = |sim: &mut HarrisSim, index: u64| {
        sim.sim.tracer.emit(Hook::Phase, index, rounds as u64);
    };

    // Stage (a): two reachable nodes besides the sentinels.
    phase(&mut sim, 0); // setup
    assert!(sim.run_op(T2, OpKind::Insert(1)));
    assert!(sim.run_op(T2, OpKind::Insert(2)));

    // T1 invokes delete(3) and executes exactly up to (and including)
    // its read of head.next — then the scheduler takes it away.
    phase(&mut sim, 1); // t1_blocks_mid_delete
    let mut t1 = sim.start_op(T1, OpKind::Delete(3));
    for _ in 0..3 {
        assert!(!sim.step(&mut t1), "T1 must still be traversing");
    }

    // Stages (b)–(c): T2 deletes node 1.
    phase(&mut sim, 2); // t2_deletes_node1
    assert!(sim.run_op(T2, OpKind::Delete(1)));
    sim.sim.sample();

    // Stages (d)+ : alternating insert(n+1); delete(n), n = 2, 3, …
    phase(&mut sim, 3); // churn
    for n in 2..2 + rounds as i64 {
        assert!(sim.run_op(T2, OpKind::Insert(n + 1)));
        assert!(sim.run_op(T2, OpKind::Delete(n)));
        sim.sim.sample();
    }
    let peak_retired = sim.sim.samples.iter().map(|s| s.retired).max().unwrap_or(0);
    let peak_max_active = sim
        .sim
        .samples
        .iter()
        .map(|s| s.max_active)
        .max()
        .unwrap_or(0);

    // Solo run of T1 (it is now the only effective thread).
    phase(&mut sim, 4); // solo_run
    let budget = rounds * 64 + 10_000;
    let mut solo_completed = false;
    for _ in 0..budget {
        if sim.step(&mut t1) {
            solo_completed = true;
            break;
        }
        if !sim.sim.heap.verdict().is_smr() {
            break; // the oracle caught a Definition 4.2 violation
        }
    }

    phase(&mut sim, 5); // verdict
    let verdict = sim.sim.heap.verdict();
    let violations = verdict.violations.len();
    let first_violation = verdict.violations.first().map(|v| v.to_string());
    let rollbacks = sim.sim.monitor.rollbacks();

    let sacrificed = if violations > 0 {
        Sacrificed::Applicability
    } else if rollbacks > 0 {
        Sacrificed::EasyIntegration
    } else {
        Sacrificed::Robustness
    };

    TheoremOutcome {
        scheme: name,
        rounds,
        peak_retired,
        peak_max_active,
        violations,
        first_violation,
        rollbacks,
        solo_completed,
        sacrificed,
    }
}

/// Runs Figure 1 at several scales and returns robustness observations
/// for [`era_core::robustness::classify`].
pub fn figure1_observations(
    factory: impl Fn() -> Box<dyn SimScheme>,
    scales: &[usize],
) -> Vec<RobustnessObservation> {
    scales
        .iter()
        .map(|&rounds| {
            let out = run_figure1(factory(), rounds);
            RobustnessObservation {
                scale: rounds as u64,
                threads: 2,
                peak_retired: out.peak_retired,
                peak_max_active: out.peak_max_active,
            }
        })
        .collect()
}

/// One measured row of the §6 matrix.
fn profile(
    name: &'static str,
    factory: impl Fn() -> Box<dyn SimScheme>,
    rounds: usize,
) -> EraProfile {
    let outcome = run_figure1(factory(), rounds);
    let static_easy = check_easy_integration(&factory().interface()).is_easy();
    let easy = static_easy && outcome.rollbacks == 0;
    // Robustness is judged from the churn phase across scales (for the
    // unsafe schemes the churn still runs fully; only T1's solo run is
    // cut short by the violation).
    let obs = figure1_observations(&factory, &[rounds / 4, rounds / 2, rounds]);
    let robustness = classify(&obs).verdict;
    let applicability = if outcome.violations == 0 {
        ApplicabilityClass::Wide
    } else {
        ApplicabilityClass::Limited
    };
    let notes = match outcome.sacrificed {
        Sacrificed::Robustness => format!(
            "retired grew to {} with max_active {}",
            outcome.peak_retired, outcome.peak_max_active
        ),
        Sacrificed::EasyIntegration => {
            format!("{} roll-backs kept it safe and bounded", outcome.rollbacks)
        }
        Sacrificed::Applicability => outcome
            .first_violation
            .clone()
            .unwrap_or_else(|| "unsafe access".to_string()),
    };
    EraProfile::new(name, easy, robustness, applicability, notes)
}

/// Builds the measured §6 trade-off matrix by replaying Figure 1 with
/// every simulated scheme at `rounds` churn rounds (use ≥ 64 so the
/// robustness classifier has a spread of scales).
pub fn measured_matrix(rounds: usize) -> EraMatrix {
    let threads = 2;
    [
        profile(
            "EBR",
            move || Box::new(crate::schemes::SimEbr::new(threads)) as _,
            rounds,
        ),
        profile(
            "HP",
            move || Box::new(crate::schemes::SimHp::new(threads, 3)) as _,
            rounds,
        ),
        profile(
            "HE",
            move || Box::new(crate::schemes::SimHe::new(threads, 3)) as _,
            rounds,
        ),
        profile(
            "IBR",
            move || Box::new(crate::schemes::SimIbr::new(threads)) as _,
            rounds,
        ),
        profile(
            "VBR",
            move || Box::new(crate::schemes::SimVbr::new()) as _,
            rounds,
        ),
        profile(
            "NBR",
            move || Box::new(crate::schemes::SimNbr::new(threads, 1)) as _,
            rounds,
        ),
        profile(
            "QSBR",
            move || Box::new(crate::schemes::SimQsbr::new(threads)) as _,
            rounds,
        ),
        profile(
            "Leak",
            move || Box::new(crate::schemes::SimLeak) as _,
            rounds,
        ),
    ]
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{SimEbr, SimHe, SimHp, SimIbr, SimLeak, SimNbr, SimVbr};
    use era_core::robustness::RobustnessVerdict;

    #[test]
    fn max_active_is_four_as_the_paper_claims() {
        let out = run_figure1(Box::new(SimLeak), 100);
        assert_eq!(out.peak_max_active, 4, "head, n, n+1, tail");
    }

    #[test]
    fn ebr_sacrifices_robustness() {
        let out = run_figure1(Box::new(SimEbr::new(2)), 100);
        assert_eq!(out.sacrificed, Sacrificed::Robustness);
        assert!(out.peak_retired >= 100, "everything piles up: {out}");
        assert!(out.solo_completed, "EBR stays safe: T1 finishes");
        assert_eq!(out.violations, 0);
    }

    #[test]
    fn leak_sacrifices_robustness() {
        let out = run_figure1(Box::new(SimLeak), 100);
        assert_eq!(out.sacrificed, Sacrificed::Robustness);
        assert!(out.peak_retired >= 100);
    }

    #[test]
    fn hp_sacrifices_applicability() {
        let out = run_figure1(Box::new(SimHp::new(2, 3)), 100);
        assert_eq!(out.sacrificed, Sacrificed::Applicability, "{out}");
        assert!(out.violations > 0);
        assert!(
            out.peak_retired <= 16,
            "HP keeps the footprint bounded: {}",
            out.peak_retired
        );
        assert!(!out.solo_completed, "stopped at the unsafe access");
    }

    #[test]
    fn he_and_ibr_sacrifice_applicability() {
        for (name, out) in [
            ("HE", run_figure1(Box::new(SimHe::new(2, 3)), 100)),
            ("IBR", run_figure1(Box::new(SimIbr::new(2)), 100)),
        ] {
            assert_eq!(out.sacrificed, Sacrificed::Applicability, "{name}: {out}");
            assert!(out.violations > 0, "{name}");
        }
    }

    #[test]
    fn vbr_sacrifices_easy_integration() {
        let out = run_figure1(Box::new(SimVbr::new()), 100);
        assert_eq!(out.sacrificed, Sacrificed::EasyIntegration, "{out}");
        assert!(out.rollbacks > 0);
        assert_eq!(out.violations, 0, "VBR never violates Def 4.2");
        assert_eq!(out.peak_retired, 0, "retire is reclaim");
        assert!(out.solo_completed, "T1 finishes after rolling back");
    }

    #[test]
    fn nbr_sacrifices_easy_integration() {
        let out = run_figure1(Box::new(SimNbr::new(2, 1)), 100);
        assert_eq!(out.sacrificed, Sacrificed::EasyIntegration, "{out}");
        assert!(out.rollbacks > 0);
        assert_eq!(out.violations, 0);
        assert!(out.peak_retired <= 4, "neutralization keeps it bounded");
        assert!(out.solo_completed);
    }

    #[test]
    fn robustness_observations_classify_ebr_not_robust() {
        let obs = figure1_observations(|| Box::new(SimEbr::new(2)), &[64, 256, 1024]);
        let report = classify(&obs);
        assert_eq!(report.verdict, RobustnessVerdict::NotRobust, "{report}");
    }

    #[test]
    fn robustness_observations_classify_nbr_robust() {
        let obs = figure1_observations(|| Box::new(SimNbr::new(2, 1)), &[64, 256, 1024]);
        let report = classify(&obs);
        assert_eq!(report.verdict, RobustnessVerdict::Robust, "{report}");
    }

    #[test]
    fn measured_matrix_respects_the_theorem() {
        let m = measured_matrix(256);
        println!("{m}");
        m.check_theorem().expect("no scheme may beat Theorem 6.1");
        assert_eq!(m.len(), 8);
        // Every scheme achieved at least... its two expected properties:
        for row in m.rows() {
            assert!(
                row.property_count() <= 2,
                "{}: {} properties",
                row.scheme,
                row.property_count()
            );
        }
    }

    #[test]
    fn traced_figure1_logs_every_scheme() {
        if !cfg!(feature = "trace") {
            return; // tracing compiled out: nothing to drain
        }
        for scheme in crate::schemes::all_schemes(2) {
            let name = scheme.name();
            // A ring big enough that nothing drops: the counts below
            // are exact.
            let rec = era_obs::Recorder::with_ring_capacity(4, 1 << 16);
            let out = run_figure1_traced(scheme, 32, &rec);
            let log = rec.drain();
            assert!(!log.events.is_empty(), "{name}: traced run must log");
            assert!(log.is_time_ordered(), "{name}");
            assert_eq!(log.dropped, 0, "{name}: ring sized for the run");
            // Every phase transition of the construction is on record.
            let phases: Vec<u64> = log.with_hook(Hook::Phase).map(|e| e.a).collect();
            assert_eq!(phases, vec![0, 1, 2, 3, 4, 5], "{name}");
            // Footprint samples flowed through (churn samples once per
            // round plus the stage-(c) sample).
            assert_eq!(log.with_hook(Hook::Sample).count(), 33, "{name}");
            // Oracle checks ran; violations in the trace match the
            // outcome's count (the ring is large enough not to drop).
            assert!(log.with_hook(Hook::OracleCheck).count() > 0, "{name}");
            assert_eq!(
                log.with_hook(Hook::OracleViolation).count(),
                out.violations,
                "{name}"
            );
            // Schemes that sacrifice easy integration logged roll-backs.
            assert_eq!(
                log.with_hook(Hook::Rollback).count() > 0,
                out.rollbacks > 0,
                "{name}"
            );
        }
    }

    #[test]
    fn outcome_display_is_informative() {
        let out = run_figure1(Box::new(SimEbr::new(2)), 16);
        let s = out.to_string();
        assert!(s.contains("EBR"));
        assert!(s.contains("sacrificed=robustness"));
    }
}
