//! Appendix C / Appendix D: Harris's list is access-aware.
//!
//! The Harris interpreter emits the Appendix D phase division (the
//! traversal is a read-only phase; everything from the window decision
//! to the last CAS is a write phase; a retry opens a fresh read-only
//! phase) into `era-core`'s [`AccessAwareChecker`]. This module drives
//! workloads through the interpreter with the checker enabled and
//! reports whether the discipline held — reproducing the Appendix D
//! claim mechanically rather than by hand-proof.
//!
//! [`AccessAwareChecker`]: era_core::applicability::AccessAwareChecker

use era_core::applicability::PhaseViolation;
use era_core::ids::ThreadId;

use crate::harris::{HarrisSim, OpKind};
use crate::schemes::SimScheme;

/// Runs `ops` sequentially (one thread) with phase checking enabled and
/// returns the violations (empty ⇒ the run respected Appendix C).
pub fn check_sequential(scheme: Box<dyn SimScheme>, ops: &[OpKind]) -> Vec<PhaseViolation> {
    let mut sim = HarrisSim::new(scheme);
    sim.sim.enable_phase_check();
    let tid = ThreadId(0);
    for &op in ops {
        let _ = sim.run_op(tid, op);
    }
    sim.sim
        .phases
        .take()
        .map(|c| c.violations().to_vec())
        .unwrap_or_default()
}

/// Runs a deterministic round-robin interleaving of per-thread
/// operation scripts with phase checking enabled.
pub fn check_interleaved(
    scheme: Box<dyn SimScheme>,
    scripts: &[Vec<OpKind>],
) -> Vec<PhaseViolation> {
    let mut sim = HarrisSim::new(scheme);
    sim.sim.enable_phase_check();
    let mut queues: Vec<std::collections::VecDeque<OpKind>> = scripts
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect();
    let mut current: Vec<Option<crate::harris::HarrisOp>> =
        (0..scripts.len()).map(|_| None).collect();
    let mut remaining = scripts.iter().map(Vec::len).sum::<usize>();
    let mut guard = 0usize;
    while remaining > 0 {
        guard += 1;
        assert!(guard < 10_000_000, "interleaving did not terminate");
        for (t, slot) in current.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(kind) = queues[t].pop_front() {
                    *slot = Some(sim.start_op(ThreadId(t), kind));
                }
            }
            if let Some(op) = slot {
                if sim.step(op) {
                    *slot = None;
                    remaining -= 1;
                }
            }
        }
    }
    sim.sim
        .phases
        .take()
        .map(|c| c.violations().to_vec())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{SimEbr, SimLeak, SimNbr, SimVbr};

    fn workload() -> Vec<OpKind> {
        let mut ops = Vec::new();
        for k in [5, 3, 9, 1, 7] {
            ops.push(OpKind::Insert(k));
        }
        ops.push(OpKind::Insert(5)); // duplicate path (retire local node)
        for k in [3, 9] {
            ops.push(OpKind::Delete(k));
        }
        ops.push(OpKind::Delete(42)); // miss path
        for k in [1, 5, 8] {
            ops.push(OpKind::Contains(k));
        }
        ops
    }

    #[test]
    fn harris_is_access_aware_sequentially() {
        let violations = check_sequential(Box::new(SimLeak), &workload());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn harris_is_access_aware_under_interleaving() {
        // Contended keys force marked-chain traversals, chain unlinks,
        // failed CASes and retries — the paths Appendix D argues about.
        let scripts = vec![
            (0..30).map(|i| OpKind::Insert(i % 6)).collect::<Vec<_>>(),
            (0..30).map(|i| OpKind::Delete(i % 6)).collect(),
            (0..30).map(|i| OpKind::Contains(i % 6)).collect(),
        ];
        let violations = check_interleaved(Box::new(SimEbr::new(3)), &scripts);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn phase_discipline_holds_even_with_rollback_schemes() {
        // VBR/NBR roll-backs re-enter read-only phases; the division
        // must still alternate correctly.
        for scheme in [
            Box::new(SimVbr::new()) as Box<dyn SimScheme>,
            Box::new(SimNbr::new(3, 1)) as Box<dyn SimScheme>,
        ] {
            let scripts = vec![
                (0..20).map(|i| OpKind::Insert(i % 4)).collect::<Vec<_>>(),
                (0..20).map(|i| OpKind::Delete(i % 4)).collect(),
                (0..20).map(|i| OpKind::Contains(i % 4)).collect(),
            ];
            let violations = check_interleaved(scheme, &scripts);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }
}
