//! The simulated shared heap.
//!
//! Memory is modelled at the granularity the paper's proofs need:
//!
//! * nodes are **logical entities** — an address plus an incarnation
//!   ([`era_core::ids::NodeId`]); reallocating an address creates a new
//!   node (§4.1);
//! * stored link words carry only the *bits* real memory would hold — an
//!   address and a mark ([`Word`]) — so ABA and stale-pointer phenomena
//!   reproduce faithfully;
//! * every pointer variable (thread-local or node field) is tracked for
//!   Definition 4.1 validity, and every access streams through the
//!   embedded [`SafetyChecker`], so an unsafe access or a Definition 4.2
//!   violation is *detected*, not crashed on;
//! * reclaimed memory either stays in **program space** (a free list the
//!   allocator reuses, content retained — stale reads return old bits)
//!   or moves to **system space** (any dereference is a Condition 1
//!   violation).

use std::collections::{HashMap, HashSet};

use era_core::ids::{NodeId, ThreadId};
use era_core::lifecycle::{LifecycleError, LifecycleTracker};
use era_core::robustness::FootprintSample;
use era_core::safety::{DerefKind, MemEvent, PtrSource, SafetyChecker, SafetyVerdict, Violation};
use era_core::validity::{Validity, VarId};
use era_obs::{Hook, ThreadTracer};

/// The raw bits a link word holds: an address and a Harris mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word {
    /// Target address.
    pub addr: usize,
    /// Deletion mark.
    pub mark: bool,
}

impl Word {
    /// The same address without the mark.
    pub fn unmarked(self) -> Word {
        Word {
            addr: self.addr,
            mark: false,
        }
    }

    /// The same address with the mark set.
    pub fn marked(self) -> Word {
        Word {
            addr: self.addr,
            mark: true,
        }
    }
}

/// A thread-local pointer variable: its identity for validity tracking
/// plus the bits it currently holds.
#[derive(Debug, Clone, Copy)]
pub struct Local {
    /// Identity in the validity tracker.
    pub var: VarId,
    /// Current content (`None` = null).
    pub word: Option<Word>,
}

impl Local {
    /// The held word.
    ///
    /// # Panics
    ///
    /// Panics when the local is null — simulated programs must check
    /// before dereferencing.
    pub fn word(&self) -> Word {
        self.word.expect("dereferencing a null local")
    }
}

#[derive(Debug)]
struct Cell {
    node: NodeId,
    key: i64,
    next: Option<Word>,
    /// Validity identity of the `next` field for this incarnation.
    next_var: VarId,
}

/// The simulated heap: allocator, lifecycle, validity, safety oracle.
#[derive(Debug, Default)]
pub struct SimHeap {
    lifecycle: LifecycleTracker,
    checker: SafetyChecker,
    cells: HashMap<usize, Cell>,
    free: Vec<usize>,
    system_space: HashSet<usize>,
    next_addr: usize,
    next_var: u64,
    tracer: ThreadTracer,
    /// Violations already reported through the tracer.
    traced_violations: usize,
}

impl SimHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands the heap a tracer: every oracle-checked dereference then
    /// emits a [`Hook::OracleCheck`] event, and each *new* Definition
    /// 4.2 violation a [`Hook::OracleViolation`] event, attributed to
    /// the accessing thread.
    pub fn set_tracer(&mut self, tracer: ThreadTracer) {
        self.tracer = tracer;
        self.traced_violations = self.checker.verdict().violations.len();
    }

    /// Emits the oracle events for a checked access at `addr` by `tid`.
    fn trace_check(&mut self, tid: ThreadId, addr: usize) {
        if !self.tracer.is_enabled() {
            return;
        }
        let violations = self.checker.verdict().violations.len();
        self.tracer.emit_for(
            tid.0 as u16,
            Hook::OracleCheck,
            addr as u64,
            violations as u64,
        );
        self.sweep_violations();
    }

    /// Emits one [`Hook::OracleViolation`] per Definition 4.2 violation
    /// not yet reported, attributed to the thread recorded in the
    /// violation itself (violations can arise from any checked event —
    /// a dereference, a value use, or a tainted-pointer copy).
    fn sweep_violations(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let violations = &self.checker.verdict().violations;
        if self.traced_violations >= violations.len() {
            return;
        }
        let fresh: Vec<(u16, u64)> = violations[self.traced_violations..]
            .iter()
            .map(|v| match v {
                Violation::SystemSpaceAccess { access }
                | Violation::MutatedReclaimed { access } => (access.thread.0 as u16, access.ptr.0),
                Violation::TaintedValueUsed { used_by, var, .. } => (used_by.0 as u16, var.0),
            })
            .collect();
        for (thread, subject) in fresh {
            self.traced_violations += 1;
            self.tracer.emit_for(
                thread,
                Hook::OracleViolation,
                subject,
                self.traced_violations as u64,
            );
        }
    }

    /// Mints a fresh pointer-variable identity (for thread locals).
    pub fn new_var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    /// Creates a fresh null local.
    pub fn new_local(&mut self) -> Local {
        Local {
            var: self.new_var(),
            word: None,
        }
    }

    /// The lifecycle tracker (counters, states).
    pub fn lifecycle(&self) -> &LifecycleTracker {
        &self.lifecycle
    }

    /// The safety verdict so far.
    pub fn verdict(&self) -> &SafetyVerdict {
        self.checker.verdict()
    }

    /// Current footprint sample (`active`, `max_active`, `retired`).
    pub fn sample(&self) -> FootprintSample {
        self.lifecycle.observe()
    }

    /// Definition 4.1 validity of a local.
    pub fn validity(&self, local: &Local) -> Validity {
        self.checker.validity().validity(local.var)
    }

    /// The logical node a local references (even when invalid).
    pub fn target(&self, local: &Local) -> Option<NodeId> {
        self.checker.validity().target(local.var)
    }

    /// The node currently *live* at `addr`, if any.
    pub fn live_node_at(&self, addr: usize) -> Option<NodeId> {
        let cell = self.cells.get(&addr)?;
        self.lifecycle
            .state(cell.node)
            .is_active()
            .then_some(cell.node)
    }

    /// Allocates a node with `key` into `dst` (reusing program-space
    /// memory first). The node starts `local` to `tid` with a null
    /// `next`.
    pub fn alloc(&mut self, tid: ThreadId, key: i64, dst: &mut Local) -> NodeId {
        let addr = self.free.pop().unwrap_or_else(|| {
            let a = self.next_addr;
            self.next_addr += 1;
            a
        });
        let node = self
            .lifecycle
            .alloc(addr, tid)
            .expect("address came from the free pool");
        let next_var = self.new_var();
        self.checker.record(MemEvent::PtrUpdate {
            var: next_var,
            source: PtrSource::Null,
        });
        self.cells.insert(
            addr,
            Cell {
                node,
                key,
                next: None,
                next_var,
            },
        );
        self.checker.record(MemEvent::PtrUpdate {
            var: dst.var,
            source: PtrSource::Alloc(node),
        });
        dst.word = Some(Word { addr, mark: false });
        node
    }

    /// Publishes the node referenced by `src` (local → shared).
    ///
    /// # Panics
    ///
    /// Panics on a life-cycle violation (sharing a non-local node).
    pub fn share(&mut self, src: &Local) {
        let node = self.target(src).expect("sharing through a null pointer");
        self.lifecycle.share(node).expect("share of a local node");
    }

    /// Retires a node.
    ///
    /// # Errors
    ///
    /// Life-cycle errors (double retire, stale incarnation) propagate —
    /// the simulated schemes rely on the plain implementation issuing
    /// correct `retire()` calls (§4.1).
    pub fn retire(&mut self, node: NodeId) -> Result<(), LifecycleError> {
        self.lifecycle.retire(node)
    }

    /// Reclaims a retired node. With `to_system = false` the memory
    /// joins the program-space free pool (content retained, address
    /// reusable); with `to_system = true` it leaves program space.
    ///
    /// # Errors
    ///
    /// Life-cycle errors propagate.
    pub fn reclaim(&mut self, node: NodeId, to_system: bool) -> Result<(), LifecycleError> {
        self.lifecycle.reclaim(node)?;
        self.checker
            .record(MemEvent::Unallocate { node, to_system });
        if to_system {
            self.system_space.insert(node.addr);
        } else {
            self.free.push(node.addr);
        }
        Ok(())
    }

    /// Copies one local into another (a plain pointer assignment).
    pub fn assign(&mut self, dst: &mut Local, src: &Local) {
        self.checker.record(MemEvent::PtrUpdate {
            var: dst.var,
            source: PtrSource::Copy(src.var),
        });
        self.sweep_violations();
        dst.word = src.word;
    }

    /// Like [`assign`](Self::assign) but strips/sets the mark bit on
    /// the copied bits (a local operation on the value).
    pub fn assign_with_mark(&mut self, dst: &mut Local, src: &Local, mark: bool) {
        self.checker.record(MemEvent::PtrUpdate {
            var: dst.var,
            source: PtrSource::Copy(src.var),
        });
        self.sweep_violations();
        dst.word = src.word.map(|w| Word { addr: w.addr, mark });
    }

    /// Reads a global entry-point variable (e.g. the list head) into a
    /// local. Entry points are immortal, so the result is always valid.
    pub fn read_global(&mut self, dst: &mut Local, global: &Local) {
        self.checker.record(MemEvent::PtrUpdate {
            var: dst.var,
            source: PtrSource::Copy(global.var),
        });
        self.sweep_violations();
        dst.word = global.word;
    }

    /// Dereferences `src` to read the node's `next` field into `dst`.
    ///
    /// Emits the oracle events; returns the bits actually found in
    /// memory (stale bits if the node was reclaimed into program space,
    /// the *new* node's bits if the address was reused, `None` from
    /// system space).
    pub fn read_next(&mut self, tid: ThreadId, src: &Local, dst: &mut Local) -> Option<Word> {
        let addr = src.word().addr;
        let in_program_space = !self.system_space.contains(&addr);
        let was_valid = self.validity(src) == Validity::Valid;
        self.checker.record(MemEvent::Deref {
            thread: tid,
            ptr: src.var,
            kind: DerefKind::ReadPtrInto { dst: dst.var },
            in_program_space,
        });
        self.trace_check(tid, addr);
        if !in_program_space {
            dst.word = None;
            return None;
        }
        let (next, next_var) = {
            let cell = self.cells.get(&addr).expect("program-space cell exists");
            (cell.next, cell.next_var)
        };
        if was_valid {
            // A safe read: dst inherits the field's provenance.
            self.checker.record(MemEvent::PtrUpdate {
                var: dst.var,
                source: PtrSource::Copy(next_var),
            });
        }
        // (On an unsafe read the checker has already tainted dst and
        // marked it an invalid reference.)
        self.sweep_violations();
        dst.word = next;
        next
    }

    /// Dereferences `src` to read the node's immutable key into the
    /// scratch value variable `scratch`.
    ///
    /// Returns the key bits found in memory.
    pub fn read_key(&mut self, tid: ThreadId, src: &Local, scratch: VarId) -> i64 {
        let addr = src.word().addr;
        let in_program_space = !self.system_space.contains(&addr);
        self.checker.record(MemEvent::Deref {
            thread: tid,
            ptr: src.var,
            kind: DerefKind::ReadValInto { dst: scratch },
            in_program_space,
        });
        self.trace_check(tid, addr);
        if !in_program_space {
            return 0; // poisoned; the violation is already recorded
        }
        self.cells
            .get(&addr)
            .expect("program-space cell exists")
            .key
    }

    /// Initializing store of the `next` field of the (still local) node
    /// referenced by `node_ptr`: `node.next := src` (with `mark`).
    pub fn write_next(&mut self, tid: ThreadId, node_ptr: &Local, src: &Local, mark: bool) {
        let addr = node_ptr.word().addr;
        let in_program_space = !self.system_space.contains(&addr);
        self.checker.record(MemEvent::Deref {
            thread: tid,
            ptr: node_ptr.var,
            kind: DerefKind::Write,
            in_program_space,
        });
        self.trace_check(tid, addr);
        if !in_program_space {
            return;
        }
        let src_var = src.var;
        let word = src.word.map(|w| Word { addr: w.addr, mark });
        let cell = self
            .cells
            .get_mut(&addr)
            .expect("program-space cell exists");
        cell.next = word;
        let next_var = cell.next_var;
        self.checker.record(MemEvent::PtrUpdate {
            var: next_var,
            source: PtrSource::Copy(src_var),
        });
        self.sweep_violations();
    }

    /// CAS on the `next` field of the node referenced by `target`:
    /// succeeds iff the stored bits equal `expected` bit-for-bit (the
    /// hardware comparison — incarnations are invisible to it, so ABA is
    /// possible, exactly as on real memory).
    ///
    /// `new_src` provides both the new bits (with `new_mark`) and the
    /// provenance for the field's validity tracking.
    pub fn cas_next(
        &mut self,
        tid: ThreadId,
        target: &Local,
        expected: Option<Word>,
        new_src: &Local,
        new_mark: bool,
    ) -> bool {
        let addr = target.word().addr;
        let in_program_space = !self.system_space.contains(&addr);
        let current = if in_program_space {
            self.cells
                .get(&addr)
                .expect("program-space cell exists")
                .next
        } else {
            None
        };
        let success = in_program_space && current == expected;
        self.checker.record(MemEvent::Deref {
            thread: tid,
            ptr: target.var,
            kind: if success {
                DerefKind::Write
            } else {
                DerefKind::FailedWrite
            },
            in_program_space,
        });
        self.trace_check(tid, addr);
        if success {
            let src_var = new_src.var;
            let word = new_src.word.map(|w| Word {
                addr: w.addr,
                mark: new_mark,
            });
            let cell = self
                .cells
                .get_mut(&addr)
                .expect("program-space cell exists");
            cell.next = word;
            let next_var = cell.next_var;
            self.checker.record(MemEvent::PtrUpdate {
                var: next_var,
                source: PtrSource::Copy(src_var),
            });
            self.sweep_violations();
        }
        success
    }

    /// Records that the program *used* the value held by a local (a
    /// branch on the mark bit, a key comparison, …) — the trigger for
    /// Condition 3 of Definition 4.2.
    pub fn use_var(&mut self, tid: ThreadId, var: VarId) {
        self.checker.record(MemEvent::UseVar { thread: tid, var });
        self.trace_check(tid, var.0 as usize);
    }

    /// Records an overwrite of a (non-pointer) scratch variable.
    pub fn overwrite_var(&mut self, var: VarId) {
        self.checker.record(MemEvent::OverwriteVar { var });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);

    fn setup() -> (SimHeap, Local, NodeId) {
        let mut heap = SimHeap::new();
        let mut p = heap.new_local();
        let node = heap.alloc(T0, 5, &mut p);
        (heap, p, node)
    }

    #[test]
    fn alloc_produces_valid_pointer() {
        let (heap, p, node) = setup();
        assert_eq!(heap.validity(&p), Validity::Valid);
        assert_eq!(heap.target(&p), Some(node));
        assert_eq!(heap.sample().active, 1);
    }

    #[test]
    fn read_next_through_valid_pointer_is_safe() {
        let (mut heap, mut p, _) = setup();
        let mut q = heap.new_local();
        let mut r = heap.new_local();
        heap.alloc(T0, 6, &mut q);
        heap.write_next(T0, &p, &q, false);
        let w = heap.read_next(T0, &p, &mut r);
        assert_eq!(w, q.word);
        assert_eq!(heap.validity(&r), Validity::Valid);
        assert!(heap.verdict().all_accesses_safe());
        let _ = &mut p;
    }

    #[test]
    fn reclaimed_program_space_read_is_unsafe_but_tolerated() {
        let (mut heap, p, node) = setup();
        heap.share(&p);
        heap.retire(node).unwrap();
        heap.reclaim(node, false).unwrap();
        let mut q = heap.new_local();
        let _ = heap.read_next(T0, &p, &mut q);
        let v = heap.verdict();
        assert_eq!(v.unsafe_accesses.len(), 1);
        assert!(v.is_smr(), "value not used yet");
        // Branching on the tainted value breaks Condition 3.
        heap.use_var(T0, q.var);
        assert!(!heap.verdict().is_smr());
    }

    #[test]
    fn system_space_read_is_a_condition1_violation() {
        let (mut heap, p, node) = setup();
        heap.share(&p);
        heap.retire(node).unwrap();
        heap.reclaim(node, true).unwrap();
        let mut q = heap.new_local();
        let w = heap.read_next(T0, &p, &mut q);
        assert_eq!(w, None);
        assert!(!heap.verdict().is_smr());
    }

    #[test]
    fn reuse_returns_new_nodes_bits_aba_style() {
        let (mut heap, p, node) = setup();
        heap.share(&p);
        heap.retire(node).unwrap();
        heap.reclaim(node, false).unwrap();
        // Reuse the address for a different node.
        let mut fresh = heap.new_local();
        let node2 = heap.alloc(T0, 99, &mut fresh);
        assert_eq!(node2.addr, node.addr);
        assert_eq!(node2.incarnation, node.incarnation + 1);
        // The stale pointer reads the *new* node's content.
        let mut q = heap.new_local();
        heap.write_next(T0, &fresh, &fresh, true);
        let w = heap.read_next(T0, &p, &mut q);
        assert_eq!(w.map(|w| w.addr), Some(node2.addr));
        assert_eq!(heap.verdict().unsafe_accesses.len(), 1);
    }

    #[test]
    fn cas_compares_bits_not_incarnations() {
        // Genuine ABA: a cell still holds the bits of a dead node; a CAS
        // expecting those bits succeeds.
        let mut heap = SimHeap::new();
        let mut holder = heap.new_local();
        let _holder_node = heap.alloc(T0, 0, &mut holder);
        let mut a = heap.new_local();
        let na = heap.alloc(T0, 1, &mut a);
        heap.write_next(T0, &holder, &a, false);
        heap.share(&holder);
        heap.share(&a);
        heap.retire(na).unwrap();
        heap.reclaim(na, false).unwrap();
        // holder.next still holds A's bits; CAS with those bits succeeds.
        let null = heap.new_local();
        let ok = heap.cas_next(
            T0,
            &holder,
            Some(Word {
                addr: na.addr,
                mark: false,
            }),
            &null,
            false,
        );
        assert!(ok, "bit-level CAS must be ABA-prone");
    }

    #[test]
    fn failed_cas_on_reclaimed_node_is_not_a_violation() {
        let (mut heap, p, node) = setup();
        heap.share(&p);
        heap.retire(node).unwrap();
        heap.reclaim(node, false).unwrap();
        let null = heap.new_local();
        let failed = heap.cas_next(
            T0,
            &p,
            Some(Word {
                addr: 4242,
                mark: false,
            }),
            &null,
            false,
        );
        assert!(!failed);
        assert!(heap.verdict().is_smr(), "failed CAS is Condition-2 safe");
        // A *successful* write through the invalid pointer would violate.
        let current = {
            // read the stale bits through an unsafe read (not used)
            let mut tmp = heap.new_local();
            heap.read_next(T0, &p, &mut tmp)
        };
        let ok = heap.cas_next(T0, &p, current, &null, false);
        assert!(ok);
        assert!(
            !heap.verdict().is_smr(),
            "mutating reclaimed memory violates"
        );
    }

    #[test]
    fn footprint_counters_flow_through() {
        let (mut heap, p, node) = setup();
        heap.share(&p);
        assert_eq!(
            heap.sample(),
            FootprintSample {
                active: 1,
                max_active: 1,
                retired: 0
            }
        );
        heap.retire(node).unwrap();
        assert_eq!(heap.sample().retired, 1);
        heap.reclaim(node, false).unwrap();
        assert_eq!(heap.sample().retired, 0);
    }

    #[test]
    fn key_reads_taint_when_unsafe() {
        let (mut heap, p, node) = setup();
        let scratch = heap.new_var();
        assert_eq!(heap.read_key(T0, &p, scratch), 5);
        heap.share(&p);
        heap.retire(node).unwrap();
        heap.reclaim(node, false).unwrap();
        let _ = heap.read_key(T0, &p, scratch);
        assert!(heap.verdict().is_smr());
        heap.use_var(T0, scratch);
        assert!(!heap.verdict().is_smr());
    }
}
