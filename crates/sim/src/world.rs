//! The simulation world: heap + scheme + monitors + history.

use era_core::applicability::{AccessAwareChecker, PhaseEvent};
use era_core::history::{History, Op, Ret};
use era_core::ids::{ObjectId, ThreadId};
use era_core::integration::IntegrationMonitor;
use era_core::robustness::FootprintSample;
use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};

use crate::heap::SimHeap;
use crate::schemes::SimScheme;

/// Trace thread slot used for simulator-level (not per-thread) events.
pub const SIM_SERVICE_THREAD: u16 = u16::MAX;

/// The object id under which set operations are recorded in the history.
pub const SET_OBJECT: ObjectId = ObjectId(1);

/// Everything one simulated execution owns.
#[derive(Debug)]
pub struct Sim {
    /// The shared heap with the safety oracle.
    pub heap: SimHeap,
    /// The integrated reclamation scheme.
    pub scheme: Box<dyn SimScheme>,
    /// Roll-back / foreign-field monitor (Definition 5.3 dynamic side).
    pub monitor: IntegrationMonitor,
    /// History of set-operation invocations/responses (§3).
    pub history: History,
    /// Footprint samples taken via [`Sim::sample`].
    pub samples: Vec<FootprintSample>,
    /// Optional Appendix C access-aware phase checker (enabled via
    /// [`Sim::enable_phase_check`]).
    pub phases: Option<AccessAwareChecker>,
    /// Event tracer for simulator-level events (disabled until
    /// [`Sim::attach_recorder`]). Per-heap oracle events have their own
    /// tracer inside [`SimHeap`].
    pub tracer: ThreadTracer,
}

impl Sim {
    /// Creates a world around `scheme`.
    pub fn new(scheme: Box<dyn SimScheme>) -> Self {
        Sim {
            heap: SimHeap::new(),
            scheme,
            monitor: IntegrationMonitor::new(),
            history: History::new(),
            samples: Vec::new(),
            phases: None,
            tracer: ThreadTracer::disabled(),
        }
    }

    /// Attaches an [`era_obs::Recorder`]: from now on the world emits
    /// footprint [`Hook::Sample`]s, the heap emits oracle events, and
    /// the interpreter emits roll-backs, all attributed to the
    /// integrated scheme (matched by name).
    pub fn attach_recorder(&mut self, recorder: &Recorder) {
        let scheme = SchemeId::from_name(self.scheme.name());
        self.tracer = recorder.tracer(SIM_SERVICE_THREAD, scheme);
        self.heap
            .set_tracer(recorder.tracer(SIM_SERVICE_THREAD, scheme));
    }

    /// Turns on the Appendix C phase-discipline checker; the Harris
    /// interpreter then emits the Appendix D phase division.
    pub fn enable_phase_check(&mut self) {
        self.phases = Some(AccessAwareChecker::new());
    }

    /// Emits a phase event when checking is enabled.
    pub fn phase_event(&mut self, tid: ThreadId, event: PhaseEvent) {
        if let Some(chk) = &mut self.phases {
            chk.record(tid, event);
        }
    }

    /// Records an operation invocation in the history.
    pub fn record_invoke(&mut self, tid: ThreadId, op: Op) {
        self.history.invoke(tid, SET_OBJECT, op);
    }

    /// Records an operation response in the history.
    pub fn record_response(&mut self, tid: ThreadId, ret: Ret) {
        self.history.respond(tid, SET_OBJECT, ret);
    }

    /// Takes (and stores) a footprint sample of the current
    /// configuration.
    pub fn sample(&mut self) -> FootprintSample {
        let s = self.heap.sample();
        self.samples.push(s);
        self.tracer
            .emit(Hook::Sample, s.retired as u64, s.max_active as u64);
        s
    }
}
