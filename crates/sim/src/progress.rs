//! Operational progress checking — Condition 3 of Definition 5.4.
//!
//! Lock-freedom (§3) is an infinite-history property, so it cannot be
//! decided from one run; but its operational fingerprints can be
//! checked exhaustively at small scale:
//!
//! * **solo completion** (the property the Theorem 6.1 proof leans on:
//!   "as `T1` is the only effective thread, and as lock-freedom is
//!   guaranteed, every such read operation by `T1` indeed terminates"):
//!   for *every* prefix length `k`, pause an adversary thread after `k`
//!   steps of its operation and solo-run the other thread — it must
//!   complete within a budget, wherever the adversary was left standing;
//! * **minimal progress**: under a fair round-robin schedule, some
//!   pending operation always completes within a budget.
//!
//! A scheme that made the integrated list effectively blocking (say, a
//! reader waiting on a writer's lock) would fail the sweep at some `k`.

use era_core::ids::ThreadId;

use crate::harris::{HarrisSim, OpKind};
use crate::schemes::SimScheme;

/// Result of a progress sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressReport {
    /// Scheme name.
    pub scheme: String,
    /// Pause positions exercised.
    pub positions: usize,
    /// Positions at which the solo run failed to complete in budget
    /// (empty ⇒ non-blocking at this scale).
    pub stuck_at: Vec<usize>,
    /// Whether a Definition 4.2 violation aborted a solo run (counted
    /// separately — that is an applicability failure, not a progress
    /// failure).
    pub violations: usize,
}

impl ProgressReport {
    /// Whether every solo run completed (no blocking observed).
    pub fn is_nonblocking(&self) -> bool {
        self.stuck_at.is_empty()
    }
}

/// Schedule sweep: for every `k`, run the adversary's operation for `k`
/// steps, then solo-run a fresh operation of the other thread.
///
/// `adversary`/`solo` are the operations to interleave; `max_k` bounds
/// the sweep (the adversary is re-created per position, so positions
/// past its completion are skipped).
pub fn solo_completion_sweep(
    factory: impl Fn() -> Box<dyn SimScheme>,
    adversary: OpKind,
    solo: OpKind,
    max_k: usize,
) -> ProgressReport {
    let name = factory().name().to_string();
    let mut stuck_at = Vec::new();
    let mut violations = 0usize;
    let mut positions = 0usize;
    let t_adv = ThreadId(1);
    let t_solo = ThreadId(0);
    for k in 0..max_k {
        let mut sim = HarrisSim::new(factory());
        // A small populated list so traversals are non-trivial.
        for key in [1, 3, 5] {
            assert!(sim.run_op(t_adv, OpKind::Insert(key)));
        }
        let mut adv = sim.start_op(t_adv, adversary);
        let mut done_early = false;
        for _ in 0..k {
            if sim.step(&mut adv) {
                done_early = true;
                break;
            }
        }
        if done_early {
            break; // k exceeds the adversary's length: sweep complete
        }
        positions += 1;
        // Solo-run the other thread with a generous budget.
        let mut op = sim.start_op(t_solo, solo);
        let mut completed = false;
        for _ in 0..100_000 {
            if sim.step(&mut op) {
                completed = true;
                break;
            }
            if !sim.sim.heap.verdict().is_smr() {
                violations += 1;
                completed = true; // aborted by the oracle, not blocked
                break;
            }
        }
        if !completed {
            stuck_at.push(k);
        }
    }
    ProgressReport {
        scheme: name,
        positions,
        stuck_at,
        violations,
    }
}

/// Minimal progress under round-robin: both threads run operation
/// streams; within every window of `budget` steps, at least one
/// operation completes.
pub fn minimal_progress_round_robin(
    factory: impl Fn() -> Box<dyn SimScheme>,
    total_ops: usize,
    budget: usize,
) -> bool {
    let t0 = ThreadId(0);
    let t1 = ThreadId(1);
    let mut sim = HarrisSim::new(factory());
    let kinds = [
        OpKind::Insert(1),
        OpKind::Delete(1),
        OpKind::Insert(2),
        OpKind::Contains(1),
        OpKind::Delete(2),
    ];
    let mut ops = [
        Some(sim.start_op(t0, kinds[0])),
        Some(sim.start_op(t1, kinds[1])),
    ];
    let mut next_kind = [2usize % kinds.len(), 3usize % kinds.len()];
    let mut completed = 0usize;
    let mut steps_since_completion = 0usize;
    while completed < total_ops {
        for (i, slot) in ops.iter_mut().enumerate() {
            let tid = if i == 0 { t0 } else { t1 };
            if slot.is_none() {
                let kind = kinds[next_kind[i]];
                next_kind[i] = (next_kind[i] + 1) % kinds.len();
                *slot = Some(sim.start_op(tid, kind));
            }
            if let Some(op) = slot {
                if sim.step(op) {
                    *slot = None;
                    completed += 1;
                    steps_since_completion = 0;
                } else {
                    steps_since_completion += 1;
                    if steps_since_completion > budget {
                        return false; // no one finished in a full window
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{SimEbr, SimLeak, SimNbr, SimVbr};

    #[test]
    fn ebr_solo_runs_complete_from_every_pause_position() {
        let r = solo_completion_sweep(
            || Box::new(SimEbr::new(2)),
            OpKind::Delete(3),
            OpKind::Insert(4),
            200,
        );
        assert!(r.is_nonblocking(), "{r:?}");
        assert_eq!(r.violations, 0);
        assert!(r.positions > 5, "the sweep must cover real positions");
    }

    #[test]
    fn vbr_and_nbr_solo_runs_complete_despite_rollbacks() {
        for (name, r) in [
            (
                "VBR",
                solo_completion_sweep(
                    || Box::new(SimVbr::new()),
                    OpKind::Delete(3),
                    OpKind::Insert(4),
                    200,
                ),
            ),
            (
                "NBR",
                solo_completion_sweep(
                    || Box::new(SimNbr::new(2, 1)),
                    OpKind::Delete(3),
                    OpKind::Insert(4),
                    200,
                ),
            ),
        ] {
            assert!(r.is_nonblocking(), "{name}: {r:?}");
            assert_eq!(r.violations, 0, "{name}");
        }
    }

    #[test]
    fn sweep_covers_adversary_mid_write_positions() {
        // Pausing the adversary *between its mark and unlink CASes* is
        // the interesting case: the solo thread must unlink the marked
        // node itself and proceed.
        let r = solo_completion_sweep(
            || Box::new(SimLeak),
            OpKind::Delete(3),
            OpKind::Delete(3), // same key: must cope with the half-done delete
            200,
        );
        assert!(r.is_nonblocking(), "{r:?}");
    }

    #[test]
    fn minimal_progress_under_round_robin() {
        for factory in [
            || Box::new(SimEbr::new(2)) as Box<dyn SimScheme>,
            || Box::new(SimVbr::new()) as Box<dyn SimScheme>,
            || Box::new(SimNbr::new(2, 2)) as Box<dyn SimScheme>,
        ] {
            assert!(minimal_progress_round_robin(factory, 40, 10_000));
        }
    }
}
