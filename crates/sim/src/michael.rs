//! Small-step interpreter for Michael's lock-free linked list [30] —
//! the modification of Harris's list "originally designated to fit HP"
//! (§6).
//!
//! The difference from [`crate::harris`] is the one the whole paper
//! turns on: traversals never move past a marked node. On encountering
//! one they unlink it first and retry on failure, so every node a
//! traversal stands on was *reachable at protection-validation time*.
//! That closes the Figure 1/Figure 2 hole: HP/HE/IBR are **safe** here
//! (§4.3: "the HP scheme is safe with respect to Michael's linked-list,
//! but is not safe with respect to Harris's linked-list").
//!
//! Running random schedules of this interpreter under the simulated
//! HP/HE/IBR with the Definition 4.2 oracle silent is the positive
//! counterpart to the Figure 1/2 violations — evidence that the oracle
//! flags real unsafety, not noise.

use era_core::history::{Op, Ret};
use era_core::ids::{NodeId, ThreadId};
use era_core::validity::VarId;

use crate::harris::OpKind;
use crate::heap::Local;
use crate::schemes::{Outcome, SimScheme};
use crate::world::Sim;

/// Interpreter state (one variant ≈ one pending shared access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Begin,
    ReadHead,
    ReadCurrFromPred,
    ReadCurrNext,
    ValidatePred,
    UnlinkCas,
    ReadKey,
    InsertWriteNext,
    InsertCas,
    DeleteReadSucc,
    DeleteMarkCas,
    DeleteUnlinkCas,
    Done,
}

/// One in-flight operation on the simulated Michael list.
#[derive(Debug)]
pub struct MichaelOp {
    /// Executing thread.
    pub tid: ThreadId,
    kind: OpKind,
    state: State,
    pred: Local,
    curr: Local,
    next: Local,
    succ: Local,
    scratch: Local,
    new_node: Local,
    new_node_id: Option<NodeId>,
    victim_node: Option<NodeId>,
    key_scratch: VarId,
    curr_key: i64,
    /// After the cleanup find completes, finish with this result.
    finish_after_cleanup: Option<bool>,
    result: Option<bool>,
    /// Shared-memory steps executed so far.
    pub steps: usize,
    /// Scheme-forced roll-backs experienced.
    pub rollbacks: usize,
}

impl MichaelOp {
    /// The operation's result once complete.
    pub fn result(&self) -> Option<bool> {
        self.result
    }

    /// Whether the operation has responded.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }
}

/// A Michael list living inside a [`Sim`] world.
#[derive(Debug)]
pub struct MichaelSim {
    /// The simulation world.
    pub sim: Sim,
    head: Local,
    tail: Local,
}

impl MichaelSim {
    /// Builds the two-sentinel empty list inside a fresh world.
    pub fn new(scheme: Box<dyn SimScheme>) -> Self {
        let mut sim = Sim::new(scheme);
        let setup = ThreadId(0);
        let mut tail = sim.heap.new_local();
        let tail_node = sim.heap.alloc(setup, i64::MAX, &mut tail);
        sim.scheme.on_alloc(&mut sim.heap, tail_node);
        let mut head = sim.heap.new_local();
        let head_node = sim.heap.alloc(setup, i64::MIN, &mut head);
        sim.scheme.on_alloc(&mut sim.heap, head_node);
        sim.heap.write_next(setup, &head, &tail, false);
        sim.heap.share(&tail);
        sim.heap.share(&head);
        MichaelSim { sim, head, tail }
    }

    /// Starts an operation for `tid`.
    pub fn start_op(&mut self, tid: ThreadId, kind: OpKind) -> MichaelOp {
        let heap = &mut self.sim.heap;
        MichaelOp {
            tid,
            kind,
            state: State::Begin,
            pred: heap.new_local(),
            curr: heap.new_local(),
            next: heap.new_local(),
            succ: heap.new_local(),
            scratch: heap.new_local(),
            new_node: heap.new_local(),
            new_node_id: None,
            victim_node: None,
            key_scratch: heap.new_var(),
            curr_key: 0,
            finish_after_cleanup: None,
            result: None,
            steps: 0,
            rollbacks: 0,
        }
    }

    fn restart(&mut self, op: &mut MichaelOp, scheme_forced: bool) {
        if scheme_forced {
            op.rollbacks += 1;
            self.sim.monitor.record_rollback();
        }
        let Sim { heap, scheme, .. } = &mut self.sim;
        scheme.on_retry(heap, op.tid);
        op.state = State::ReadHead;
    }

    fn op_key(op: &MichaelOp) -> i64 {
        match op.kind {
            OpKind::Insert(k) | OpKind::Delete(k) | OpKind::Contains(k) => k,
        }
    }

    /// Executes one step; returns `true` when the operation completed.
    pub fn step(&mut self, op: &mut MichaelOp) -> bool {
        if op.state == State::Done {
            return true;
        }
        op.steps += 1;
        let tid = op.tid;
        let key = Self::op_key(op);
        match op.state {
            State::Done => unreachable!(),
            State::Begin => {
                let history_op = match op.kind {
                    OpKind::Insert(k) => Op::Insert(k),
                    OpKind::Delete(k) => Op::Delete(k),
                    OpKind::Contains(k) => Op::Contains(k),
                };
                self.sim.record_invoke(tid, history_op);
                let Sim { heap, scheme, .. } = &mut self.sim;
                scheme.begin_op(heap, tid);
                if let OpKind::Insert(k) = op.kind {
                    let node = heap.alloc(tid, k, &mut op.new_node);
                    scheme.on_alloc(heap, node);
                    op.new_node_id = Some(node);
                }
                op.state = State::ReadHead;
            }
            State::ReadHead => {
                let head = self.head;
                self.sim.heap.read_global(&mut op.pred, &head);
                op.state = State::ReadCurrFromPred;
            }
            State::ReadCurrFromPred => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_next(heap, tid, &op.pred, &mut op.curr) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim.heap.use_var(tid, op.curr.var);
                        let marked = op.curr.word.is_some_and(|w| w.mark);
                        if marked {
                            // pred itself is logically deleted: retry.
                            self.restart(op, false);
                        } else {
                            op.state = State::ReadCurrNext;
                        }
                    }
                }
            }
            State::ReadCurrNext => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_next(heap, tid, &op.curr, &mut op.next) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => op.state = State::ValidatePred,
                }
            }
            State::ValidatePred => {
                // Michael's re-validation: curr must still be linked at
                // pred (re-read pred.next and compare words).
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_next(heap, tid, &op.pred, &mut op.scratch) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim.heap.use_var(tid, op.scratch.var);
                        self.sim.heap.use_var(tid, op.curr.var);
                        if op.scratch.word != op.curr.word {
                            self.restart(op, false);
                            return false;
                        }
                        self.sim.heap.use_var(tid, op.next.var);
                        if op.next.word.is_some_and(|w| w.mark) {
                            op.state = State::UnlinkCas;
                        } else {
                            op.state = State::ReadKey;
                        }
                    }
                }
            }
            State::UnlinkCas => {
                // Unlink the marked curr before advancing — the move
                // that makes the list HP-compatible.
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.pre_write(heap, tid, &[&op.pred, &op.curr]) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        let mut succ_unmarked = op.next;
                        succ_unmarked.word = op.next.word.map(|w| w.unmarked());
                        let ok = self.sim.heap.cas_next(
                            tid,
                            &op.pred,
                            op.curr.word,
                            &succ_unmarked,
                            false,
                        );
                        if ok {
                            // The unlinker retires, exactly once.
                            let node = self
                                .sim
                                .heap
                                .target(&op.curr)
                                .expect("curr references a node");
                            let Sim { heap, scheme, .. } = &mut self.sim;
                            scheme.retire(heap, tid, node);
                            op.state = State::ReadCurrFromPred;
                        } else {
                            self.restart(op, false);
                        }
                    }
                }
            }
            State::ReadKey => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_key(heap, tid, &op.curr, op.key_scratch) {
                    Err(Outcome::Rollback) => self.restart(op, true),
                    Err(Outcome::Ok) => unreachable!(),
                    Ok(bits) => {
                        self.sim.heap.use_var(tid, op.key_scratch);
                        op.curr_key = bits;
                        if bits < key {
                            let c = op.curr;
                            self.sim.heap.assign(&mut op.pred, &c);
                            op.state = State::ReadCurrFromPred;
                        } else {
                            self.dispatch(op);
                        }
                    }
                }
            }
            State::InsertWriteNext => {
                let (nn, c) = (op.new_node, op.curr);
                self.sim.heap.write_next(tid, &nn, &c, false);
                op.state = State::InsertCas;
            }
            State::InsertCas => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.pre_write(heap, tid, &[&op.pred]) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        let ok = self.sim.heap.cas_next(
                            tid,
                            &op.pred,
                            op.curr.word,
                            &op.new_node,
                            false,
                        );
                        if ok {
                            self.sim.heap.share(&op.new_node);
                            self.finish(op, true);
                        } else {
                            self.restart(op, false);
                        }
                    }
                }
            }
            State::DeleteReadSucc => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.read_next(heap, tid, &op.curr, &mut op.succ) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        self.sim.heap.use_var(tid, op.succ.var);
                        if op.succ.word.is_some_and(|w| w.mark) {
                            self.restart(op, false); // concurrent delete
                        } else {
                            op.state = State::DeleteMarkCas;
                        }
                    }
                }
            }
            State::DeleteMarkCas => {
                let Sim { heap, scheme, .. } = &mut self.sim;
                match scheme.pre_write(heap, tid, &[&op.pred, &op.curr]) {
                    Outcome::Rollback => self.restart(op, true),
                    Outcome::Ok => {
                        let ok =
                            self.sim
                                .heap
                                .cas_next(tid, &op.curr, op.succ.word, &op.succ, true);
                        if ok {
                            op.victim_node = self.sim.heap.target(&op.curr);
                            op.state = State::DeleteUnlinkCas;
                        } else {
                            op.state = State::DeleteReadSucc;
                        }
                    }
                }
            }
            State::DeleteUnlinkCas => {
                let ok = self
                    .sim
                    .heap
                    .cas_next(tid, &op.pred, op.curr.word, &op.succ, false);
                if ok {
                    let node = op.victim_node.expect("victim recorded");
                    let Sim { heap, scheme, .. } = &mut self.sim;
                    scheme.retire(heap, tid, node);
                    self.finish(op, true);
                } else {
                    // The victim is marked but someone moved pred.next:
                    // run a cleanup find (it, or a concurrent one,
                    // unlinks-and-retires the victim), then finish —
                    // the logical deletion already succeeded at the mark.
                    op.finish_after_cleanup = Some(true);
                    self.restart(op, false);
                }
            }
        }
        op.state == State::Done
    }

    fn dispatch(&mut self, op: &mut MichaelOp) {
        if let Some(result) = op.finish_after_cleanup.take() {
            // The cleanup find positioned itself past the (now unlinked)
            // victim; the delete already logically succeeded.
            self.finish(op, result);
            return;
        }
        let key = Self::op_key(op);
        let found = op.curr_key == key;
        match op.kind {
            OpKind::Contains(_) => self.finish(op, found),
            OpKind::Insert(_) => {
                if found {
                    let node = op.new_node_id.take().expect("insert allocated");
                    let tid = op.tid;
                    let Sim { heap, scheme, .. } = &mut self.sim;
                    scheme.retire(heap, tid, node);
                    self.finish(op, false);
                } else {
                    op.state = State::InsertWriteNext;
                }
            }
            OpKind::Delete(_) => {
                if found {
                    op.state = State::DeleteReadSucc;
                } else {
                    self.finish(op, false);
                }
            }
        }
    }

    fn finish(&mut self, op: &mut MichaelOp, result: bool) {
        let Sim { heap, scheme, .. } = &mut self.sim;
        scheme.end_op(heap, op.tid);
        self.sim.record_response(op.tid, Ret::Bool(result));
        op.result = Some(result);
        op.state = State::Done;
    }

    /// Runs `op` to completion within `max_steps`.
    pub fn run_to_completion(&mut self, op: &mut MichaelOp, max_steps: usize) -> Option<bool> {
        for _ in 0..max_steps {
            if self.step(op) {
                return op.result;
            }
        }
        None
    }

    /// Convenience: run a whole operation for `tid`.
    pub fn run_op(&mut self, tid: ThreadId, kind: OpKind) -> bool {
        let mut op = self.start_op(tid, kind);
        self.run_to_completion(&mut op, 1_000_000)
            .expect("operation completes")
    }

    /// Quiescent snapshot of the set's keys (debug helper).
    pub fn collect_keys(&mut self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut addr = self.head.word().addr;
        let tail_addr = self.tail.word().addr;
        loop {
            let holder = Local {
                var: self.head.var,
                word: Some(crate::heap::Word { addr, mark: false }),
            };
            let mut tmp = self.sim.heap.new_local();
            match self.sim.heap.read_next(ThreadId(99), &holder, &mut tmp) {
                None => break,
                Some(w) => {
                    if w.addr == tail_addr {
                        break;
                    }
                    let node_holder = Local {
                        var: self.head.var,
                        word: Some(crate::heap::Word {
                            addr: w.addr,
                            mark: false,
                        }),
                    };
                    let mut tmp2 = self.sim.heap.new_local();
                    let nn = self
                        .sim
                        .heap
                        .read_next(ThreadId(99), &node_holder, &mut tmp2);
                    if !nn.is_some_and(|x| x.mark) {
                        let scratch = self.sim.heap.new_var();
                        out.push(self.sim.heap.read_key(ThreadId(99), &node_holder, scratch));
                    }
                    addr = w.addr;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{all_schemes, SimHe, SimHp, SimIbr};

    const T0: ThreadId = ThreadId(0);

    #[test]
    fn sequential_semantics_under_every_scheme() {
        for scheme in all_schemes(2) {
            let name = scheme.name();
            let mut sim = MichaelSim::new(scheme);
            for k in [5, 3, 8, 1] {
                assert!(sim.run_op(T0, OpKind::Insert(k)), "{name} insert {k}");
            }
            assert!(!sim.run_op(T0, OpKind::Insert(5)), "{name}");
            assert!(sim.run_op(T0, OpKind::Delete(3)), "{name}");
            assert!(!sim.run_op(T0, OpKind::Delete(3)), "{name}");
            assert!(sim.run_op(T0, OpKind::Contains(8)), "{name}");
            assert!(!sim.run_op(T0, OpKind::Contains(3)), "{name}");
            assert_eq!(sim.collect_keys(), vec![1, 5, 8], "{name}");
            assert!(sim.sim.heap.verdict().is_smr(), "{name}");
        }
    }

    #[test]
    fn hp_is_safe_on_michaels_list_under_the_figure1_schedule() {
        // The same adversarial schedule that breaks HP on Harris's list
        // (stalled reader + churn + solo run) is harmless here: the
        // reader's protected node is never bypassed.
        let mut sim = MichaelSim::new(Box::new(SimHp::new(2, 3)));
        let t1 = ThreadId(0);
        let t2 = ThreadId(1);
        assert!(sim.run_op(t2, OpKind::Insert(1)));
        assert!(sim.run_op(t2, OpKind::Insert(2)));
        let mut op1 = sim.start_op(t1, OpKind::Delete(3));
        for _ in 0..3 {
            sim.step(&mut op1);
        }
        assert!(sim.run_op(t2, OpKind::Delete(1)));
        for n in 2..152i64 {
            assert!(sim.run_op(t2, OpKind::Insert(n + 1)));
            assert!(sim.run_op(t2, OpKind::Delete(n)));
        }
        // Bounded footprint during the churn (HP is robust)…
        assert!(sim.sim.heap.sample().retired <= 8);
        // …and the solo run is SAFE (the §4.3 claim).
        let done = sim.run_to_completion(&mut op1, 1_000_000);
        assert_eq!(done, Some(false), "delete(3): 3 is not in the list");
        let verdict = sim.sim.heap.verdict();
        assert!(
            verdict.is_smr(),
            "HP must be safe on Michael's list: {:?}",
            verdict.violations
        );
    }

    #[test]
    fn he_and_ibr_are_safe_on_michaels_list() {
        for scheme in [
            Box::new(SimHe::new(2, 3)) as Box<dyn SimScheme>,
            Box::new(SimIbr::new(2)) as Box<dyn SimScheme>,
        ] {
            let name = scheme.name();
            let mut sim = MichaelSim::new(scheme);
            let t1 = ThreadId(0);
            let t2 = ThreadId(1);
            assert!(sim.run_op(t2, OpKind::Insert(1)));
            assert!(sim.run_op(t2, OpKind::Insert(2)));
            let mut op1 = sim.start_op(t1, OpKind::Contains(2));
            for _ in 0..3 {
                sim.step(&mut op1);
            }
            assert!(sim.run_op(t2, OpKind::Delete(1)));
            for n in 2..102i64 {
                assert!(sim.run_op(t2, OpKind::Insert(n + 1)));
                assert!(sim.run_op(t2, OpKind::Delete(n)));
            }
            let _ = sim.run_to_completion(&mut op1, 1_000_000);
            assert!(
                sim.sim.heap.verdict().is_smr(),
                "{name} must be safe on Michael's list: {:?}",
                sim.sim.heap.verdict().violations
            );
        }
    }

    #[test]
    fn traversals_unlink_marked_nodes_before_advancing() {
        use crate::heap::Word;
        let mut sim = MichaelSim::new(Box::new(SimHp::new(1, 3)));
        for k in [1, 2, 3] {
            assert!(sim.run_op(T0, OpKind::Insert(k)));
        }
        // Hand-mark node 1 (what a paused delete would leave behind).
        let head_addr = sim.head.word().addr;
        let holder = Local {
            var: sim.head.var,
            word: Some(Word {
                addr: head_addr,
                mark: false,
            }),
        };
        let mut n1 = sim.sim.heap.new_local();
        sim.sim.heap.read_next(ThreadId(9), &holder, &mut n1);
        let mut n1_next = sim.sim.heap.new_local();
        sim.sim.heap.read_next(ThreadId(9), &n1, &mut n1_next);
        assert!(sim
            .sim
            .heap
            .cas_next(ThreadId(9), &n1, n1_next.word, &n1_next, true));
        // A contains(3) traversal must unlink node 1 on its way.
        assert!(sim.run_op(T0, OpKind::Contains(3)));
        assert_eq!(sim.collect_keys(), vec![2, 3]);
        assert_eq!(
            sim.sim.heap.lifecycle().total_retires(),
            1,
            "the unlinker retired node 1"
        );
        // …and HP's end-of-op scan already reclaimed it (nothing
        // protects it once the traversal finished).
        assert_eq!(sim.sim.heap.sample().retired, 0);
        assert!(sim.sim.heap.verdict().is_smr());
    }

    #[test]
    fn contended_interleavings_stay_correct() {
        use era_core::linearizability::Checker;
        use era_core::spec::SetSpec;
        let mut sim = MichaelSim::new(Box::new(SimHp::new(2, 3)));
        let (a, b) = (ThreadId(0), ThreadId(1));
        let mut op_a = sim.start_op(a, OpKind::Insert(7));
        let mut op_b = sim.start_op(b, OpKind::Insert(7));
        loop {
            let da = sim.step(&mut op_a);
            let db = sim.step(&mut op_b);
            if da && db {
                break;
            }
        }
        assert_ne!(op_a.result(), op_b.result(), "exactly one winner");
        let mut op_c = sim.start_op(a, OpKind::Delete(7));
        let mut op_d = sim.start_op(b, OpKind::Delete(7));
        loop {
            let dc = sim.step(&mut op_c);
            let dd = sim.step(&mut op_d);
            if dc && dd {
                break;
            }
        }
        assert_ne!(op_c.result(), op_d.result(), "exactly one delete wins");
        assert!(Checker::new(&SetSpec).is_linearizable(&sim.sim.history));
        assert!(sim.sim.heap.verdict().is_smr());
    }
}
