//! Simulated reclamation schemes.
//!
//! Each scheme implements [`SimScheme`]: the hooks correspond to the
//! Definition 5.3 insertion points (`begin_op`/`end_op`, primitive
//! replacement via [`SimScheme::read_next`]/[`SimScheme::read_key`],
//! alloc/retire replacement) plus [`SimScheme::pre_write`], the
//! arbitrary-location hook the non-easy schemes need. A hook may return
//! [`Outcome::Rollback`], forcing the integrated operation back to its
//! checkpoint — the simulator counts those roll-backs, because a scheme
//! that triggers any is, by Definition 5.3, not easily integrated.
//!
//! The simulated schemes mirror `era-smr`'s real ones but run under the
//! deterministic heap with the safety oracle, so the paper's
//! constructions (Figures 1 and 2) can be replayed step by step and the
//! exact violation surfaced.

use std::collections::{HashMap, HashSet, VecDeque};

use era_core::ids::{NodeId, ThreadId};
use era_core::integration::{CallSite, CodeShape, SchemeInterface};
use era_core::validity::{Validity, VarId};

use crate::heap::{Local, SimHeap};

/// Result of a scheme-mediated primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Proceed.
    Ok,
    /// The scheme demands a roll-back to the operation's checkpoint
    /// (VBR version mismatch, NBR neutralization).
    Rollback,
}

/// A simulated reclamation scheme.
pub trait SimScheme: std::fmt::Debug {
    /// Scheme name.
    fn name(&self) -> &'static str;

    /// The static Definition 5.3 interface description.
    fn interface(&self) -> SchemeInterface;

    /// Operation entry hook.
    fn begin_op(&mut self, heap: &mut SimHeap, tid: ThreadId);

    /// Operation exit hook.
    fn end_op(&mut self, heap: &mut SimHeap, tid: ThreadId);

    /// Allocation hook (birth eras).
    fn on_alloc(&mut self, _heap: &mut SimHeap, _node: NodeId) {}

    /// Replacement of the `next`-pointer read primitive.
    fn read_next(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        dst: &mut Local,
    ) -> Outcome {
        heap.read_next(tid, src, dst);
        Outcome::Ok
    }

    /// Replacement of the key read primitive. On `Ok(bits)` the bits
    /// are the raw memory content.
    fn read_key(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        scratch: VarId,
    ) -> Result<i64, Outcome> {
        Ok(heap.read_key(tid, src, scratch))
    }

    /// Hook before a write phase touching the nodes behind `protects`
    /// (NBR reservations). Returning [`Outcome::Rollback`] sends the
    /// operation back to its checkpoint.
    fn pre_write(&mut self, _heap: &mut SimHeap, _tid: ThreadId, _protects: &[&Local]) -> Outcome {
        Outcome::Ok
    }

    /// Retire replacement: bookkeeping plus (possibly) reclamation.
    fn retire(&mut self, heap: &mut SimHeap, tid: ThreadId, node: NodeId);

    /// Called when the integrated operation re-enters its traversal
    /// (Harris's `goto retry` or a scheme-forced roll-back): the thread
    /// is back in a read-only phase.
    fn on_retry(&mut self, _heap: &mut SimHeap, _tid: ThreadId) {}

    /// Whether the scheme forces roll-backs as part of its protocol
    /// (drives the measured easy-integration verdict together with the
    /// static interface).
    fn uses_rollbacks(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Leak
// ---------------------------------------------------------------------

/// Never reclaims.
#[derive(Debug, Default)]
pub struct SimLeak;

impl SimScheme for SimLeak {
    fn name(&self) -> &'static str {
        "Leak"
    }

    fn interface(&self) -> SchemeInterface {
        SchemeInterface::new("Leak").call_site(CallSite::RetireReplacement)
    }

    fn begin_op(&mut self, _heap: &mut SimHeap, _tid: ThreadId) {}

    fn end_op(&mut self, _heap: &mut SimHeap, _tid: ThreadId) {}

    fn retire(&mut self, heap: &mut SimHeap, _tid: ThreadId, node: NodeId) {
        heap.retire(node)
            .expect("plain implementation retires correctly");
    }
}

// ---------------------------------------------------------------------
// EBR
// ---------------------------------------------------------------------

/// Simulated epoch-based reclamation (Appendix A protocol, aggressive
/// reclamation so any footprint growth is attributable to a stalled
/// announcement, not laziness).
#[derive(Debug)]
pub struct SimEbr {
    epoch: u64,
    announcements: Vec<Option<u64>>,
    retired: Vec<(NodeId, u64)>,
}

impl SimEbr {
    /// Creates the scheme for `threads` threads.
    pub fn new(threads: usize) -> Self {
        SimEbr {
            epoch: 2,
            announcements: vec![None; threads],
            retired: Vec::new(),
        }
    }

    fn try_advance(&mut self) {
        if self
            .announcements
            .iter()
            .flatten()
            .all(|&a| a == self.epoch)
        {
            self.epoch += 1;
        }
    }

    fn collect(&mut self, heap: &mut SimHeap) {
        let epoch = self.epoch;
        let (free, keep): (Vec<_>, Vec<_>) =
            self.retired.drain(..).partition(|&(_, e)| e + 2 <= epoch);
        for (node, _) in free {
            heap.reclaim(node, false).expect("retired node reclaimable");
        }
        self.retired = keep;
    }
}

impl SimScheme for SimEbr {
    fn name(&self) -> &'static str {
        "EBR"
    }

    fn interface(&self) -> SchemeInterface {
        SchemeInterface::new("EBR")
            .call_site(CallSite::OperationBoundary)
            .call_site(CallSite::RetireReplacement)
    }

    fn begin_op(&mut self, _heap: &mut SimHeap, tid: ThreadId) {
        self.announcements[tid.0] = Some(self.epoch);
    }

    fn end_op(&mut self, _heap: &mut SimHeap, tid: ThreadId) {
        self.announcements[tid.0] = None;
        self.try_advance();
    }

    fn retire(&mut self, heap: &mut SimHeap, _tid: ThreadId, node: NodeId) {
        heap.retire(node)
            .expect("plain implementation retires correctly");
        self.retired.push((node, self.epoch));
        self.try_advance();
        self.collect(heap);
    }
}

// ---------------------------------------------------------------------
// HP
// ---------------------------------------------------------------------

/// Simulated hazard pointers: `k` rotating hazard slots per thread; a
/// protected read publishes the target and re-validates the source.
#[derive(Debug)]
pub struct SimHp {
    hazards: Vec<VecDeque<usize>>,
    k: usize,
    retired: Vec<NodeId>,
    scratch: Option<Local>,
}

impl SimHp {
    /// Creates the scheme for `threads` threads × `k` hazard slots.
    pub fn new(threads: usize, k: usize) -> Self {
        SimHp {
            hazards: vec![VecDeque::new(); threads],
            k: k.max(1),
            retired: Vec::new(),
            scratch: None,
        }
    }

    fn protect(&mut self, tid: ThreadId, addr: usize) {
        let h = &mut self.hazards[tid.0];
        h.push_back(addr);
        while h.len() > self.k {
            h.pop_front();
        }
    }

    fn scan(&mut self, heap: &mut SimHeap) {
        let protected: HashSet<usize> = self.hazards.iter().flatten().copied().collect();
        let (free, keep): (Vec<_>, Vec<_>) = self
            .retired
            .drain(..)
            .partition(|n| !protected.contains(&n.addr));
        for node in free {
            heap.reclaim(node, false).expect("retired node reclaimable");
        }
        self.retired = keep;
    }
}

impl SimScheme for SimHp {
    fn name(&self) -> &'static str {
        "HP"
    }

    fn interface(&self) -> SchemeInterface {
        SchemeInterface::new("HP")
            .call_site(CallSite::PrimitiveReplacement)
            .call_site(CallSite::AllocReplacement)
            .call_site(CallSite::RetireReplacement)
    }

    fn begin_op(&mut self, _heap: &mut SimHeap, _tid: ThreadId) {}

    fn end_op(&mut self, heap: &mut SimHeap, tid: ThreadId) {
        self.hazards[tid.0].clear();
        // Dropping protections is a scan opportunity (the real scheme
        // scans on the next retire; the simulator has no background
        // activity, so scan eagerly).
        self.scan(heap);
    }

    fn read_next(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        dst: &mut Local,
    ) -> Outcome {
        // Read, publish the hazard, re-read the source to validate (the
        // scheduler cannot intervene inside one hook, so a single
        // re-read suffices — the point of Figures 1/2 is that even a
        // *stable* validation does not imply safety here).
        let first = heap.read_next(tid, src, dst);
        if let Some(w) = first {
            self.protect(tid, w.addr);
        }
        let mut scratch = self.scratch.take().unwrap_or_else(|| heap.new_local());
        let again = heap.read_next(tid, src, &mut scratch);
        heap.overwrite_var(scratch.var);
        self.scratch = Some(scratch);
        debug_assert_eq!(first, again, "single-step validation is stable");
        Outcome::Ok
    }

    fn retire(&mut self, heap: &mut SimHeap, _tid: ThreadId, node: NodeId) {
        heap.retire(node)
            .expect("plain implementation retires correctly");
        self.retired.push(node);
        self.scan(heap);
    }
}

// ---------------------------------------------------------------------
// HE
// ---------------------------------------------------------------------

/// Simulated hazard eras: per-read era reservations validated against
/// the global era clock; nodes freed when no reservation intersects
/// their lifetime.
#[derive(Debug)]
pub struct SimHe {
    era: u64,
    reservations: Vec<VecDeque<u64>>,
    k: usize,
    birth: HashMap<NodeId, u64>,
    retired: Vec<(NodeId, u64, u64)>,
}

impl SimHe {
    /// Creates the scheme for `threads` threads × `k` reservation slots.
    pub fn new(threads: usize, k: usize) -> Self {
        SimHe {
            era: 1,
            reservations: vec![VecDeque::new(); threads],
            k: k.max(1),
            birth: HashMap::new(),
            retired: Vec::new(),
        }
    }

    fn scan(&mut self, heap: &mut SimHeap) {
        let eras: Vec<u64> = self.reservations.iter().flatten().copied().collect();
        let (free, keep): (Vec<_>, Vec<_>) = self
            .retired
            .drain(..)
            .partition(|&(_, b, r)| !eras.iter().any(|&e| b <= e && e <= r));
        for (node, _, _) in free {
            heap.reclaim(node, false).expect("retired node reclaimable");
        }
        self.retired = keep;
    }
}

impl SimScheme for SimHe {
    fn name(&self) -> &'static str {
        "HE"
    }

    fn interface(&self) -> SchemeInterface {
        SchemeInterface::new("HE")
            .call_site(CallSite::PrimitiveReplacement)
            .call_site(CallSite::AllocReplacement)
            .call_site(CallSite::RetireReplacement)
    }

    fn begin_op(&mut self, _heap: &mut SimHeap, _tid: ThreadId) {}

    fn end_op(&mut self, heap: &mut SimHeap, tid: ThreadId) {
        self.reservations[tid.0].clear();
        self.scan(heap);
    }

    fn on_alloc(&mut self, _heap: &mut SimHeap, node: NodeId) {
        self.birth.insert(node, self.era);
        self.era += 1;
    }

    fn read_next(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        dst: &mut Local,
    ) -> Outcome {
        let r = &mut self.reservations[tid.0];
        r.push_back(self.era);
        while r.len() > self.k {
            r.pop_front();
        }
        heap.read_next(tid, src, dst);
        Outcome::Ok
    }

    fn retire(&mut self, heap: &mut SimHeap, _tid: ThreadId, node: NodeId) {
        heap.retire(node)
            .expect("plain implementation retires correctly");
        let birth = self.birth.remove(&node).unwrap_or(0);
        self.retired.push((node, birth, self.era));
        self.era += 1;
        self.scan(heap);
    }
}

// ---------------------------------------------------------------------
// IBR (2GE)
// ---------------------------------------------------------------------

/// Simulated interval-based reclamation: one `[lower, upper]` era
/// reservation per thread, extended on every read.
#[derive(Debug)]
pub struct SimIbr {
    era: u64,
    intervals: Vec<Option<(u64, u64)>>,
    birth: HashMap<NodeId, u64>,
    retired: Vec<(NodeId, u64, u64)>,
}

impl SimIbr {
    /// Creates the scheme for `threads` threads.
    pub fn new(threads: usize) -> Self {
        SimIbr {
            era: 1,
            intervals: vec![None; threads],
            birth: HashMap::new(),
            retired: Vec::new(),
        }
    }

    fn scan(&mut self, heap: &mut SimHeap) {
        let intervals: Vec<(u64, u64)> = self.intervals.iter().flatten().copied().collect();
        let (free, keep): (Vec<_>, Vec<_>) = self
            .retired
            .drain(..)
            .partition(|&(_, b, r)| !intervals.iter().any(|&(lo, hi)| b <= hi && lo <= r));
        for (node, _, _) in free {
            heap.reclaim(node, false).expect("retired node reclaimable");
        }
        self.retired = keep;
    }
}

impl SimScheme for SimIbr {
    fn name(&self) -> &'static str {
        "IBR"
    }

    fn interface(&self) -> SchemeInterface {
        SchemeInterface::new("IBR")
            .call_site(CallSite::OperationBoundary)
            .call_site(CallSite::PrimitiveReplacement)
            .call_site(CallSite::AllocReplacement)
            .call_site(CallSite::RetireReplacement)
    }

    fn begin_op(&mut self, _heap: &mut SimHeap, tid: ThreadId) {
        self.intervals[tid.0] = Some((self.era, self.era));
    }

    fn end_op(&mut self, heap: &mut SimHeap, tid: ThreadId) {
        self.intervals[tid.0] = None;
        self.scan(heap);
    }

    fn on_alloc(&mut self, _heap: &mut SimHeap, node: NodeId) {
        self.birth.insert(node, self.era);
        self.era += 1;
    }

    fn read_next(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        dst: &mut Local,
    ) -> Outcome {
        if let Some((lo, hi)) = self.intervals[tid.0] {
            self.intervals[tid.0] = Some((lo, hi.max(self.era)));
        }
        heap.read_next(tid, src, dst);
        Outcome::Ok
    }

    fn retire(&mut self, heap: &mut SimHeap, _tid: ThreadId, node: NodeId) {
        heap.retire(node)
            .expect("plain implementation retires correctly");
        let birth = self.birth.remove(&node).unwrap_or(0);
        self.retired.push((node, birth, self.era));
        self.era += 1;
        self.scan(heap);
    }
}

// ---------------------------------------------------------------------
// VBR
// ---------------------------------------------------------------------

/// Simulated version-based reclamation: retire *is* reclaim; every read
/// validates the source's incarnation and rolls back on a mismatch.
#[derive(Debug, Default)]
pub struct SimVbr;

impl SimVbr {
    /// Creates the scheme.
    pub fn new() -> Self {
        SimVbr
    }
}

impl SimScheme for SimVbr {
    fn name(&self) -> &'static str {
        "VBR"
    }

    fn interface(&self) -> SchemeInterface {
        SchemeInterface::new("VBR")
            .call_site(CallSite::OperationBoundary)
            .call_site(CallSite::PrimitiveReplacement)
            .call_site(CallSite::Arbitrary) // checkpoints
            .with_rollback()
            .with_code_shape(CodeShape::Checkpoints)
    }

    fn begin_op(&mut self, _heap: &mut SimHeap, _tid: ThreadId) {}

    fn end_op(&mut self, _heap: &mut SimHeap, _tid: ThreadId) {}

    fn read_next(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        dst: &mut Local,
    ) -> Outcome {
        // The version check: a read through a stale reference is
        // detected (the real scheme compares per-node version numbers;
        // incarnation mismatch is the same information).
        if heap.validity(src) != Validity::Valid {
            return Outcome::Rollback;
        }
        heap.read_next(tid, src, dst);
        Outcome::Ok
    }

    fn read_key(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        scratch: VarId,
    ) -> Result<i64, Outcome> {
        if heap.validity(src) != Validity::Valid {
            return Err(Outcome::Rollback);
        }
        Ok(heap.read_key(tid, src, scratch))
    }

    fn pre_write(&mut self, heap: &mut SimHeap, _tid: ThreadId, protects: &[&Local]) -> Outcome {
        // Writing through a stale reference must fail; VBR re-validates
        // at the checkpoint before the write phase.
        if protects.iter().any(|l| heap.validity(l) != Validity::Valid) {
            Outcome::Rollback
        } else {
            Outcome::Ok
        }
    }

    fn retire(&mut self, heap: &mut SimHeap, _tid: ThreadId, node: NodeId) {
        heap.retire(node)
            .expect("plain implementation retires correctly");
        heap.reclaim(node, false)
            .expect("retire is reclaim under VBR");
    }

    fn uses_rollbacks(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// NBR
// ---------------------------------------------------------------------

/// Simulated neutralization-based reclamation with *signal* semantics:
/// a reclaiming thread neutralizes every thread currently in a read
/// phase **immediately** (the kernel guarantee the real scheme gets from
/// POSIX signals), reclaims everything unreserved, and the neutralized
/// threads roll back at their next step.
#[derive(Debug)]
pub struct SimNbr {
    neutralized: Vec<bool>,
    in_read_phase: Vec<bool>,
    reservations: Vec<Vec<usize>>,
    retired: Vec<NodeId>,
    threshold: usize,
}

impl SimNbr {
    /// Creates the scheme for `threads` threads; reclamation triggers
    /// every `threshold` retirements.
    pub fn new(threads: usize, threshold: usize) -> Self {
        SimNbr {
            neutralized: vec![false; threads],
            in_read_phase: vec![false; threads],
            reservations: vec![Vec::new(); threads],
            retired: Vec::new(),
            threshold: threshold.max(1),
        }
    }

    fn neutralize_and_reclaim(&mut self, heap: &mut SimHeap, self_tid: ThreadId) {
        for (i, in_read) in self.in_read_phase.iter().enumerate() {
            if i != self_tid.0 && *in_read {
                self.neutralized[i] = true;
            }
        }
        let reserved: HashSet<usize> = self.reservations.iter().flatten().copied().collect();
        let (free, keep): (Vec<_>, Vec<_>) = self
            .retired
            .drain(..)
            .partition(|n| !reserved.contains(&n.addr));
        for node in free {
            heap.reclaim(node, false).expect("retired node reclaimable");
        }
        self.retired = keep;
    }
}

impl SimScheme for SimNbr {
    fn name(&self) -> &'static str {
        "NBR"
    }

    fn interface(&self) -> SchemeInterface {
        SchemeInterface::new("NBR")
            .call_site(CallSite::OperationBoundary)
            .call_site(CallSite::RetireReplacement)
            .call_site(CallSite::Arbitrary) // reservations at phase edges
            .with_rollback()
            .with_code_shape(CodeShape::ReadWritePhases)
    }

    fn begin_op(&mut self, _heap: &mut SimHeap, tid: ThreadId) {
        self.in_read_phase[tid.0] = true;
        self.neutralized[tid.0] = false;
        self.reservations[tid.0].clear();
    }

    fn end_op(&mut self, _heap: &mut SimHeap, tid: ThreadId) {
        self.in_read_phase[tid.0] = false;
        self.neutralized[tid.0] = false;
        self.reservations[tid.0].clear();
    }

    fn read_next(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        dst: &mut Local,
    ) -> Outcome {
        if self.neutralized[tid.0] {
            // The signal handler long-jumped us back to the phase start
            // *before* this access could touch freed memory.
            self.neutralized[tid.0] = false;
            self.in_read_phase[tid.0] = true;
            self.reservations[tid.0].clear();
            return Outcome::Rollback;
        }
        heap.read_next(tid, src, dst);
        Outcome::Ok
    }

    fn read_key(
        &mut self,
        heap: &mut SimHeap,
        tid: ThreadId,
        src: &Local,
        scratch: VarId,
    ) -> Result<i64, Outcome> {
        if self.neutralized[tid.0] {
            self.neutralized[tid.0] = false;
            self.in_read_phase[tid.0] = true;
            self.reservations[tid.0].clear();
            return Err(Outcome::Rollback);
        }
        Ok(heap.read_key(tid, src, scratch))
    }

    fn pre_write(&mut self, _heap: &mut SimHeap, tid: ThreadId, protects: &[&Local]) -> Outcome {
        if self.neutralized[tid.0] {
            self.neutralized[tid.0] = false;
            self.reservations[tid.0].clear();
            return Outcome::Rollback;
        }
        self.reservations[tid.0] = protects
            .iter()
            .filter_map(|l| l.word.map(|w| w.addr))
            .collect();
        self.in_read_phase[tid.0] = false;
        Outcome::Ok
    }

    fn retire(&mut self, heap: &mut SimHeap, tid: ThreadId, node: NodeId) {
        heap.retire(node)
            .expect("plain implementation retires correctly");
        self.retired.push(node);
        if self.retired.len() >= self.threshold {
            self.neutralize_and_reclaim(heap, tid);
        }
    }

    fn on_retry(&mut self, _heap: &mut SimHeap, tid: ThreadId) {
        // Re-entering the traversal = a fresh read-only phase: drop the
        // write-phase reservations and become neutralizable again. Any
        // neutralization that happened while we were in the write phase
        // is moot — the retry drops every pointer anyway.
        self.in_read_phase[tid.0] = true;
        self.neutralized[tid.0] = false;
        self.reservations[tid.0].clear();
    }

    fn uses_rollbacks(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// QSBR
// ---------------------------------------------------------------------

/// Simulated quiescent-state-based reclamation.
///
/// Reclamation waits for every thread to pass an application-announced
/// quiescent point. Data-structure operations never announce one (that
/// is the application's job — the integration burden that makes QSBR
/// not easily integrated), so in harness runs that do not call
/// [`SimQsbr::quiescent_all`] the retired population only grows:
/// the measured profile is *wide applicability only*.
#[derive(Debug)]
pub struct SimQsbr {
    grace: u64,
    /// Latest grace period each thread has announced (None = in-op,
    /// not yet quiescent in the current period).
    announced: Vec<u64>,
    retired: Vec<(NodeId, u64)>,
}

impl SimQsbr {
    /// Creates the scheme for `threads` threads.
    pub fn new(threads: usize) -> Self {
        SimQsbr {
            grace: 2,
            announced: vec![u64::MAX; threads],
            retired: Vec::new(),
        }
    }

    fn try_advance_and_collect(&mut self, heap: &mut SimHeap) {
        if self.announced.iter().all(|&a| a >= self.grace) {
            self.grace += 1;
        }
        let grace = self.grace;
        let (free, keep): (Vec<_>, Vec<_>) =
            self.retired.drain(..).partition(|&(_, g)| g + 2 <= grace);
        for (node, _) in free {
            heap.reclaim(node, false).expect("retired node reclaimable");
        }
        self.retired = keep;
    }

    /// The application-side quiescent announcement for `tid`.
    pub fn quiescent(&mut self, heap: &mut SimHeap, tid: ThreadId) {
        self.announced[tid.0] = self.grace;
        self.try_advance_and_collect(heap);
    }
}

impl SimScheme for SimQsbr {
    fn name(&self) -> &'static str {
        "QSBR"
    }

    fn interface(&self) -> SchemeInterface {
        // quiescent() calls go wherever the application can prove it
        // holds no references: an arbitrary code location.
        SchemeInterface::new("QSBR")
            .call_site(CallSite::RetireReplacement)
            .call_site(CallSite::Arbitrary)
    }

    fn begin_op(&mut self, _heap: &mut SimHeap, tid: ThreadId) {
        // Entering an operation ends any standing quiescence.
        self.announced[tid.0] = self.grace.saturating_sub(1);
    }

    fn end_op(&mut self, _heap: &mut SimHeap, _tid: ThreadId) {
        // Deliberately empty: only quiescent() says "no references".
    }

    fn retire(&mut self, heap: &mut SimHeap, _tid: ThreadId, node: NodeId) {
        heap.retire(node)
            .expect("plain implementation retires correctly");
        self.retired.push((node, self.grace));
        self.try_advance_and_collect(heap);
    }
}

/// Constructs every simulated scheme, for experiment sweeps.
pub fn all_schemes(threads: usize) -> Vec<Box<dyn SimScheme>> {
    vec![
        Box::new(SimEbr::new(threads)),
        Box::new(SimHp::new(threads, 3)),
        Box::new(SimHe::new(threads, 3)),
        Box::new(SimIbr::new(threads)),
        Box::new(SimVbr::new()),
        Box::new(SimNbr::new(threads, 1)),
        Box::new(SimQsbr::new(threads)),
        Box::new(SimLeak),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_core::integration::check_easy_integration;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn alloc_shared(heap: &mut SimHeap, key: i64) -> (Local, NodeId) {
        let mut l = heap.new_local();
        let n = heap.alloc(T0, key, &mut l);
        heap.share(&l);
        (l, n)
    }

    #[test]
    fn static_interfaces_match_paper_classification() {
        let easy = ["EBR", "HP", "HE", "IBR", "Leak"];
        let rollback_free_but_hard = ["QSBR"];
        for scheme in all_schemes(2) {
            let verdict = check_easy_integration(&scheme.interface());
            if easy.contains(&scheme.name()) {
                assert!(verdict.is_easy(), "{} should be easy", scheme.name());
                assert!(!scheme.uses_rollbacks());
            } else if rollback_free_but_hard.contains(&scheme.name()) {
                assert!(!verdict.is_easy(), "{} should not be easy", scheme.name());
                assert!(!scheme.uses_rollbacks(), "{}", scheme.name());
            } else {
                assert!(!verdict.is_easy(), "{} should not be easy", scheme.name());
                assert!(scheme.uses_rollbacks());
            }
        }
    }

    #[test]
    fn ebr_reclaims_only_after_two_epochs_and_stalls_block() {
        let mut heap = SimHeap::new();
        let mut ebr = SimEbr::new(2);
        let (_l, n) = alloc_shared(&mut heap, 1);
        // A stalled thread pins the epoch.
        ebr.begin_op(&mut heap, T1);
        ebr.begin_op(&mut heap, T0);
        ebr.retire(&mut heap, T0, n);
        ebr.end_op(&mut heap, T0);
        for _ in 0..10 {
            ebr.begin_op(&mut heap, T0);
            ebr.end_op(&mut heap, T0);
        }
        assert_eq!(heap.sample().retired, 1, "stalled T1 blocks reclamation");
        // Unstall: reclamation proceeds.
        ebr.end_op(&mut heap, T1);
        let (_l2, n2) = alloc_shared(&mut heap, 2);
        ebr.begin_op(&mut heap, T0);
        ebr.retire(&mut heap, T0, n2);
        ebr.end_op(&mut heap, T0);
        for _ in 0..10 {
            ebr.begin_op(&mut heap, T0);
            ebr.end_op(&mut heap, T0);
        }
        ebr.begin_op(&mut heap, T0);
        let (_l3, n3) = alloc_shared(&mut heap, 3);
        ebr.retire(&mut heap, T0, n3);
        assert!(
            heap.sample().retired < 3,
            "epoch advanced, old garbage freed"
        );
    }

    #[test]
    fn hp_protected_node_survives() {
        let mut heap = SimHeap::new();
        let mut hp = SimHp::new(2, 3);
        let (holder, _hn) = alloc_shared(&mut heap, 0);
        let (next_l, next_n) = alloc_shared(&mut heap, 1);
        heap.write_next(T0, &holder, &next_l, false);
        // T1 protects `next` by reading holder.next.
        hp.begin_op(&mut heap, T1);
        let mut dst = heap.new_local();
        assert_eq!(hp.read_next(&mut heap, T1, &holder, &mut dst), Outcome::Ok);
        // T0 unlinks and retires it: protected, must survive the scan.
        let null = heap.new_local();
        heap.write_next(T0, &holder, &null, false);
        hp.begin_op(&mut heap, T0);
        hp.retire(&mut heap, T0, next_n);
        assert_eq!(heap.sample().retired, 1);
        // T1 releases: next retire triggers a scan that frees it.
        hp.end_op(&mut heap, T1);
        let (_l, extra) = alloc_shared(&mut heap, 2);
        hp.retire(&mut heap, T0, extra);
        assert_eq!(heap.sample().retired, 0);
    }

    #[test]
    fn hp_rotation_drops_old_protections() {
        let mut heap = SimHeap::new();
        let mut hp = SimHp::new(1, 2); // only 2 slots
        let (a, _na) = alloc_shared(&mut heap, 0);
        let (b, _nb) = alloc_shared(&mut heap, 1);
        let (c, _nc) = alloc_shared(&mut heap, 2);
        // a → b → c → a, so each read protects a real target.
        heap.write_next(T0, &a, &b, false);
        heap.write_next(T0, &b, &c, false);
        heap.write_next(T0, &c, &a, false);
        hp.begin_op(&mut heap, T0);
        let mut d = heap.new_local();
        let _ = hp.read_next(&mut heap, T0, &a, &mut d);
        let _ = hp.read_next(&mut heap, T0, &b, &mut d);
        let _ = hp.read_next(&mut heap, T0, &c, &mut d);
        assert_eq!(hp.hazards[0].len(), 2, "oldest protection evicted");
        assert_eq!(
            hp.hazards[0].iter().copied().collect::<Vec<_>>(),
            vec![c.word().addr, a.word().addr]
        );
    }

    #[test]
    fn vbr_rolls_back_on_stale_read_and_reclaims_immediately() {
        let mut heap = SimHeap::new();
        let mut vbr = SimVbr::new();
        let (l, n) = alloc_shared(&mut heap, 1);
        vbr.begin_op(&mut heap, T0);
        vbr.retire(&mut heap, T0, n);
        assert_eq!(heap.sample().retired, 0, "retire is reclaim");
        let mut dst = heap.new_local();
        assert_eq!(
            vbr.read_next(&mut heap, T0, &l, &mut dst),
            Outcome::Rollback
        );
        assert!(heap.verdict().is_smr(), "the rollback prevented the access");
    }

    #[test]
    fn nbr_neutralizes_readers_and_respects_reservations() {
        let mut heap = SimHeap::new();
        let mut nbr = SimNbr::new(2, 1);
        let (reader_held, n) = alloc_shared(&mut heap, 1);
        let (other, n2) = alloc_shared(&mut heap, 2);

        // T1 is mid-read-phase; T0 reserves `other` in its write phase.
        nbr.begin_op(&mut heap, T1);
        nbr.begin_op(&mut heap, T0);
        assert_eq!(nbr.pre_write(&mut heap, T0, &[&other]), Outcome::Ok);

        // T0 retires both nodes: threshold 1 ⇒ neutralize + reclaim.
        nbr.retire(&mut heap, T0, n);
        assert_eq!(
            heap.sample().retired,
            0,
            "unreserved node reclaimed at once"
        );
        nbr.retire(&mut heap, T0, n2);
        assert_eq!(heap.sample().retired, 1, "reserved node survives");

        // T1 is neutralized: its next read rolls back instead of
        // touching the freed node.
        let mut dst = heap.new_local();
        assert_eq!(
            nbr.read_next(&mut heap, T1, &reader_held, &mut dst),
            Outcome::Rollback
        );
        assert!(heap.verdict().is_smr());
    }

    #[test]
    fn he_and_ibr_protect_overlapping_lifetimes_only() {
        {
            let protected_expected = true;
            let mut heap = SimHeap::new();
            let mut he = SimHe::new(2, 3);
            let mut holder = heap.new_local();
            let hn = heap.alloc(T0, 0, &mut holder);
            he.on_alloc(&mut heap, hn);
            heap.share(&holder);
            let mut tgt = heap.new_local();
            let tn = heap.alloc(T0, 1, &mut tgt);
            he.on_alloc(&mut heap, tn);
            heap.share(&tgt);
            heap.write_next(T0, &holder, &tgt, false);
            // T1 reserves the current era by reading.
            he.begin_op(&mut heap, T1);
            let mut dst = heap.new_local();
            let _ = he.read_next(&mut heap, T1, &holder, &mut dst);
            // T0 retires the target: lifetime overlaps T1's reservation.
            he.retire(&mut heap, T0, tn);
            assert_eq!(heap.sample().retired == 1, protected_expected);
            // Nodes born after the reservation are reclaimable though.
            let mut l3 = heap.new_local();
            let n3 = heap.alloc(T0, 3, &mut l3);
            he.on_alloc(&mut heap, n3);
            heap.share(&l3);
            he.retire(&mut heap, T0, n3);
            assert_eq!(heap.sample().retired, 1, "young node freed, old pinned");
        }
        // IBR interval variant.
        let mut heap = SimHeap::new();
        let mut ibr = SimIbr::new(2);
        let mut holder = heap.new_local();
        let hn = heap.alloc(T0, 0, &mut holder);
        ibr.on_alloc(&mut heap, hn);
        heap.share(&holder);
        ibr.begin_op(&mut heap, T1);
        let mut dst = heap.new_local();
        let _ = ibr.read_next(&mut heap, T1, &holder, &mut dst);
        // Advance the era past T1's frozen interval with a dummy alloc…
        let mut dummy = heap.new_local();
        let nd = heap.alloc(T0, 9, &mut dummy);
        ibr.on_alloc(&mut heap, nd);
        heap.share(&dummy);
        // …then a node born strictly later is not pinned by T1.
        let mut l2 = heap.new_local();
        let n2 = heap.alloc(T0, 2, &mut l2);
        ibr.on_alloc(&mut heap, n2);
        heap.share(&l2);
        ibr.retire(&mut heap, T0, n2);
        assert_eq!(heap.sample().retired, 0, "young cohort reclaimed under IBR");
    }

    #[test]
    fn all_schemes_constructor_covers_the_matrix() {
        let names: Vec<&str> = all_schemes(2).iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["EBR", "HP", "HE", "IBR", "VBR", "NBR", "QSBR", "Leak"]
        );
    }

    #[test]
    fn qsbr_reclaims_only_at_quiescent_points() {
        let mut heap = SimHeap::new();
        let mut q = SimQsbr::new(2);
        q.begin_op(&mut heap, T0);
        let (_l, n) = alloc_shared(&mut heap, 1);
        q.retire(&mut heap, T0, n);
        q.end_op(&mut heap, T0);
        // No quiescent announcements: nothing is ever reclaimed.
        for _ in 0..10 {
            q.begin_op(&mut heap, T0);
            q.end_op(&mut heap, T0);
        }
        assert_eq!(heap.sample().retired, 1);
        // Both threads announce quiescence repeatedly: it drains.
        for _ in 0..4 {
            q.quiescent(&mut heap, T0);
            q.quiescent(&mut heap, T1);
        }
        assert_eq!(heap.sample().retired, 0);
    }
}
