//! Serializable scenario specifications: what to throw at the store,
//! phase by phase, and when.
//!
//! A [`ScenarioSpec`] follows the same replayability discipline as the
//! chaos [`FaultPlan`]: plain data, generated or hand-written, emitted
//! as one JSON line by the workspace's hand-rolled emitter
//! ([`era_obs::report::JsonObject`]), and parsed back by a minimal
//! byte parser — no serialization dependency. A campaign record embeds
//! the spec verbatim, so every verdict can be regenerated from the
//! record alone.
//!
//! Floats are deliberately absent from the wire format: the zipfian
//! skew travels as basis points (`theta_bp`, 9900 = θ 0.99) so the
//! parser stays integer-only and round-trips are byte-exact.

use std::fmt;

use era_chaos::FaultPlan;
use era_kv::{KeyDist, KvMix};
use era_obs::report::JsonObject;

/// One timeline segment of a scenario: a workload shape plus the
/// adversities active while it runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Phase label for records and rendered verdicts.
    pub label: String,
    /// Percent `get` (reads + writes + removes must sum to 100).
    pub reads: u32,
    /// Percent `put`.
    pub writes: u32,
    /// Percent `remove` — the retire-generating share of the mix.
    pub removes: u32,
    /// Zipfian skew in basis points; 0 selects the uniform
    /// distribution (9900 = YCSB's default θ = 0.99). Rank 0 — the
    /// hottest key — maps onto `key_lo`, so sliding the key window
    /// between phases moves the hot set.
    pub theta_bp: u64,
    /// Keys are drawn from `[key_lo, key_hi)`; consecutive phases
    /// grow, shrink, or slide the window.
    pub key_lo: u64,
    /// Exclusive upper key bound (must exceed `key_lo`).
    pub key_hi: u64,
    /// Worker threads (or TCP client connections when
    /// [`PhaseSpec::serve_net`] is set) for this phase.
    pub threads: usize,
    /// Operations per worker in this phase.
    pub ops_per_thread: usize,
    /// Pin one adversarial stalled reader inside this shard's domain
    /// for the whole phase (the Theorem 6.1 adversary: it restarts
    /// when neutralized and promptly stalls again).
    pub stall_shard: Option<usize>,
    /// Quarantine this shard when the phase starts (the post-death
    /// protocol, triggered administratively): every write to it sheds
    /// until the navigator observes the footprint drained below half
    /// the soft budget and returns it to `Robust` — a deterministic
    /// admission-control event, unlike tick-timing-dependent
    /// `Degrading` sheds.
    pub quarantine_shard: Option<usize>,
    /// Run a navigator watchdog thread during this phase. Off, the
    /// store never degrades — the baseline that lets a non-robust
    /// scheme's footprint grow without interference.
    pub navigator: bool,
    /// Serve this phase through an in-process `era-net` TCP server
    /// (workers registered against the same store) with
    /// [`PhaseSpec::threads`] pipelining client connections; the
    /// server's own watchdog replaces the phase navigator thread.
    pub serve_net: bool,
    /// Navigator budget override `(soft, hard)` applied when the phase
    /// starts; `None` re-applies the scenario's base budgets.
    pub budgets: Option<(usize, usize)>,
}

impl PhaseSpec {
    /// A neutral template phase: uniform churn, navigator on, no
    /// adversary. Scenario builders tweak the fields they care about.
    pub fn churn(label: &str) -> PhaseSpec {
        PhaseSpec {
            label: label.to_string(),
            reads: 40,
            writes: 30,
            removes: 30,
            theta_bp: 0,
            key_lo: 0,
            key_hi: 1024,
            threads: 4,
            ops_per_thread: 5_000,
            stall_shard: None,
            quarantine_shard: None,
            navigator: true,
            serve_net: false,
            budgets: None,
        }
    }

    /// The operation mix as the workload driver's type.
    pub fn mix(&self) -> KvMix {
        KvMix {
            reads: self.reads,
            writes: self.writes,
            removes: self.removes,
        }
    }

    /// The key distribution as the workload driver's type.
    pub fn dist(&self) -> KeyDist {
        if self.theta_bp == 0 {
            KeyDist::Uniform
        } else {
            KeyDist::Zipfian {
                theta: self.theta_bp as f64 / 10_000.0,
            }
        }
    }

    /// Total operations this phase issues across its workers.
    pub fn total_ops(&self) -> u64 {
        self.threads as u64 * self.ops_per_thread as u64
    }
}

/// Mid-run fault injection: wrap one shard's scheme in
/// [`era_chaos::ChaosSmr`] with a seed-generated plan re-anchored
/// ([`FaultPlan::offset`]) to fire inside the chosen phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// The shard whose scheme is wrapped.
    pub shard: usize,
    /// Plan generation seed ([`FaultPlan::generate`]).
    pub seed: u64,
    /// Number of injections to generate.
    pub faults: usize,
    /// Phase index the plan is aimed at (its horizon is that phase's
    /// per-shard op share; earlier phases' ops become the offset).
    pub at_phase: usize,
}

/// A named, seeded, fully replayable adversarial campaign scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Stable scenario name (`--scenario` selector, record key).
    pub name: String,
    /// Base RNG seed; phase workers derive their streams from it.
    pub seed: u64,
    /// Independent reclaimer domains (shards).
    pub shards: usize,
    /// Base soft navigator budget (per shard).
    pub soft: usize,
    /// Base hard navigator budget (per shard).
    pub hard: usize,
    /// The Def-4.2-style footprint bound the per-scheme invariants are
    /// stated about: robust schemes must keep every shard's
    /// `retired_peak` at or below it; non-robust schemes must visibly
    /// exceed it in a stalled-reader phase.
    pub bound: usize,
    /// Keys pre-inserted (from key 0 upward) before phase 1.
    pub prefill: usize,
    /// Optional mid-run fault injection.
    pub chaos: Option<ChaosSpec>,
    /// The timeline (at least one phase).
    pub phases: Vec<PhaseSpec>,
}

impl ScenarioSpec {
    /// Checks internal consistency; returns a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// A static message naming the offending field.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.name.is_empty() {
            return Err("scenario name is empty");
        }
        if self.shards == 0 {
            return Err("a scenario needs at least one shard");
        }
        if self.phases.is_empty() {
            return Err("a scenario needs at least one phase");
        }
        if self.hard < self.soft {
            return Err("hard budget below soft budget");
        }
        for p in &self.phases {
            if p.reads + p.writes + p.removes != 100 {
                return Err("phase mix must sum to 100 percent");
            }
            if p.key_hi <= p.key_lo {
                return Err("phase key window is empty");
            }
            if p.threads == 0 || p.ops_per_thread == 0 {
                return Err("phase has no work");
            }
            if p.stall_shard.is_some_and(|s| s >= self.shards) {
                return Err("stall_shard out of range");
            }
            if p.quarantine_shard.is_some_and(|s| s >= self.shards) {
                return Err("quarantine_shard out of range");
            }
            if p.budgets.is_some_and(|(s, h)| h < s) {
                return Err("phase hard budget below soft budget");
            }
        }
        if let Some(c) = self.chaos {
            if c.shard >= self.shards {
                return Err("chaos shard out of range");
            }
            if c.at_phase >= self.phases.len() {
                return Err("chaos at_phase out of range");
            }
            // The in-process net server's worker pool registers once at
            // phase start and cannot absorb chaos registration refusals
            // mid-serve; the combination is rejected rather than flaky.
            if self.phases.iter().any(|p| p.serve_net) {
                return Err("serve_net phases cannot combine with chaos injection");
            }
        }
        Ok(())
    }

    /// Thread capacity each shard's scheme must seat: the widest
    /// phase's workers, plus the stall reader, the prefill context,
    /// the heal spare, and chaos's scratch contexts.
    pub fn capacity_needed(&self) -> usize {
        let widest = self.phases.iter().map(|p| p.threads).max().unwrap_or(1);
        widest + 4
    }

    /// The shard whose footprint curve the record samples: the first
    /// stalled shard, else the chaos target, else shard 0.
    pub fn focus_shard(&self) -> usize {
        self.phases
            .iter()
            .find_map(|p| p.stall_shard)
            .or(self.chaos.map(|c| c.shard))
            .unwrap_or(0)
    }

    /// The generated-and-offset fault plan for [`ScenarioSpec::chaos`],
    /// or `None`. The plan's horizon is the target phase's fair
    /// per-shard op share and its offset is the share of every earlier
    /// phase (plus prefill), so the injections land inside that phase
    /// of the wrapped shard's own op clock.
    pub fn chaos_plan(&self) -> Option<(usize, FaultPlan)> {
        let c = self.chaos?;
        let per_shard = |ops: u64| ops / self.shards as u64;
        let before: u64 = self
            .phases
            .iter()
            .take(c.at_phase)
            .map(|p| per_shard(p.total_ops()))
            .sum::<u64>()
            + per_shard(self.prefill as u64);
        let horizon = per_shard(self.phases[c.at_phase].total_ops()).max(16);
        Some((
            c.shard,
            FaultPlan::generate(c.seed, horizon, c.faults).offset(before),
        ))
    }

    /// Serializes the scenario as one JSON line.
    pub fn to_json(&self) -> String {
        let mut phases = String::from("[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            let mut obj = JsonObject::new()
                .str("label", &p.label)
                .u64("reads", u64::from(p.reads))
                .u64("writes", u64::from(p.writes))
                .u64("removes", u64::from(p.removes))
                .u64("theta_bp", p.theta_bp)
                .u64("key_lo", p.key_lo)
                .u64("key_hi", p.key_hi)
                .u64("threads", p.threads as u64)
                .u64("ops_per_thread", p.ops_per_thread as u64)
                .bool("navigator", p.navigator)
                .bool("serve_net", p.serve_net);
            if let Some(s) = p.stall_shard {
                obj = obj.u64("stall_shard", s as u64);
            }
            if let Some(s) = p.quarantine_shard {
                obj = obj.u64("quarantine_shard", s as u64);
            }
            if let Some((soft, hard)) = p.budgets {
                obj = obj.u64("soft", soft as u64).u64("hard", hard as u64);
            }
            phases.push_str(&obj.finish());
        }
        phases.push(']');
        let mut obj = JsonObject::new()
            .str("name", &self.name)
            .u64("seed", self.seed)
            .u64("shards", self.shards as u64)
            .u64("soft", self.soft as u64)
            .u64("hard", self.hard as u64)
            .u64("bound", self.bound as u64)
            .u64("prefill", self.prefill as u64);
        if let Some(c) = self.chaos {
            obj = obj.raw(
                "chaos",
                &JsonObject::new()
                    .u64("shard", c.shard as u64)
                    .u64("seed", c.seed)
                    .u64("faults", c.faults as u64)
                    .u64("at_phase", c.at_phase as u64)
                    .finish(),
            );
        }
        obj.raw("phases", &phases).finish()
    }

    /// Parses a scenario from its [`ScenarioSpec::to_json`] record
    /// (whitespace and member order are free; unknown fields are
    /// rejected). The parsed spec is re-validated.
    ///
    /// # Errors
    ///
    /// [`SpecParseError`] with a byte offset on malformed input or an
    /// inconsistent spec.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, SpecParseError> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let spec = p.scenario()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(p.err("trailing input after scenario"));
        }
        spec.validate()
            .map_err(|msg| SpecParseError { at: 0, msg })?;
        Ok(spec)
    }
}

/// A scenario failed to parse or validate: byte offset plus a static
/// description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecParseError {
    /// Byte offset into the JSON text (0 for validation failures).
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for SpecParseError {}

/// Minimal parser for exactly the shape [`ScenarioSpec::to_json`]
/// emits (the chaos `FaultPlan` parser's sibling).
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> SpecParseError {
        SpecParseError { at: self.i, msg }
    }

    fn ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), SpecParseError> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    /// Consumes either a comma (`true`) or `close` (`false`).
    fn comma_or(&mut self, close: u8) -> Result<bool, SpecParseError> {
        match self.peek() {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(b) if b == close => {
                self.i += 1;
                Ok(false)
            }
            _ => Err(self.err("expected ',' or a closing bracket")),
        }
    }

    fn u64(&mut self) -> Result<u64, SpecParseError> {
        let start = self.i;
        let mut v: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(b - b'0')))
                .ok_or(SpecParseError {
                    at: self.i,
                    msg: "integer overflow",
                })?;
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected an unsigned integer"));
        }
        Ok(v)
    }

    fn bool(&mut self) -> Result<bool, SpecParseError> {
        if self.s[self.i..].starts_with(b"true") {
            self.i += 4;
            Ok(true)
        } else if self.s[self.i..].starts_with(b"false") {
            self.i += 5;
            Ok(false)
        } else {
            Err(self.err("expected a boolean"))
        }
    }

    /// A plain string (spec strings never need escapes; reject them).
    fn string(&mut self) -> Result<String, SpecParseError> {
        self.eat(b'"')?;
        let start = self.i;
        loop {
            match self.peek() {
                Some(b'"') => break,
                Some(b'\\') => return Err(self.err("escapes are not used in spec strings")),
                Some(_) => self.i += 1,
                None => return Err(self.err("unterminated string")),
            }
        }
        let out = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| self.err("invalid utf-8"))?
            .to_string();
        self.i += 1;
        Ok(out)
    }

    fn scenario(&mut self) -> Result<ScenarioSpec, SpecParseError> {
        let mut spec = ScenarioSpec {
            name: String::new(),
            seed: 0,
            shards: 1,
            soft: 512,
            hard: 2048,
            bound: 2048,
            prefill: 0,
            chaos: None,
            phases: Vec::new(),
        };
        self.ws();
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(spec);
        }
        loop {
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            match key.as_str() {
                "name" => spec.name = self.string()?,
                "seed" => spec.seed = self.u64()?,
                "shards" => spec.shards = self.u64()? as usize,
                "soft" => spec.soft = self.u64()? as usize,
                "hard" => spec.hard = self.u64()? as usize,
                "bound" => spec.bound = self.u64()? as usize,
                "prefill" => spec.prefill = self.u64()? as usize,
                "chaos" => spec.chaos = Some(self.chaos()?),
                "phases" => {
                    self.eat(b'[')?;
                    self.ws();
                    if self.peek() == Some(b']') {
                        self.i += 1;
                    } else {
                        loop {
                            spec.phases.push(self.phase()?);
                            self.ws();
                            if !self.comma_or(b']')? {
                                break;
                            }
                            self.ws();
                        }
                    }
                }
                _ => return Err(self.err("unknown scenario field")),
            }
            self.ws();
            if !self.comma_or(b'}')? {
                break;
            }
            self.ws();
        }
        Ok(spec)
    }

    fn chaos(&mut self) -> Result<ChaosSpec, SpecParseError> {
        let mut c = ChaosSpec {
            shard: 0,
            seed: 0,
            faults: 0,
            at_phase: 0,
        };
        self.eat(b'{')?;
        self.ws();
        loop {
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            match key.as_str() {
                "shard" => c.shard = self.u64()? as usize,
                "seed" => c.seed = self.u64()?,
                "faults" => c.faults = self.u64()? as usize,
                "at_phase" => c.at_phase = self.u64()? as usize,
                _ => return Err(self.err("unknown chaos field")),
            }
            self.ws();
            if !self.comma_or(b'}')? {
                break;
            }
            self.ws();
        }
        Ok(c)
    }

    fn phase(&mut self) -> Result<PhaseSpec, SpecParseError> {
        let mut ph = PhaseSpec {
            label: String::new(),
            reads: 0,
            writes: 0,
            removes: 0,
            theta_bp: 0,
            key_lo: 0,
            key_hi: 0,
            threads: 1,
            ops_per_thread: 1,
            stall_shard: None,
            quarantine_shard: None,
            navigator: true,
            serve_net: false,
            budgets: None,
        };
        let (mut soft, mut hard) = (None, None);
        self.eat(b'{')?;
        self.ws();
        loop {
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            match key.as_str() {
                "label" => ph.label = self.string()?,
                "reads" => ph.reads = self.u64()? as u32,
                "writes" => ph.writes = self.u64()? as u32,
                "removes" => ph.removes = self.u64()? as u32,
                "theta_bp" => ph.theta_bp = self.u64()?,
                "key_lo" => ph.key_lo = self.u64()?,
                "key_hi" => ph.key_hi = self.u64()?,
                "threads" => ph.threads = self.u64()? as usize,
                "ops_per_thread" => ph.ops_per_thread = self.u64()? as usize,
                "stall_shard" => ph.stall_shard = Some(self.u64()? as usize),
                "quarantine_shard" => ph.quarantine_shard = Some(self.u64()? as usize),
                "navigator" => ph.navigator = self.bool()?,
                "serve_net" => ph.serve_net = self.bool()?,
                "soft" => soft = Some(self.u64()? as usize),
                "hard" => hard = Some(self.u64()? as usize),
                _ => return Err(self.err("unknown phase field")),
            }
            self.ws();
            if !self.comma_or(b'}')? {
                break;
            }
            self.ws();
        }
        match (soft, hard) {
            (Some(s), Some(h)) => ph.budgets = Some((s, h)),
            (None, None) => {}
            _ => return Err(self.err("phase budget override needs both soft and hard")),
        }
        Ok(ph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            name: "sample".into(),
            seed: 42,
            shards: 2,
            soft: 512,
            hard: 2048,
            bound: 2048,
            prefill: 128,
            chaos: Some(ChaosSpec {
                shard: 1,
                seed: 7,
                faults: 5,
                at_phase: 1,
            }),
            phases: vec![
                PhaseSpec {
                    label: "warm".into(),
                    reads: 95,
                    writes: 5,
                    removes: 0,
                    ..PhaseSpec::churn("warm")
                },
                PhaseSpec {
                    stall_shard: Some(0),
                    quarantine_shard: Some(1),
                    navigator: false,
                    budgets: Some((64, 256)),
                    theta_bp: 9900,
                    ..PhaseSpec::churn("storm")
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let spec = sample();
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json, "replay record must be stable");
    }

    #[test]
    fn json_accepts_whitespace_and_field_order() {
        let text = r#" { "phases" : [ { "label" : "p" , "reads" : 100 , "writes" : 0 ,
            "removes" : 0 , "key_lo" : 0 , "key_hi" : 8 , "threads" : 1 ,
            "ops_per_thread" : 10 , "navigator" : false , "serve_net" : false ,
            "theta_bp" : 0 } ] , "name" : "ws" , "shards" : 1 , "seed" : 3 } "#;
        let spec = ScenarioSpec::from_json(text).unwrap();
        assert_eq!(spec.name, "ws");
        assert_eq!(spec.seed, 3);
        assert_eq!(spec.phases.len(), 1);
        assert!(!spec.phases[0].navigator);
        assert_eq!(spec.phases[0].dist(), KeyDist::Uniform);
    }

    #[test]
    fn json_rejects_malformed_and_inconsistent_input() {
        for bad in [
            "",
            "{",
            "{\"name\":\"x\"}",                                     // no phases
            "{\"bogus\":1}",                                        // unknown field
            "{\"name\":\"x\",\"phases\":[{\"label\":\"p\"}]}",      // mix sums to 0
            "{\"name\":\"x\",\"phases\":[{\"soft\":1}]}",           // half a budget override
            "{\"name\":\"x\",\"shards\":1,\"phases\":[]} trailing", // trailing input
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn validate_catches_field_inconsistencies() {
        let mut spec = sample();
        assert_eq!(spec.validate(), Ok(()));
        spec.phases[0].reads = 90;
        assert!(spec.validate().is_err());
        let mut spec = sample();
        spec.phases[1].stall_shard = Some(9);
        assert!(spec.validate().is_err());
        let mut spec = sample();
        spec.chaos = Some(ChaosSpec {
            shard: 0,
            seed: 1,
            faults: 1,
            at_phase: 99,
        });
        assert!(spec.validate().is_err());
        let mut spec = sample();
        spec.phases[0].key_hi = spec.phases[0].key_lo;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn helpers_derive_driver_types_and_capacity() {
        let spec = sample();
        assert_eq!(spec.phases[0].mix().name(), "ycsb-b");
        assert_eq!(spec.phases[1].dist(), KeyDist::Zipfian { theta: 0.99 });
        assert_eq!(spec.capacity_needed(), 8, "4 workers + 4 slack");
        assert_eq!(spec.focus_shard(), 0, "stall wins over chaos target");
        let (shard, plan) = spec.chaos_plan().unwrap();
        assert_eq!(shard, 1);
        assert_eq!(plan.ops.len(), 5);
        // Aimed past phase 0's per-shard share (10_064 ops / 2 shards).
        let first_fire = plan.ops.iter().map(|a| a.at_op()).min().unwrap();
        assert!(
            first_fire > 10_000 / 2,
            "plan anchored at phase 1: {first_fire}"
        );
        // Same spec, same plan — replayable like everything else.
        assert_eq!(spec.chaos_plan().unwrap().1, plan);
    }
}
