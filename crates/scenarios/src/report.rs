//! JSON-lines records of scenario runs.
//!
//! One line per `(scenario, scheme)` run, emitted with the
//! workspace's hand-rolled writer. The line carries a top-level
//! `"verdict":"pass"|"fail"` (the key `era-view --verdicts` gates CI
//! on), the evaluated invariants, per-phase summaries, the focus
//! shard's footprint curve, and the embedded spec — a record is
//! enough to replay the run that produced it.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use era_obs::report::JsonObject;

use crate::run::ScenarioOutcome;

/// A rendered record: the JSON line plus the handful of fields the
/// CLI's summary table wants without re-parsing.
#[derive(Debug, Clone)]
pub struct ScenarioRunRecord {
    /// The scenario's name.
    pub scenario: String,
    /// `Smr::name()` of the scheme under test.
    pub scheme: String,
    /// Whether every invariant held.
    pub pass: bool,
    /// Names of the invariants that failed (empty on pass).
    pub failed: Vec<&'static str>,
    /// The JSON line.
    pub line: String,
}

impl ScenarioRunRecord {
    /// Renders `outcome` into its record.
    pub fn collect(outcome: &ScenarioOutcome) -> ScenarioRunRecord {
        let mut phases = String::from("[");
        for (i, p) in outcome.phases.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            let healths: Vec<u64> = p.healths.iter().map(|h| *h as u64).collect();
            phases.push_str(
                &JsonObject::new()
                    .str("label", &p.label)
                    .u64("ops", p.ops)
                    .u64("shed", p.shed)
                    .u64("elapsed_ms", p.elapsed_ms)
                    .u64("peak", p.peak)
                    .u64("retired_end", p.retired_end)
                    .u64("restarts", p.restarts)
                    .u64_array("healths", &healths)
                    .finish(),
            );
        }
        phases.push(']');

        let mut invariants = String::from("[");
        for (i, inv) in outcome.invariants.iter().enumerate() {
            if i > 0 {
                invariants.push(',');
            }
            invariants.push_str(&inv.to_json());
        }
        invariants.push(']');

        let mut obj = JsonObject::new()
            .str("record", "scenario")
            .str("scenario", &outcome.spec.name)
            .str("scheme", &outcome.scheme)
            .str("verdict", if outcome.pass { "pass" } else { "fail" })
            .bool("robust", outcome.robust)
            .u64("seed", outcome.spec.seed)
            .u64("bound", outcome.spec.bound as u64)
            .u64("elapsed_ms", outcome.elapsed_ms)
            .bool("drained", outcome.drained)
            .u64("final_retired", outcome.final_retired)
            .u64("transitions", outcome.transitions)
            .u64("neutralizations", outcome.neutralizations)
            .u64("sheds", outcome.sheds)
            .u64("adoptions", outcome.adoptions)
            .u64("trace_dropped", outcome.trace_dropped)
            .raw("phases", &phases)
            .raw("invariants", &invariants)
            .pairs("curve", &outcome.footprint_curve);
        if let Some(path) = &outcome.flight_dump {
            obj = obj.str("flight_dump", &path.display().to_string());
        }
        let line = obj.raw("spec", &outcome.spec.to_json()).finish();

        ScenarioRunRecord {
            scenario: outcome.spec.name.clone(),
            scheme: outcome.scheme.clone(),
            pass: outcome.pass,
            failed: outcome
                .invariants
                .iter()
                .filter(|o| !o.ok)
                .map(|o| o.name)
                .collect(),
            line,
        }
    }
}

/// Writes records to `path`, one JSON line each.
///
/// # Errors
///
/// Any filesystem error.
pub fn write_jsonl(path: &Path, records: &[ScenarioRunRecord]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for r in records {
        writeln!(w, "{}", r.line)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::InvariantOutcome;
    use crate::run::PhaseOutcome;
    use crate::spec::{PhaseSpec, ScenarioSpec};
    use era_kv::ShardHealth;

    fn outcome(pass: bool) -> ScenarioOutcome {
        ScenarioOutcome {
            spec: ScenarioSpec {
                name: "demo".into(),
                seed: 9,
                shards: 1,
                soft: 512,
                hard: 2048,
                bound: 2048,
                prefill: 0,
                chaos: None,
                phases: vec![PhaseSpec::churn("only")],
            },
            scheme: "EBR".into(),
            robust: false,
            phases: vec![PhaseOutcome {
                label: "only".into(),
                ops: 100,
                shed: 3,
                elapsed_ms: 12,
                peak: 40,
                retired_end: 5,
                healths: vec![ShardHealth::Robust],
                restarts: 0,
            }],
            invariants: vec![InvariantOutcome {
                name: "recovers-after-drain",
                ok: pass,
                observed: 0,
                limit: 256,
            }],
            pass,
            footprint_curve: vec![(1, 2), (3, 4)],
            transitions: 1,
            neutralizations: 0,
            sheds: 3,
            adoptions: 0,
            trace_dropped: 0,
            drained: true,
            final_retired: 0,
            elapsed_ms: 12,
            flight_dump: None,
        }
    }

    #[test]
    fn record_carries_verdict_invariants_and_embedded_spec() {
        let rec = ScenarioRunRecord::collect(&outcome(true));
        assert!(rec.pass);
        assert!(rec.failed.is_empty());
        assert!(rec.line.contains("\"verdict\":\"pass\""), "{}", rec.line);
        assert!(rec.line.contains("\"scenario\":\"demo\""));
        assert!(rec.line.contains("\"curve\":[[1,2],[3,4]]"));
        // The embedded spec must itself round-trip.
        let spec_at = rec.line.find("\"spec\":").unwrap() + "\"spec\":".len();
        let spec_json = &rec.line[spec_at..rec.line.len() - 1];
        let spec = ScenarioSpec::from_json(spec_json).unwrap();
        assert_eq!(spec.name, "demo");
    }

    #[test]
    fn failing_record_names_the_failed_invariants() {
        let rec = ScenarioRunRecord::collect(&outcome(false));
        assert!(!rec.pass);
        assert_eq!(rec.failed, vec!["recovers-after-drain"]);
        assert!(rec.line.contains("\"verdict\":\"fail\""));
        assert!(rec.line.contains("\"ok\":false"));
    }

    #[test]
    fn jsonl_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join("era_scenarios_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        let recs = vec![
            ScenarioRunRecord::collect(&outcome(true)),
            ScenarioRunRecord::collect(&outcome(false)),
        ];
        write_jsonl(&path, &recs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text
            .lines()
            .nth(1)
            .unwrap()
            .contains("\"verdict\":\"fail\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
