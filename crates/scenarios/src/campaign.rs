//! The built-in campaign: named, seeded scenarios covering the
//! adversities the ERA stack claims to survive (EXPERIMENTS E14).
//!
//! Every spec here is plain data — `scenarios --list` prints the
//! names, `scenarios --scenario NAME` runs one, and the same spec can
//! be exported with [`ScenarioSpec::to_json`], edited, and replayed
//! via `--spec FILE`. Bounds are calibrated against the workspace's
//! default scheme thresholds with generous margins, so verdicts are
//! stable across machines: the invariants compare exact scheme
//! counters, not timing-dependent samples.

use crate::spec::{ChaosSpec, PhaseSpec, ScenarioSpec};

/// Base spec shared by the campaign: two reclaimer domains, the
/// navigator's default budgets, and a Def-4.2 bound sized so robust
/// schemes clear it ~5× under while a stalled EBR/QSBR blows through
/// it ~5× over.
fn base(name: &str, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        seed,
        shards: 2,
        soft: 512,
        hard: 2048,
        bound: 2000,
        prefill: 256,
        chaos: None,
        phases: Vec::new(),
    }
}

/// Read-mostly traffic shifts into a write storm and back — the
/// retire rate jumps an order of magnitude mid-run and the store must
/// ride it without residue.
fn phase_shift() -> ScenarioSpec {
    let mut s = base("phase-shift", 0xE5A_0001);
    let read_mostly = PhaseSpec {
        reads: 95,
        writes: 5,
        removes: 0,
        ..PhaseSpec::churn("read-mostly")
    };
    s.phases = vec![
        read_mostly.clone(),
        PhaseSpec {
            ops_per_thread: 10_000,
            ..PhaseSpec::churn("write-storm")
        },
        PhaseSpec {
            label: "read-mostly-again".into(),
            ..read_mostly
        },
    ];
    s
}

/// A zipfian hot set (θ 0.99) that keeps moving: rank 0 maps onto
/// `key_lo`, so sliding the window between phases relocates the
/// contended keys under concurrent churn.
fn hot_key_storm() -> ScenarioSpec {
    let mut s = base("hot-key-storm", 0xE5A_0002);
    s.phases = (0..3)
        .map(|i| PhaseSpec {
            label: format!("hotset-{i}"),
            theta_bp: 9900,
            key_lo: i * 2048,
            key_hi: i * 2048 + 4096,
            ops_per_thread: 6_000,
            ..PhaseSpec::churn("")
        })
        .collect();
    s
}

/// The live key range grows 32× and then collapses below where it
/// started — mass inserts followed by mass removals, the
/// retire-heaviest shape churn can take.
fn range_breathing() -> ScenarioSpec {
    let mut s = base("range-breathing", 0xE5A_0003);
    s.phases = [256u64, 4096, 8192, 512]
        .iter()
        .enumerate()
        .map(|(i, &hi)| PhaseSpec {
            label: format!("range-{hi}"),
            key_hi: hi,
            ops_per_thread: if i == 3 { 10_000 } else { 5_000 },
            ..PhaseSpec::churn("")
        })
        .collect();
    s
}

/// 16 worker threads on a machine with fewer cores: every protected
/// region gets preempted mid-flight, the adversarial schedule Def 4.2
/// quantifies over arising naturally.
fn oversubscribed() -> ScenarioSpec {
    let mut s = base("oversubscribed", 0xE5A_0004);
    s.phases = vec![PhaseSpec {
        threads: 16,
        ops_per_thread: 2_000,
        key_hi: 2048,
        ..PhaseSpec::churn("oversubscribed-churn")
    }];
    s
}

/// The headline: a reader stalls inside a protected region with the
/// navigator **off** while churn hammers its shard. Robust schemes
/// keep `retired_peak` under the bound regardless; EBR/QSBR must blow
/// through it (the `blowout-visible` invariant asserts the theorem's
/// negative direction) and recover only after the epilogue heal +
/// drain.
fn stalled_reader_blowout() -> ScenarioSpec {
    let mut s = base("stalled-reader-blowout", 0xE5A_0005);
    s.prefill = 512;
    s.phases = vec![
        PhaseSpec {
            navigator: false,
            key_hi: 2048,
            ..PhaseSpec::churn("warm")
        },
        PhaseSpec {
            label: "stall-storm".into(),
            navigator: false,
            stall_shard: Some(0),
            key_hi: 2048,
            ops_per_thread: 20_000,
            ..PhaseSpec::churn("")
        },
    ];
    s
}

/// A seeded chaos plan (thread deaths while pinned, stalls, delayed
/// flushes, refused registrations, slot exhaustion…) fires inside
/// phase 2 on shard 0 while both shards keep serving.
fn chaos_storm() -> ScenarioSpec {
    let mut s = base("chaos-storm", 0xE5A_0006);
    s.chaos = Some(ChaosSpec {
        shard: 0,
        seed: 0xC4A05,
        faults: 10,
        at_phase: 1,
    });
    s.phases = vec![
        PhaseSpec::churn("calm"),
        PhaseSpec {
            ops_per_thread: 10_000,
            ..PhaseSpec::churn("faulted")
        },
        PhaseSpec::churn("aftermath"),
    ];
    s
}

/// The navigator's budgets are slashed mid-run under a write-heavy
/// mix: admission control must visibly shed
/// (`sheds-under-pressure`), then the restored budgets must let the
/// store return to normal service.
fn budget_squeeze() -> ScenarioSpec {
    let mut s = base("budget-squeeze", 0xE5A_0007);
    s.phases = vec![
        PhaseSpec::churn("normal"),
        // Quarantining shard 0 sheds every write to it from the first
        // operation — deterministic on any core count, where
        // Degrading-path sheds depend on navigator tick timing. The
        // slashed budgets keep the shard quarantined longer (recovery
        // needs the footprint below half the soft budget) and squeeze
        // shard 1 the tick-dependent way on top.
        PhaseSpec {
            label: "squeezed".into(),
            reads: 10,
            writes: 60,
            removes: 30,
            budgets: Some((8, 64)),
            quarantine_shard: Some(0),
            threads: 8,
            key_hi: 512,
            ops_per_thread: 6_000,
            ..PhaseSpec::churn("")
        },
        PhaseSpec::churn("restored"),
    ];
    s
}

/// The store serves real TCP traffic mid-scenario: an in-process
/// `era-net` server (its watchdog replacing the phase navigator) with
/// pipelined client connections, framed by local warm-up and
/// cool-down phases.
fn net_storm() -> ScenarioSpec {
    let mut s = base("net-storm", 0xE5A_0008);
    s.phases = vec![
        PhaseSpec::churn("warm"),
        PhaseSpec {
            label: "serve".into(),
            serve_net: true,
            ops_per_thread: 4_000,
            ..PhaseSpec::churn("")
        },
        PhaseSpec::churn("cooldown"),
    ];
    s
}

/// Everything at once: oversubscribed zipfian churn, a stalled reader,
/// and the navigator **on** — non-robust schemes sawtooth past the
/// bound between neutralizations, robust schemes never approach it.
fn mixed_adversary() -> ScenarioSpec {
    let mut s = base("mixed-adversary", 0xE5A_0009);
    s.bound = 1500;
    s.phases = vec![
        PhaseSpec::churn("warm"),
        PhaseSpec {
            label: "adversary".into(),
            theta_bp: 9900,
            threads: 8,
            ops_per_thread: 10_000,
            key_hi: 4096,
            stall_shard: Some(0),
            ..PhaseSpec::churn("")
        },
    ];
    s
}

/// The whole campaign, in run order.
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        phase_shift(),
        hot_key_storm(),
        range_breathing(),
        oversubscribed(),
        stalled_reader_blowout(),
        chaos_storm(),
        budget_squeeze(),
        net_storm(),
        mixed_adversary(),
    ]
}

/// The CI smoke subset: the headline blowout, a workload shift, and
/// the admission-control squeeze — one scenario per invariant family.
pub const SMOKE: [&str; 3] = ["phase-shift", "stalled-reader-blowout", "budget-squeeze"];

/// Looks a campaign scenario up by name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_campaign_spec_validates_and_round_trips() {
        let specs = all();
        assert!(specs.len() >= 8, "campaign must stay ≥ 8 scenarios");
        for spec in &specs {
            assert_eq!(spec.validate(), Ok(()), "{}", spec.name);
            let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(&back, spec, "{} must round-trip", spec.name);
        }
    }

    #[test]
    fn names_are_unique_and_smoke_subset_resolves() {
        let specs = all();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate scenario name");
        for name in SMOKE {
            assert!(by_name(name).is_some(), "smoke scenario {name} missing");
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn headline_scenario_shapes_the_theorem_experiment() {
        let s = by_name("stalled-reader-blowout").unwrap();
        assert!(
            s.phases
                .iter()
                .any(|p| p.stall_shard.is_some() && !p.navigator),
            "the blowout needs an un-policed stall"
        );
        let squeeze = by_name("budget-squeeze").unwrap();
        assert!(squeeze
            .phases
            .iter()
            .any(|p| p.budgets.is_some_and(|(soft, _)| soft < squeeze.soft)));
        let net = by_name("net-storm").unwrap();
        assert!(net.phases.iter().any(|p| p.serve_net));
        let chaos = by_name("chaos-storm").unwrap();
        assert!(chaos.chaos_plan().is_some());
    }
}
