//! Campaign CLI: run one named scenario, a spec file, or the whole
//! built-in campaign over one scheme or all six.
//!
//! Usage:
//!   scenarios [--scenario NAME] [--scheme ebr|qsbr|hp|he|ibr|nbr|all]
//!             [--spec FILE] [--list] [--smoke]
//!             [--report out.jsonl] [--flight-dir DIR]
//!             [--ring-capacity N]
//!
//! Defaults: the whole campaign over all six pointer-based schemes,
//! ring capacity from `ERA_RING_CAPACITY` or the workspace default.
//! Exit status is non-zero when any run's verdict is `fail` — a
//! robust scheme past its bound, a non-robust scheme that *failed* to
//! blow the bound under a stall, residue after drain, an unhealthy
//! shard, or a squeeze that never shed. `era-view --verdicts` renders
//! the report (CI's scenario-smoke gate).

use std::path::PathBuf;

use era_chaos::ChaosSmr;
use era_kv::KvStore;
use era_scenarios::report::{write_jsonl, ScenarioRunRecord};
use era_scenarios::run::{kv_config, run_scenario, scheme_capacity, RunOptions};
use era_scenarios::{campaign, ScenarioSpec};
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, nbr::Nbr, qsbr::Qsbr, Smr};

/// Hazard/era slots per thread the kv maps need (one per traversal
/// hand, as everywhere else in the workspace).
const SLOTS: usize = 3;

const SCHEMES: [&str; 6] = ["ebr", "qsbr", "hp", "he", "ibr", "nbr"];

struct Options {
    scenarios: Vec<String>,
    schemes: Vec<String>,
    spec_file: Option<PathBuf>,
    list: bool,
    smoke: bool,
    report: Option<PathBuf>,
    flight_dir: Option<PathBuf>,
    ring_capacity: usize,
}

fn parse_options() -> Options {
    let mut opts = Options {
        scenarios: Vec::new(),
        schemes: SCHEMES.iter().map(|s| s.to_string()).collect(),
        spec_file: None,
        list: false,
        smoke: false,
        report: None,
        flight_dir: None,
        ring_capacity: std::env::var("ERA_RING_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(era_obs::DEFAULT_RING_CAPACITY),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => opts.scenarios.push(value(&mut args, "--scenario")),
            "--scheme" => {
                let s = value(&mut args, "--scheme");
                if s == "all" {
                    opts.schemes = SCHEMES.iter().map(|s| s.to_string()).collect();
                } else if SCHEMES.contains(&s.as_str()) {
                    opts.schemes = vec![s];
                } else {
                    eprintln!("unknown --scheme {s} (use ebr|qsbr|hp|he|ibr|nbr|all)");
                    std::process::exit(2);
                }
            }
            "--spec" => opts.spec_file = Some(PathBuf::from(value(&mut args, "--spec"))),
            "--list" => opts.list = true,
            "--smoke" => opts.smoke = true,
            "--report" => opts.report = Some(PathBuf::from(value(&mut args, "--report"))),
            "--flight-dir" => {
                opts.flight_dir = Some(PathBuf::from(value(&mut args, "--flight-dir")))
            }
            "--ring-capacity" => {
                opts.ring_capacity = value(&mut args, "--ring-capacity")
                    .parse()
                    .unwrap_or(era_obs::DEFAULT_RING_CAPACITY)
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Builds the store over `schemes` (wrapping the chaos target when the
/// spec carries a plan), runs the scenario, and renders the record.
fn run_store<S: Smr>(schemes: Vec<S>, spec: &ScenarioSpec, opts: &Options) -> ScenarioRunRecord {
    let ropts = RunOptions {
        flight_dump: opts.flight_dir.as_ref().map(|d| {
            d.join(format!(
                "{}-{}.eraflt",
                spec.name,
                schemes[0].name().to_lowercase()
            ))
        }),
    };
    let cfg = kv_config(spec, opts.ring_capacity);
    if let Some((target, plan)) = spec.chaos_plan() {
        let wrapped: Vec<ChaosSmr<S>> = schemes
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                if i == target {
                    ChaosSmr::new(s, plan.clone())
                } else {
                    ChaosSmr::transparent(s)
                }
            })
            .collect();
        let store = KvStore::new(&wrapped, cfg);
        ScenarioRunRecord::collect(&run_scenario(&store, spec, &ropts))
    } else {
        let store = KvStore::new(&schemes, cfg);
        ScenarioRunRecord::collect(&run_scenario(&store, spec, &ropts))
    }
}

fn run_scheme(scheme: &str, spec: &ScenarioSpec, opts: &Options) -> ScenarioRunRecord {
    let cap = scheme_capacity(spec);
    let n = spec.shards;
    match scheme {
        "ebr" => run_store(
            (0..n).map(|_| Ebr::new(cap)).collect::<Vec<_>>(),
            spec,
            opts,
        ),
        "qsbr" => run_store(
            (0..n).map(|_| Qsbr::new(cap)).collect::<Vec<_>>(),
            spec,
            opts,
        ),
        "hp" => run_store(
            (0..n).map(|_| Hp::new(cap, SLOTS)).collect::<Vec<_>>(),
            spec,
            opts,
        ),
        "he" => run_store(
            (0..n).map(|_| He::new(cap, SLOTS)).collect::<Vec<_>>(),
            spec,
            opts,
        ),
        "ibr" => run_store(
            (0..n).map(|_| Ibr::new(cap)).collect::<Vec<_>>(),
            spec,
            opts,
        ),
        "nbr" => run_store(
            (0..n).map(|_| Nbr::new(cap, SLOTS)).collect::<Vec<_>>(),
            spec,
            opts,
        ),
        other => unreachable!("scheme list is validated at parse time: {other}"),
    }
}

fn selected_specs(opts: &Options) -> Vec<ScenarioSpec> {
    if let Some(path) = &opts.spec_file {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read spec {}: {e}", path.display());
            std::process::exit(2);
        });
        let spec = ScenarioSpec::from_json(text.trim()).unwrap_or_else(|e| {
            eprintln!("cannot parse spec {}: {e}", path.display());
            std::process::exit(2);
        });
        return vec![spec];
    }
    let names: Vec<String> = if !opts.scenarios.is_empty() {
        opts.scenarios.clone()
    } else if opts.smoke {
        campaign::SMOKE.iter().map(|s| s.to_string()).collect()
    } else {
        return campaign::all();
    };
    names
        .iter()
        .map(|name| {
            campaign::by_name(name).unwrap_or_else(|| {
                eprintln!("unknown scenario {name} (try --list)");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() {
    let opts = parse_options();
    if opts.list {
        for spec in campaign::all() {
            println!(
                "{:24} seed 0x{:X}  {} shard(s), {} phase(s), bound {}",
                spec.name,
                spec.seed,
                spec.shards,
                spec.phases.len(),
                spec.bound
            );
        }
        return;
    }
    if let Some(dir) = &opts.flight_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --flight-dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let specs = selected_specs(&opts);
    let mut records = Vec::new();
    let mut failures = 0usize;
    for spec in &specs {
        for scheme in &opts.schemes {
            let rec = run_scheme(scheme, spec, &opts);
            println!(
                "{:4} {:24} {:5}  {}",
                if rec.pass { "ok" } else { "FAIL" },
                rec.scenario,
                rec.scheme,
                if rec.failed.is_empty() {
                    "all invariants held".to_string()
                } else {
                    format!("failed: {}", rec.failed.join(", "))
                }
            );
            if !rec.pass {
                failures += 1;
            }
            records.push(rec);
        }
    }
    println!(
        "\n{} run(s), {} failure(s) across {} scenario(s) × {} scheme(s)",
        records.len(),
        failures,
        specs.len(),
        opts.schemes.len()
    );
    if let Some(path) = &opts.report {
        match write_jsonl(path, &records) {
            Ok(()) => println!("wrote {} record(s) to {}", records.len(), path.display()),
            Err(e) => {
                eprintln!("failed to write report {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
