//! The scenario executor: drives one [`ScenarioSpec`] against a
//! [`KvStore`] over any [`Smr`] scheme, phase by phase, with the
//! adversities each phase declares, then evaluates the per-scheme
//! robustness invariants.
//!
//! The executor reuses the workload driver's thread-scope idiom
//! (`era_kv::workload::run_workload`): per phase, a navigator watchdog
//! thread (unless the phase serves TCP — the net server's own watchdog
//! replaces it), a footprint sampler, an optional Theorem-6.1
//! adversarial stalled reader, and seeded workers. Worker RNG streams
//! derive from `spec.seed` and the `(phase, worker)` pair, so the same
//! spec reproduces the same schedule of operations — and, because the
//! invariants are stated over the schemes' exact counters rather than
//! sampled values, the same verdicts.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use era_kv::{KvConfig, KvCtx, KvStore, ShardHealth};
use era_net::{read_frame, write_request, NetConfig, NetServer, Request, Response};
use era_obs::{DumpStats, FlightRecorder, Hook};
use era_smr::common::Smr;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::invariant::{evaluate, EvalInput, InvariantOutcome};
use crate::spec::{PhaseSpec, ScenarioSpec};

/// How often the navigator and footprint sampler threads poll (the
/// workload driver's cadence).
const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// Worker threads a serve-net phase's in-process server registers.
pub const NET_WORKERS: usize = 2;

/// Raw samples kept before the sampler stops appending (the record
/// downsamples further).
const CURVE_CAP: usize = 8_192;

/// Drain rounds in the epilogue. Each round advances every shard's op
/// clock by one, so 512 rounds also closes any chaos window (plans cap
/// windows at 256 ops) that was still open when the last phase ended.
const DRAIN_ROUNDS: usize = 512;

/// Knobs that belong to the invocation, not the scenario.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Where to write a `.eraflt` flight dump when the run fails
    /// (`None` disables dumping).
    pub flight_dump: Option<PathBuf>,
}

/// The store configuration a scenario implies: one scheme per shard,
/// budgets and ring capacity from the spec/flags.
pub fn kv_config(spec: &ScenarioSpec, ring_capacity: usize) -> KvConfig {
    KvConfig {
        retired_soft: spec.soft,
        retired_hard: spec.hard,
        max_threads: scheme_capacity(spec),
        ring_capacity,
        ..KvConfig::default()
    }
}

/// Thread capacity each shard's scheme needs: the spec's own estimate
/// plus the in-process net server's worker pool when any phase serves
/// TCP.
pub fn scheme_capacity(spec: &ScenarioSpec) -> usize {
    spec.capacity_needed()
        + if spec.phases.iter().any(|p| p.serve_net) {
            NET_WORKERS + 1
        } else {
            0
        }
}

/// What one phase did and left behind.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase label from the spec.
    pub label: String,
    /// Operations completed (client requests answered, for a serve-net
    /// phase).
    pub ops: u64,
    /// Writes shed by admission control during the phase.
    pub shed: u64,
    /// Wall-clock phase duration in milliseconds.
    pub elapsed_ms: u64,
    /// Max over shards of `retired_peak` at phase end (cumulative
    /// high-water — monotone across phases).
    pub peak: u64,
    /// Max over shards of `retired_now` at phase end.
    pub retired_end: u64,
    /// Health of every shard at the phase boundary.
    pub healths: Vec<ShardHealth>,
    /// Times the phase's stalled reader was neutralized and restarted.
    pub restarts: u64,
}

/// Everything one scenario run produced; [`crate::ScenarioRunRecord`]
/// serializes it.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The spec that was run (embedded in the record for replay).
    pub spec: ScenarioSpec,
    /// `Smr::name()` of the scheme under test.
    pub scheme: String,
    /// Whether the scheme is held to the robust bound.
    pub robust: bool,
    /// Per-phase results in timeline order.
    pub phases: Vec<PhaseOutcome>,
    /// The evaluated invariants.
    pub invariants: Vec<InvariantOutcome>,
    /// Conjunction of the invariants' `ok` flags.
    pub pass: bool,
    /// `(elapsed_ms, retired_now)` samples of the focus shard across
    /// the whole run — the footprint curve.
    pub footprint_curve: Vec<(u64, u64)>,
    /// Navigator counters over the whole run:
    /// health transitions observed.
    pub transitions: u64,
    /// Successful pin neutralizations.
    pub neutralizations: u64,
    /// Writes shed by admission control.
    pub sheds: u64,
    /// Orphan adoptions (`Hook::Adopt`) summed over shards.
    pub adoptions: u64,
    /// Trace events dropped by the shard rings (soak-length runs with
    /// small rings report the loss instead of hiding it).
    pub trace_dropped: u64,
    /// Whether the epilogue drain reached `retired_now == 0`.
    pub drained: bool,
    /// Max over shards of `retired_now` after heal + drain.
    pub final_retired: u64,
    /// Whole-run wall-clock in milliseconds.
    pub elapsed_ms: u64,
    /// Where the failure flight dump was written, if the run failed
    /// and dumping was enabled.
    pub flight_dump: Option<PathBuf>,
}

/// Registers a store-wide context, absorbing chaos `FailRegister` /
/// `FailAlloc` refusals (plans budget 1–4 refusals per injection, and
/// a refusal armed late in one phase survives into the next phase's
/// registration point — registrations are rare events on the op
/// clock). Bounded: a store that still refuses after 64 attempts has
/// a real capacity bug and should panic loudly.
fn register_retry<S: Smr>(store: &KvStore<'_, S>, who: &str) -> KvCtx<S> {
    for _ in 0..64 {
        match store.register() {
            Ok(ctx) => return ctx,
            Err(_) => std::thread::sleep(Duration::from_micros(200)),
        }
    }
    store
        .register()
        .unwrap_or_else(|e| panic!("{who} registration exhausted retries: {e}"))
}

/// Runs `spec` against `store` and evaluates the invariants.
///
/// The store must have been built with [`kv_config`] (or equivalent
/// budgets/capacity) over one scheme per shard; when the spec carries
/// a chaos plan, the caller wraps the target shard's scheme in
/// `era_chaos::ChaosSmr` before constructing the store — the executor
/// itself is scheme-agnostic.
///
/// # Panics
///
/// Panics when thread registration fails (undersized scheme capacity
/// — see [`scheme_capacity`]) or a worker thread panics.
pub fn run_scenario<S: Smr>(
    store: &KvStore<'_, S>,
    spec: &ScenarioSpec,
    opts: &RunOptions,
) -> ScenarioOutcome {
    spec.validate().expect("run_scenario needs a valid spec");
    let started = Instant::now();
    let focus = spec.focus_shard();
    let curve: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());

    // Prefill from a short-lived context (slot returns before phase 1).
    {
        let mut ctx = register_retry(store, "prefill");
        for k in 0..spec.prefill {
            let _ = store.put(&mut ctx, k as i64, k as i64);
        }
        store.flush(&mut ctx);
    }

    let mut phases = Vec::with_capacity(spec.phases.len());
    for (pi, phase) in spec.phases.iter().enumerate() {
        match phase.budgets {
            Some((soft, hard)) => store.set_budgets(soft, hard),
            None => store.set_budgets(spec.soft, spec.hard),
        }
        phases.push(run_phase(store, spec, pi, phase, started, focus, &curve));
    }

    // Epilogue: base budgets back, release nothing is pinned (every
    // phase's stall reader died with its scope), heal what degraded,
    // and drain. `heal` may fail while a chaos FailRegister window is
    // still open — the drain's op-clock advancement closes it, so try
    // again after.
    store.set_budgets(spec.soft, spec.hard);
    let mut ctx = register_retry(store, "epilogue");
    for si in 0..store.shard_count() {
        let _ = store.heal(&mut ctx, si);
    }
    let mut drained = store.drain(&mut ctx, DRAIN_ROUNDS);
    if !drained {
        for si in 0..store.shard_count() {
            let _ = store.heal(&mut ctx, si);
        }
        drained = store.drain(&mut ctx, DRAIN_ROUNDS);
    }
    drop(ctx);

    let stats = store.shard_stats();
    let healths: Vec<ShardHealth> = (0..store.shard_count()).map(|i| store.health(i)).collect();
    let (transitions, neutralizations, sheds) = store.nav_counters();
    let (mut adoptions, mut trace_dropped) = (0u64, 0u64);
    for i in 0..store.shard_count() {
        adoptions += store.recorder(i).metrics().hook_count(Hook::Adopt);
        trace_dropped += store.recorder(i).dropped();
    }

    let input = EvalInput {
        scheme: store.scheme(0).name().to_string(),
        bound: spec.bound as u64,
        soft: spec.soft as u64,
        max_peak: stats
            .iter()
            .map(|s| s.retired_peak as u64)
            .max()
            .unwrap_or(0),
        final_retired: stats
            .iter()
            .map(|s| s.retired_now as u64)
            .max()
            .unwrap_or(0),
        healths: healths.clone(),
        sheds,
        had_stall: spec.phases.iter().any(|p| p.stall_shard.is_some()),
        had_squeeze: spec.phases.iter().any(|p| {
            p.writes > 0
                && (p.quarantine_shard.is_some()
                    || p.budgets
                        .is_some_and(|(s, h)| s < spec.soft || h < spec.hard))
        }),
    };
    let invariants = evaluate(&input);
    let pass = invariants.iter().all(|o| o.ok);

    let mut flight_dump = None;
    if !pass {
        if let Some(path) = &opts.flight_dump {
            if write_failure_dump(store, path) {
                flight_dump = Some(path.clone());
            }
        }
    }

    ScenarioOutcome {
        spec: spec.clone(),
        scheme: input.scheme.clone(),
        robust: crate::invariant::is_robust_scheme(&input.scheme),
        phases,
        invariants,
        pass,
        footprint_curve: downsample(curve.into_inner().expect("sampler poisoned"), 128),
        transitions,
        neutralizations,
        sheds,
        adoptions,
        trace_dropped,
        drained,
        final_retired: input.final_retired,
        elapsed_ms: started.elapsed().as_millis() as u64,
        flight_dump,
    }
}

/// One phase under `std::thread::scope`: navigator + sampler + optional
/// stall reader + workers (or an in-process TCP server with client
/// load).
fn run_phase<S: Smr>(
    store: &KvStore<'_, S>,
    spec: &ScenarioSpec,
    pi: usize,
    phase: &PhaseSpec,
    started: Instant,
    focus: usize,
    curve: &Mutex<Vec<(u64, u64)>>,
) -> PhaseOutcome {
    let phase_started = Instant::now();
    if let Some(si) = phase.quarantine_shard {
        store.quarantine(si);
        // Deterministic admission probe: no navigator thread is
        // running yet, so the shard cannot recover between the
        // quarantine and these writes — each one must be refused by
        // the store's own admission control (counted as a shed). The
        // phase's workers then pile their own sheds on top as timing
        // allows.
        let mut probe = register_retry(store, "quarantine probe");
        let mut probed = 0;
        let mut key = phase.key_lo as i64;
        while probed < 4 && key < phase.key_hi as i64 {
            if store.shard_of(key) == si {
                let _ = store.put(&mut probe, key, key);
                probed += 1;
            }
            key += 1;
        }
        store.flush(&mut probe);
    }
    let done = AtomicBool::new(false);
    let restarts = AtomicU64::new(0);
    let total_ops = AtomicU64::new(0);
    let total_shed = AtomicU64::new(0);

    std::thread::scope(|s| {
        // The net server runs its own watchdog; otherwise the phase
        // gets a navigator thread only when the spec asks for one —
        // navigator-off phases are the baseline where a non-robust
        // scheme's footprint grows untouched.
        if phase.navigator && !phase.serve_net {
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    store.navigator_tick();
                    std::thread::sleep(POLL_INTERVAL);
                }
            });
        }

        // Footprint sampler: the focus shard's live retired count,
        // stamped with wall-clock since scenario start.
        s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                let now = store.scheme(focus).stats().retired_now as u64;
                let at = started.elapsed().as_millis() as u64;
                let mut c = curve.lock().expect("sampler lock");
                if c.len() < CURVE_CAP {
                    c.push((at, now));
                }
                drop(c);
                std::thread::sleep(POLL_INTERVAL);
            }
        });

        // The Theorem 6.1 adversary: pinned inside the shard's domain,
        // restarting (and promptly re-stalling) whenever neutralized.
        if let Some(si) = phase.stall_shard {
            let (done, restarts) = (&done, &restarts);
            s.spawn(move || {
                let smr = store.scheme(si);
                let mut ctx = loop {
                    // Same chaos tolerance as `register_retry`, at the
                    // single-scheme level; gives up when the phase ends
                    // before a slot frees.
                    match smr.register() {
                        Ok(ctx) => break ctx,
                        Err(_) if done.load(Ordering::Acquire) => return,
                        Err(_) => std::thread::sleep(Duration::from_micros(200)),
                    }
                };
                while !done.load(Ordering::Acquire) {
                    smr.begin_op(&mut ctx);
                    let mut neutralized = false;
                    while !done.load(Ordering::Relaxed) {
                        if smr.needs_restart(&mut ctx) {
                            neutralized = true;
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    smr.end_op(&mut ctx);
                    if neutralized {
                        // SAFETY(ordering): Relaxed — tally read after
                        // the scope joins this thread.
                        restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        if phase.serve_net {
            serve_phase(store, spec, pi, phase, &total_ops, &total_shed);
        } else {
            let workers: Vec<_> = (0..phase.threads)
                .map(|t| {
                    let (total_ops, total_shed) = (&total_ops, &total_shed);
                    s.spawn(move || {
                        let mut ctx: KvCtx<S> = register_retry(store, "worker");
                        let (mut rng, sampler) = worker_rng(spec, pi, t, phase);
                        let mut ops = 0u64;
                        let mut shed = 0u64;
                        for _ in 0..phase.ops_per_thread {
                            let key = phase.key_lo as i64 + sampler.sample(&mut rng);
                            let roll = rng.random_range(0..100u32);
                            if roll < phase.reads {
                                let _ = store.get(&mut ctx, key);
                            } else if roll < phase.reads + phase.writes {
                                if store.put(&mut ctx, key, key).is_err() {
                                    shed += 1;
                                    std::thread::yield_now();
                                }
                            } else if store.remove(&mut ctx, key).is_err() {
                                shed += 1;
                                std::thread::yield_now();
                            }
                            ops += 1;
                        }
                        store.flush(&mut ctx);
                        // SAFETY(ordering): Relaxed — phase totals,
                        // read only after the joins below.
                        total_ops.fetch_add(ops, Ordering::Relaxed);
                        total_shed.fetch_add(shed, Ordering::Relaxed);
                    })
                })
                .collect();
            let mut worker_panic = false;
            for w in workers {
                worker_panic |= w.join().is_err();
            }
            // Publish `done` BEFORE propagating a worker panic, or the
            // navigator/sampler/stall threads never exit their polling
            // loops and the scope deadlocks instead of failing.
            // SAFETY(ordering): Release — pairs with the stall
            // harness's Relaxed polling loop.
            done.store(true, Ordering::Release);
            assert!(!worker_panic, "scenario worker panicked");
        }
        done.store(true, Ordering::Release);
    });

    let stats = store.shard_stats();
    PhaseOutcome {
        label: phase.label.clone(),
        ops: total_ops.load(Ordering::Relaxed),
        shed: total_shed.load(Ordering::Relaxed),
        elapsed_ms: phase_started.elapsed().as_millis() as u64,
        peak: stats
            .iter()
            .map(|s| s.retired_peak as u64)
            .max()
            .unwrap_or(0),
        retired_end: stats
            .iter()
            .map(|s| s.retired_now as u64)
            .max()
            .unwrap_or(0),
        healths: (0..store.shard_count()).map(|i| store.health(i)).collect(),
        restarts: restarts.load(Ordering::Relaxed),
    }
}

/// A serve-net phase: bind an in-process `era-net` server on loopback,
/// run it in its own scope, and load it with `phase.threads` pipelined
/// client connections issuing the phase's mix.
fn serve_phase<S: Smr>(
    store: &KvStore<'_, S>,
    spec: &ScenarioSpec,
    pi: usize,
    phase: &PhaseSpec,
    total_ops: &AtomicU64,
    total_shed: &AtomicU64,
) {
    let cfg = NetConfig {
        workers: NET_WORKERS,
        ring_capacity: store.config().ring_capacity,
        ..NetConfig::default()
    };
    let server = NetServer::bind(store, cfg, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|s| {
        let srv = s.spawn(|| server.run().expect("server run"));
        let clients: Vec<_> = (0..phase.threads)
            .map(|t| {
                s.spawn(move || {
                    let mut conn = TcpStream::connect(addr).expect("connect loopback");
                    conn.set_nodelay(true).ok();
                    let (mut rng, sampler) = worker_rng(spec, pi, t, phase);
                    let mut scratch = Vec::new();
                    let (mut ops, mut shed) = (0u64, 0u64);
                    let mut sent = 0usize;
                    let mut issued = 0usize;
                    while issued < phase.ops_per_thread {
                        // Pipeline a small burst, then read it back.
                        while sent < 8 && issued < phase.ops_per_thread {
                            let key = phase.key_lo as i64 + sampler.sample(&mut rng);
                            let roll = rng.random_range(0..100u32);
                            let req = if roll < phase.reads {
                                Request::Get { key }
                            } else if roll < phase.reads + phase.writes {
                                Request::Put { key, value: key }
                            } else {
                                Request::Remove { key }
                            };
                            write_request(&mut conn, &req).expect("client write");
                            sent += 1;
                            issued += 1;
                        }
                        while sent > 0 {
                            let frame = read_frame(&mut conn, &mut scratch)
                                .expect("client read")
                                .expect("server closed mid-burst");
                            if let Response::Error(_) =
                                Response::decode(frame).expect("client decode")
                            {
                                shed += 1;
                            }
                            ops += 1;
                            sent -= 1;
                        }
                    }
                    drop(conn);
                    (ops, shed)
                })
            })
            .collect();
        let mut client_panic = false;
        for c in clients {
            match c.join() {
                Ok((ops, shed)) => {
                    // SAFETY(ordering): Relaxed — phase totals, read
                    // after the scope exits.
                    total_ops.fetch_add(ops, Ordering::Relaxed);
                    total_shed.fetch_add(shed, Ordering::Relaxed);
                }
                Err(_) => client_panic = true,
            }
        }
        // Shut the server down BEFORE propagating a client panic, or
        // the acceptor thread outlives the scope and it deadlocks.
        handle.shutdown();
        let server_panic = srv.join().is_err();
        assert!(!client_panic, "net client panicked");
        assert!(!server_panic, "net server panicked");
    });
}

/// The seeded RNG and key sampler of worker `t` in phase `pi` — the
/// workload driver's derivation, salted with the phase index so phases
/// draw independent streams.
fn worker_rng(
    spec: &ScenarioSpec,
    pi: usize,
    t: usize,
    phase: &PhaseSpec,
) -> (StdRng, era_kv::workload::KeySampler) {
    let salt = (((pi as u64) << 32) | t as u64).wrapping_add(1);
    let rng = StdRng::seed_from_u64(spec.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let window = (phase.key_hi - phase.key_lo) as i64;
    (rng, phase.dist().sampler(window))
}

/// Writes a `.eraflt` dump of every shard's retained trace + exact
/// stats; returns whether the write succeeded (failure to dump must
/// not mask the scenario verdict).
fn write_failure_dump<S: Smr>(store: &KvStore<'_, S>, path: &std::path::Path) -> bool {
    let flight = FlightRecorder::new();
    for i in 0..store.shard_count() {
        flight.add_source(&format!("shard{i}"), store.recorder(i));
    }
    flight.poll();
    for i in 0..store.shard_count() {
        let st = store.scheme(i).stats();
        flight.set_stats(
            i,
            DumpStats {
                retired_now: st.retired_now as u64,
                retired_peak: st.retired_peak as u64,
                total_retired: st.total_retired,
                total_reclaimed: st.total_reclaimed,
                era: st.era,
            },
        );
    }
    flight.snapshot_to_file(path).is_ok()
}

/// Keeps at most `max` evenly spaced samples (always including the
/// last — the recovery tail is the interesting part).
fn downsample(curve: Vec<(u64, u64)>, max: usize) -> Vec<(u64, u64)> {
    if curve.len() <= max || max < 2 {
        return curve;
    }
    let last = curve.len() - 1;
    let mut out: Vec<(u64, u64)> = (0..max - 1).map(|i| curve[i * last / (max - 1)]).collect();
    out.push(curve[last]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_ends_and_spacing() {
        let curve: Vec<(u64, u64)> = (0..1000).map(|i| (i, i * 2)).collect();
        let out = downsample(curve.clone(), 128);
        assert_eq!(out.len(), 128);
        assert_eq!(out[0], (0, 0));
        assert_eq!(*out.last().unwrap(), (999, 1998));
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "monotone");
        assert_eq!(downsample(curve[..50].to_vec(), 128).len(), 50);
    }

    #[test]
    fn worker_rng_streams_differ_by_phase_and_thread() {
        let spec = ScenarioSpec {
            name: "t".into(),
            seed: 7,
            shards: 1,
            soft: 512,
            hard: 2048,
            bound: 2048,
            prefill: 0,
            chaos: None,
            phases: vec![PhaseSpec::churn("a"), PhaseSpec::churn("b")],
        };
        let draw = |pi: usize, t: usize| {
            let (mut rng, sampler) = worker_rng(&spec, pi, t, &spec.phases[pi]);
            (0..8).map(|_| sampler.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(0, 0), draw(0, 0), "deterministic");
        assert_ne!(draw(0, 0), draw(0, 1), "per-thread stream");
        assert_ne!(draw(0, 0), draw(1, 0), "per-phase stream");
    }
}
