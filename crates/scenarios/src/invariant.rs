//! Per-scheme robustness invariants, evaluated at end-of-run.
//!
//! The ERA theorem's robustness axis (paper Def. 4.2) says a robust
//! scheme bounds the memory an adversarial schedule can trap: stalled
//! or dead readers may hold *some* retired nodes hostage, but the
//! total stays within a bound independent of how long the stall lasts.
//! Non-robust schemes (EBR, QSBR) have no such bound — one stalled
//! reader freezes the epoch and the footprint grows with every retire.
//!
//! A scenario run turns that statement into executable checks over the
//! schemes' exact counters (`retired_peak` is a cumulative high-water
//! mark maintained by every scheme, so the checks are deterministic —
//! no sampling races):
//!
//! | invariant              | applies to           | passes when |
//! |------------------------|----------------------|-------------|
//! | `bounded-footprint`    | robust schemes       | every shard's `retired_peak` ≤ spec `bound` |
//! | `blowout-visible`      | non-robust + a stalled phase | some shard's `retired_peak` > spec `bound` |
//! | `recovers-after-drain` | all                  | final `retired_now` ≤ soft budget ÷ 2 after heal + drain |
//! | `healthy-at-end`       | all                  | every shard classified `Robust` at end-of-run |
//! | `sheds-under-pressure` | runs with a tightened-budget write phase | at least one shed observed |
//!
//! VBR is robust per the paper but arena-based — it does not implement
//! the node-granularity `Smr` trait, so campaigns cover the six
//! pointer-based schemes and DESIGN §3.13 records the exclusion.

use era_kv::ShardHealth;
use era_obs::report::JsonObject;

/// Whether a scheme (by its `Smr::name()`, e.g. `"EBR"`) is robust in
/// the paper's Def. 4.2 sense. This is DESIGN's ERA matrix, robustness
/// column: HP, HE, IBR, and NBR bound trapped memory; EBR and QSBR do
/// not. Unknown names are treated as non-robust so a new scheme must
/// opt in explicitly before the strict bound is asserted against it.
pub fn is_robust_scheme(name: &str) -> bool {
    matches!(name, "HP" | "HE" | "IBR" | "NBR")
}

/// One evaluated invariant: what was measured against what limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantOutcome {
    /// Stable invariant name (table in the module docs).
    pub name: &'static str,
    /// Whether the invariant held.
    pub ok: bool,
    /// The measured value (peak, residue, worst health, or shed
    /// count — see the invariant's definition).
    pub observed: u64,
    /// The limit it was compared against.
    pub limit: u64,
}

impl InvariantOutcome {
    /// Serializes the outcome as a JSON object fragment.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("name", self.name)
            .bool("ok", self.ok)
            .u64("observed", self.observed)
            .u64("limit", self.limit)
            .finish()
    }
}

/// Everything the end-of-run evaluation needs, already folded down
/// from per-shard scheme stats by the executor.
#[derive(Debug, Clone)]
pub struct EvalInput {
    /// `Smr::name()` of the scheme under test.
    pub scheme: String,
    /// The spec's Def-4.2-style footprint bound.
    pub bound: u64,
    /// The spec's base soft budget (recovery residue limit is half).
    pub soft: u64,
    /// Max over shards of `retired_peak` at end-of-run.
    pub max_peak: u64,
    /// Max over shards of `retired_now` after heal + drain.
    pub final_retired: u64,
    /// End-of-run navigator classification of every shard.
    pub healths: Vec<ShardHealth>,
    /// Total writes shed across the whole run.
    pub sheds: u64,
    /// Whether any phase pinned a stalled reader.
    pub had_stall: bool,
    /// Whether any write-carrying phase tightened budgets below the
    /// scenario's base budgets.
    pub had_squeeze: bool,
}

/// Evaluates every applicable invariant. The returned list is what the
/// record serializes; the run verdict is the conjunction of `ok`s.
pub fn evaluate(input: &EvalInput) -> Vec<InvariantOutcome> {
    let robust = is_robust_scheme(&input.scheme);
    let mut out = Vec::new();
    if robust {
        out.push(InvariantOutcome {
            name: "bounded-footprint",
            ok: input.max_peak <= input.bound,
            observed: input.max_peak,
            limit: input.bound,
        });
    } else if input.had_stall {
        // The theorem's negative direction, asserted: a non-robust
        // scheme that *failed* to blow the bound under a stalled
        // reader means the adversary (or the bound) is miscalibrated
        // and the headline experiment proves nothing.
        out.push(InvariantOutcome {
            name: "blowout-visible",
            ok: input.max_peak > input.bound,
            observed: input.max_peak,
            limit: input.bound,
        });
    }
    let residue_limit = (input.soft / 2).max(1);
    out.push(InvariantOutcome {
        name: "recovers-after-drain",
        ok: input.final_retired <= residue_limit,
        observed: input.final_retired,
        limit: residue_limit,
    });
    let worst = input
        .healths
        .iter()
        .map(|h| *h as u64)
        .max()
        .unwrap_or(ShardHealth::Quarantined as u64);
    out.push(InvariantOutcome {
        name: "healthy-at-end",
        ok: worst == ShardHealth::Robust as u64,
        observed: worst,
        limit: ShardHealth::Robust as u64,
    });
    if input.had_squeeze {
        out.push(InvariantOutcome {
            name: "sheds-under-pressure",
            ok: input.sheds > 0,
            observed: input.sheds,
            limit: 1,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(scheme: &str) -> EvalInput {
        EvalInput {
            scheme: scheme.to_string(),
            bound: 2048,
            soft: 512,
            max_peak: 300,
            final_retired: 0,
            healths: vec![ShardHealth::Robust, ShardHealth::Robust],
            sheds: 0,
            had_stall: true,
            had_squeeze: false,
        }
    }

    #[test]
    fn robustness_matrix_matches_design() {
        for s in ["HP", "HE", "IBR", "NBR"] {
            assert!(is_robust_scheme(s), "{s} is robust per Def 4.2");
        }
        for s in ["EBR", "QSBR", "VBR", "made-up"] {
            assert!(!is_robust_scheme(s), "{s} must not get the strict bound");
        }
    }

    #[test]
    fn robust_scheme_passes_within_bound_and_fails_past_it() {
        let input = base("HP");
        let out = evaluate(&input);
        let bf = out.iter().find(|o| o.name == "bounded-footprint").unwrap();
        assert!(bf.ok);
        assert!(!out.iter().any(|o| o.name == "blowout-visible"));
        let mut blown = base("IBR");
        blown.max_peak = 5_000;
        let out = evaluate(&blown);
        assert!(
            !out.iter()
                .find(|o| o.name == "bounded-footprint")
                .unwrap()
                .ok
        );
    }

    #[test]
    fn non_robust_scheme_must_visibly_blow_the_bound_when_stalled() {
        let mut input = base("EBR");
        input.max_peak = 9_000;
        let out = evaluate(&input);
        let bv = out.iter().find(|o| o.name == "blowout-visible").unwrap();
        assert!(bv.ok, "a big peak under stall is the *expected* outcome");
        input.max_peak = 100;
        let out = evaluate(&input);
        assert!(
            !out.iter().find(|o| o.name == "blowout-visible").unwrap().ok,
            "staying under the bound means the adversary is miscalibrated"
        );
        // Without a stall the negative invariant is inapplicable.
        input.had_stall = false;
        assert!(!evaluate(&input).iter().any(|o| o.name == "blowout-visible"));
    }

    #[test]
    fn recovery_health_and_shed_invariants() {
        let mut input = base("HP");
        input.final_retired = 10_000;
        input.healths = vec![ShardHealth::Robust, ShardHealth::Quarantined];
        input.had_squeeze = true;
        let out = evaluate(&input);
        assert!(
            !out.iter()
                .find(|o| o.name == "recovers-after-drain")
                .unwrap()
                .ok
        );
        assert!(!out.iter().find(|o| o.name == "healthy-at-end").unwrap().ok);
        assert!(
            !out.iter()
                .find(|o| o.name == "sheds-under-pressure")
                .unwrap()
                .ok
        );
        input.final_retired = 5;
        input.healths = vec![ShardHealth::Robust];
        input.sheds = 12;
        let out = evaluate(&input);
        assert!(out.iter().all(|o| o.ok));
        let json = out[0].to_json();
        assert!(json.contains("\"ok\":true"), "{json}");
    }
}
