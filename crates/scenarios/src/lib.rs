//! era-scenarios: seeded adversarial workload campaigns with
//! per-scheme robustness invariants.
//!
//! This crate composes the rest of the workspace — the `era-kv` store
//! with its navigator, the `era-chaos` fault injector, the `era-net`
//! TCP front-end, and the `era-obs` flight recorder — into named,
//! replayable **scenarios**: multi-phase adversarial campaigns whose
//! pass/fail verdicts restate the ERA theorem's robustness axis as
//! executable invariants (DESIGN §3.13, EXPERIMENTS E14).
//!
//! A [`ScenarioSpec`] is plain data with a JSON round-trip, like the
//! chaos `FaultPlan`: the same spec and seed reproduce the same
//! verdicts. The executor ([`run::run_scenario`]) drives any
//! [`era_smr::common::Smr`] scheme through the spec's phases —
//! read-mostly ↔ write-storm shifts, moving zipfian hot sets,
//! breathing key ranges, oversubscription, stalled readers, chaos
//! plans, budget squeezes, and in-process TCP serving — with the
//! flight recorder armed, then evaluates per-scheme invariants
//! ([`invariant`]): robust schemes must keep `retired_peak` within a
//! Def-4.2-style bound through it all; non-robust schemes must
//! *visibly blow* the bound under a stalled reader and recover after
//! heal/drain. The built-in campaign lives in [`campaign`]; records in
//! [`report`].

pub mod campaign;
pub mod invariant;
pub mod report;
pub mod run;
pub mod spec;

pub use invariant::{is_robust_scheme, InvariantOutcome};
pub use report::ScenarioRunRecord;
pub use run::{run_scenario, RunOptions, ScenarioOutcome};
pub use spec::{ChaosSpec, PhaseSpec, ScenarioSpec, SpecParseError};
