//! # era-chaos — deterministic fault injection for the era schemes
//!
//! The robustness story of the ERA theorem is adversarial: a scheme's
//! footprint bound only matters under the *worst* scheduling — threads
//! dying while pinned, announcements frozen, flushes delayed, slots
//! exhausted. This crate turns those adversaries into a reusable,
//! **replayable** harness:
//!
//! * [`FaultPlan`] / [`FaultAction`] — a seeded, serializable schedule
//!   of injections (one JSON line; hand-rolled emitter + parser, no
//!   serialization dependency). Same plan + same single-threaded
//!   workload ⇒ same fault log and same final
//!   [`SmrStats`](era_smr::SmrStats), twice over.
//! * [`ChaosSmr`] — an [`Smr`](era_smr::Smr) decorator for the seven
//!   pointer-based schemes (EBR, HP, HE, IBR, NBR, QSBR, leak). It
//!   delegates every call and fires plan actions off a global op
//!   clock: die-pinned context drops (with orphaned canary garbage),
//!   stalled announcements, delayed/reordered flushes, injected
//!   registration failures, registry-slot exhaustion, spurious
//!   `needs_restart` storms.
//! * [`ChaosArena`] — the VBR counterpart: allocation-failure
//!   injection against [`era_smr::vbr::Arena`] (VBR's contextless,
//!   retire-is-reclaim design makes the other faults vacuous — they
//!   fire as recorded no-ops to keep replay sequences aligned).
//!
//! Injections go through the schemes' **public surface only**, so a
//! chaos run exercises exactly the guarantees production code relies
//! on: slot release on death, orphan adoption ([`Hook::Adopt`]
//! (era_obs::Hook)), bounded footprint under stalls. Fired faults are
//! logged ([`ChaosSmr::fault_log`]) and emitted as
//! [`Hook::Fault`](era_obs::Hook) events under [`CHAOS_THREAD`].
//!
//! ## Feature flags
//!
//! * `inject` (default) — compiles the fault machinery. Without it the
//!   wrappers are pure delegation (zero cost), so release binaries can
//!   keep chaos types in their plumbing.
//! * `trace` (default) — era-obs runtime, as in the sibling crates.

#![warn(missing_docs)]

pub mod arena;
pub mod decorator;
pub mod plan;

pub use arena::ChaosArena;
pub use decorator::{ChaosSmr, FaultRecord, CHAOS_THREAD};
pub use plan::{FaultAction, FaultPlan, PlanParseError};
