//! [`ChaosArena`]: fault injection for the VBR arena.
//!
//! VBR is the odd scheme out: no thread contexts, no registry slots,
//! no deferred garbage — retire *is* reclaim under version stamps, so
//! "die pinned" and "stall" faults are vacuous by construction (type
//! stability is what the scheme trades applicability for). What *can*
//! break at runtime is allocation: the fixed arena fills, or the free
//! list churns under contention. The wrapper therefore drives the same
//! [`FaultPlan`] format with its clock bumped per `alloc`, and maps
//! allocation-flavoured actions (`fail_alloc`, `fail_register`) to
//! injected [`ArenaFull`] results; every other action fires as a
//! recorded no-op so a plan replayed across all eight schemes keeps an
//! identical fault *sequence* even where an action has no VBR effect.

use era_obs::Recorder;
#[cfg(feature = "inject")]
use era_obs::{Hook, SchemeId, ThreadTracer};
use era_smr::vbr::{Arena, ArenaFull, Handle, Stale};
#[cfg(feature = "inject")]
use era_smr::CachePadded;
use era_smr::SmrStats;

#[cfg(feature = "inject")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "inject")]
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::decorator::FaultRecord;
#[cfg(feature = "inject")]
use crate::CHAOS_THREAD;
use crate::{FaultAction, FaultPlan};

#[cfg(feature = "inject")]
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(feature = "inject")]
struct ArenaRt {
    pending: Vec<FaultAction>,
    cursor: usize,
    log: Vec<FaultRecord>,
}

#[cfg(feature = "inject")]
struct ArenaState {
    clock: CachePadded<AtomicU64>,
    next_wake: CachePadded<AtomicU64>,
    /// Remaining injected allocation failures.
    alloc_fail: AtomicU64,
    faults: AtomicU64,
    rt: Mutex<ArenaRt>,
    tracer: OnceLock<Mutex<ThreadTracer>>,
}

/// A fault-injecting wrapper around [`era_smr::vbr::Arena`].
///
/// Delegates the full arena surface; `alloc` additionally ticks the
/// chaos clock, fires due plan actions, and consumes any injected
/// failure budget (returning [`ArenaFull`] with capacity to spare).
///
/// ```
/// use era_chaos::{ChaosArena, FaultAction, FaultPlan};
///
/// let plan = FaultPlan::new(0, vec![FaultAction::FailAlloc { at_op: 2, count: 1 }]);
/// let arena: ChaosArena<2> = ChaosArena::new(8, plan);
/// assert!(arena.alloc().is_ok());
/// # #[cfg(feature = "inject")]
/// assert!(arena.alloc().is_err(), "injected ArenaFull");
/// assert!(arena.alloc().is_ok());
/// ```
pub struct ChaosArena<const C: usize> {
    inner: Arena<C>,
    plan: FaultPlan,
    #[cfg(feature = "inject")]
    st: ArenaState,
}

impl<const C: usize> std::fmt::Debug for ChaosArena<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosArena")
            .field("capacity", &self.inner.capacity())
            .field("planned", &self.plan.ops.len())
            .finish()
    }
}

impl<const C: usize> ChaosArena<C> {
    /// An arena of `capacity` nodes with `plan` armed.
    pub fn new(capacity: usize, plan: FaultPlan) -> ChaosArena<C> {
        let plan = FaultPlan::new(plan.seed, plan.ops);
        #[cfg(feature = "inject")]
        let st = ArenaState {
            clock: CachePadded::new(AtomicU64::new(0)),
            next_wake: CachePadded::new(AtomicU64::new(
                plan.ops.first().map_or(u64::MAX, |a| a.at_op()),
            )),
            alloc_fail: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            rt: Mutex::new(ArenaRt {
                pending: plan.ops.clone(),
                cursor: 0,
                log: Vec::new(),
            }),
            tracer: OnceLock::new(),
        };
        ChaosArena {
            inner: Arena::new(capacity),
            plan,
            #[cfg(feature = "inject")]
            st,
        }
    }

    /// A transparent wrapper (empty plan).
    pub fn transparent(capacity: usize) -> ChaosArena<C> {
        ChaosArena::new(capacity, FaultPlan::empty())
    }

    /// The wrapped arena.
    pub fn inner(&self) -> &Arena<C> {
        &self.inner
    }

    /// The armed plan (sorted).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults fired so far.
    pub fn faults_injected(&self) -> u64 {
        #[cfg(feature = "inject")]
        {
            self.st.faults.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "inject"))]
        0
    }

    /// The faults fired so far, in firing order.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        #[cfg(feature = "inject")]
        {
            lock(&self.st.rt).log.clone()
        }
        #[cfg(not(feature = "inject"))]
        Vec::new()
    }

    #[cfg(feature = "inject")]
    fn poll(&self, op: u64) {
        let mut rt = lock(&self.st.rt);
        while rt.cursor < rt.pending.len() && rt.pending[rt.cursor].at_op() <= op {
            let action = rt.pending[rt.cursor];
            rt.cursor += 1;
            if let FaultAction::FailAlloc { count, .. } | FaultAction::FailRegister { count, .. } =
                action
            {
                // SAFETY(ordering): Relaxed — a monotone failure budget
                // consumed by CAS in alloc(); only a count, no payload.
                self.st
                    .alloc_fail
                    .fetch_add(count.max(1), Ordering::Relaxed);
            }
            rt.log.push(FaultRecord {
                kind: action.kind(),
                planned_at: action.at_op(),
                fired_at: op,
            });
            // SAFETY(ordering): Relaxed — run-level fault tally, read
            // by assertions after the run.
            self.st.faults.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.st.tracer.get() {
                lock(t).emit(Hook::Fault, action.kind() as u64, op);
            }
        }
        let wake = rt.pending.get(rt.cursor).map_or(u64::MAX, |a| a.at_op());
        // SAFETY(ordering): Relaxed — advisory fast-path gate; a stale
        // read costs one extra poll() under the rt lock.
        self.st.next_wake.store(wake, Ordering::Relaxed);
    }

    /// Allocates a node, chaos permitting.
    ///
    /// # Errors
    ///
    /// [`ArenaFull`] when the arena is genuinely full *or* an injected
    /// allocation-failure budget is armed.
    pub fn alloc(&self) -> Result<Handle, ArenaFull> {
        #[cfg(feature = "inject")]
        {
            // SAFETY(ordering): Relaxed — the alloc clock orders faults
            // against this thread's own allocs; cross-thread slack is
            // part of the chaos model.
            let op = self.st.clock.fetch_add(1, Ordering::Relaxed) + 1;
            if op >= self.st.next_wake.load(Ordering::Relaxed) {
                self.poll(op);
            }
            let mut n = self.st.alloc_fail.load(Ordering::Relaxed);
            while n > 0 {
                // SAFETY(ordering): Relaxed/Relaxed — budget decrement;
                // atomicity alone bounds failures to the planned count.
                match self.st.alloc_fail.compare_exchange_weak(
                    n,
                    n - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Err(ArenaFull),
                    Err(cur) => n = cur,
                }
            }
        }
        self.inner.alloc()
    }

    /// See [`Arena::retire`].
    ///
    /// # Errors
    ///
    /// [`Stale`] when the handle's version lost.
    pub fn retire(&self, h: Handle) -> Result<(), Stale> {
        self.inner.retire(h)
    }

    /// See [`Arena::read`].
    ///
    /// # Errors
    ///
    /// [`Stale`] when the handle's version lost.
    pub fn read(&self, h: Handle, cell: usize) -> Result<u64, Stale> {
        self.inner.read(h, cell)
    }

    /// See [`Arena::write`].
    ///
    /// # Errors
    ///
    /// [`Stale`] when the handle's version lost.
    pub fn write(&self, h: Handle, cell: usize, value: u64) -> Result<(), Stale> {
        self.inner.write(h, cell, value)
    }

    /// See [`Arena::cas`].
    ///
    /// # Errors
    ///
    /// [`Stale`] when the handle's version lost.
    pub fn cas(&self, h: Handle, cell: usize, expected: u64, new: u64) -> Result<bool, Stale> {
        self.inner.cas(h, cell, expected, new)
    }

    /// See [`Arena::validate`].
    ///
    /// # Errors
    ///
    /// [`Stale`] when the handle's version lost.
    pub fn validate(&self, h: Handle) -> Result<(), Stale> {
        self.inner.validate(h)
    }

    /// See [`Arena::upgrade`].
    ///
    /// # Errors
    ///
    /// [`Stale`] when the packed payload no longer names a live node.
    pub fn upgrade(&self, payload: u64) -> Result<(Handle, bool), Stale> {
        self.inner.upgrade(payload)
    }

    /// See [`Arena::capacity`].
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// See [`Arena::live`].
    pub fn live(&self) -> usize {
        self.inner.live()
    }

    /// See [`Arena::stats`].
    pub fn stats(&self) -> SmrStats {
        self.inner.stats()
    }

    /// Attaches a recorder to the arena and to the chaos tracer
    /// (injected faults emit as `Hook::Fault` under
    /// [`crate::CHAOS_THREAD`]).
    pub fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.attach_recorder(recorder);
        #[cfg(feature = "inject")]
        let _ = self
            .st
            .tracer
            .set(Mutex::new(recorder.tracer(CHAOS_THREAD, SchemeId::VBR)));
        #[cfg(not(feature = "inject"))]
        let _ = recorder;
    }
}

#[cfg(all(test, feature = "inject"))]
mod tests {
    use super::*;

    #[test]
    fn transparent_arena_delegates() {
        let arena: ChaosArena<2> = ChaosArena::transparent(4);
        let h = arena.alloc().unwrap();
        arena.write(h, 0, 42).unwrap();
        assert_eq!(arena.read(h, 0).unwrap(), 42);
        assert!(arena.cas(h, 0, 42, 43).unwrap());
        arena.validate(h).unwrap();
        let (h2, mark) = arena.upgrade(h.pack(false)).unwrap();
        assert_eq!((h2, mark), (h, false));
        arena.retire(h).unwrap();
        assert!(arena.read(h, 0).is_err(), "retired handle is stale");
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.faults_injected(), 0);
    }

    #[test]
    fn injected_alloc_failures_then_recovery() {
        let plan = FaultPlan::new(0, vec![FaultAction::FailAlloc { at_op: 2, count: 2 }]);
        let arena: ChaosArena<1> = ChaosArena::new(8, plan);
        let a = arena.alloc().unwrap();
        assert!(arena.alloc().is_err(), "first injected failure");
        assert!(arena.alloc().is_err(), "second injected failure");
        let b = arena.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(arena.faults_injected(), 1);
        assert_eq!(arena.fault_log()[0].kind, 6);
        // The injected failures consumed no capacity: fill the rest.
        let mut held = vec![a, b];
        while let Ok(h) = arena.alloc() {
            held.push(h);
        }
        assert_eq!(held.len(), 8, "injected ArenaFull must not eat slots");
        for h in held {
            arena.retire(h).unwrap();
        }
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn non_alloc_actions_fire_as_recorded_noops() {
        let plan = FaultPlan::new(
            0,
            vec![
                FaultAction::DiePinned { at_op: 1 },
                FaultAction::StallThread {
                    at_op: 1,
                    for_ops: 4,
                },
            ],
        );
        let arena: ChaosArena<1> = ChaosArena::new(2, plan);
        let h = arena.alloc().unwrap();
        arena.retire(h).unwrap();
        assert_eq!(arena.faults_injected(), 2, "sequence preserved");
        assert!(arena.alloc().is_ok(), "no VBR effect");
    }
}
