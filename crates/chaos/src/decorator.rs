//! [`ChaosSmr`]: an [`Smr`] that delegates to any scheme while firing
//! a [`FaultPlan`] against it.
//!
//! The decorator keeps a global **op clock** (bumped once per
//! `begin_op`) and fires each planned action the first time the clock
//! reaches its `at_op`. All injected state lives behind one fast-path
//! gate: `begin_op` pays one relaxed `fetch_add` plus one relaxed load
//! (`next_wake`) until the next interesting op, and with the `inject`
//! feature off the decorator compiles to pure delegation. Faults are
//! *scheme-level* events — dead pinned contexts, frozen announcements,
//! suppressed flushes, refused registrations — injected through the
//! public `Smr` surface only, so whatever safety property the inner
//! scheme claims is exactly what the chaos run is testing.
//!
//! Every fired action is appended to an in-memory fault log and, with
//! a recorder attached, emitted as [`Hook::Fault`] (`a` = action kind,
//! `b` = the clock reading it fired at). Identical plans against
//! identical single-threaded workloads produce identical logs and
//! final [`SmrStats`] — the determinism the replay tests pin down.

use era_obs::Recorder;
#[cfg(feature = "inject")]
use era_obs::{Hook, SchemeId, ThreadTracer};
use era_smr::common::DropFn;
#[cfg(feature = "inject")]
use era_smr::CachePadded;
use era_smr::{EpochProtected, RegisterError, Smr, SmrHeader, SmrStats, SupportsUnlinkedTraversal};

#[cfg(feature = "inject")]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(feature = "inject")]
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::plan::{FaultAction, FaultPlan};

/// Thread slot the decorator's service tracer emits `Hook::Fault`
/// under. Stays clear of real worker slots and the other service slots
/// (`u16::MAX` smr-internal, `u16::MAX - 1` bench sampler,
/// `u16::MAX - 2` kv navigator).
pub const CHAOS_THREAD: u16 = u16::MAX - 3;

/// Canary nodes a die-pinned victim retires before dying, so every
/// death leaves orphaned garbage for the survivors to adopt.
#[cfg(feature = "inject")]
const DIE_PINNED_GARBAGE: usize = 4;

/// Hard cap on contexts a single `ExhaustSlots` action will hold.
#[cfg(feature = "inject")]
const EXHAUST_CAP: usize = 4096;

/// One fired fault, in firing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// [`FaultAction::kind`] of the fired action.
    pub kind: u8,
    /// The op index the plan scheduled it for.
    pub planned_at: u64,
    /// The op-clock reading it actually fired at (≥ `planned_at`).
    pub fired_at: u64,
}

/// The node type die-pinned victims retire: a real header (HE/IBR read
/// the birth era from it) plus a payload word.
#[cfg(feature = "inject")]
#[repr(C)]
struct ChaosNode {
    header: SmrHeader,
    payload: u64,
}

/// Reclaims a [`ChaosNode`] retired by a `DiePinned` fault.
///
/// # Safety
///
/// `p` must be the `Box::into_raw` pointer of a live `ChaosNode`; the
/// SMR scheme guarantees it is passed here exactly once.
#[cfg(feature = "inject")]
unsafe fn free_chaos_node(p: *mut u8) {
    unsafe { drop(Box::from_raw(p as *mut ChaosNode)) }
}

#[cfg(feature = "inject")]
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Mutable runtime of an injecting decorator (cold path: only touched
/// when the op clock crosses `next_wake`).
#[cfg(feature = "inject")]
struct Rt<C> {
    /// The plan's actions, sorted by fire index; `cursor` marks the
    /// first not-yet-fired one.
    pending: Vec<FaultAction>,
    cursor: usize,
    /// Pinned victims frozen until the clock passes their release op.
    stalled: Vec<(u64, C)>,
    /// Hostage contexts from `ExhaustSlots`, released in bulk.
    hostages: Vec<(u64, Vec<C>)>,
    /// Flushes swallowed during a `DelayFlush` window, replayed (once)
    /// when it closes.
    deferred_flushes: u64,
    log: Vec<FaultRecord>,
}

#[cfg(feature = "inject")]
struct State<C> {
    clock: CachePadded<AtomicU64>,
    /// Earliest op index at which anything must happen; `u64::MAX`
    /// once the plan is exhausted and nothing is held. This is the
    /// entire hot-path cost of an idle or empty plan.
    next_wake: CachePadded<AtomicU64>,
    /// Remaining spurious `needs_restart` answers.
    restart_budget: AtomicU64,
    /// Remaining injected registration failures.
    register_fail: AtomicU64,
    /// Op index until which flushes are suppressed.
    flush_until: AtomicU64,
    faults: AtomicU64,
    /// Peak number of simultaneously held victim contexts (stalled +
    /// hostages), for run records.
    held_peak: AtomicUsize,
    rt: Mutex<Rt<C>>,
    tracer: OnceLock<Mutex<ThreadTracer>>,
}

/// A fault-injecting decorator around any [`Smr`] scheme.
///
/// `ChaosSmr<S>` implements `Smr` itself (same `ThreadCtx`), so it
/// drops into every consumer generic over schemes — data structures,
/// the kv store, the benches — unchanged:
///
/// ```
/// use era_chaos::{ChaosSmr, FaultAction, FaultPlan};
/// use era_smr::{ebr::Ebr, Smr};
///
/// let plan = FaultPlan::new(0, vec![FaultAction::DiePinned { at_op: 2 }]);
/// let smr = ChaosSmr::new(Ebr::with_threshold(8, 4), plan);
/// let mut ctx = smr.register().unwrap();
/// for _ in 0..4 {
///     smr.begin_op(&mut ctx);
///     smr.end_op(&mut ctx);
/// }
/// # #[cfg(feature = "inject")]
/// assert_eq!(smr.faults_injected(), 1);
/// ```
pub struct ChaosSmr<S: Smr> {
    inner: S,
    plan: FaultPlan,
    #[cfg(feature = "inject")]
    st: State<S::ThreadCtx>,
}

impl<S: Smr> std::fmt::Debug for ChaosSmr<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosSmr")
            .field("inner", &self.inner.name())
            .field("planned", &self.plan.ops.len())
            .finish()
    }
}

impl<S: Smr> ChaosSmr<S> {
    /// Wraps `inner`, arming `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> ChaosSmr<S> {
        let plan = FaultPlan::new(plan.seed, plan.ops);
        #[cfg(feature = "inject")]
        let st = State {
            clock: CachePadded::new(AtomicU64::new(0)),
            next_wake: CachePadded::new(AtomicU64::new(
                plan.ops.first().map_or(u64::MAX, |a| a.at_op()),
            )),
            restart_budget: AtomicU64::new(0),
            register_fail: AtomicU64::new(0),
            flush_until: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            held_peak: AtomicUsize::new(0),
            rt: Mutex::new(Rt {
                pending: plan.ops.clone(),
                cursor: 0,
                stalled: Vec::new(),
                hostages: Vec::new(),
                deferred_flushes: 0,
                log: Vec::new(),
            }),
            tracer: OnceLock::new(),
        };
        ChaosSmr {
            inner,
            plan,
            #[cfg(feature = "inject")]
            st,
        }
    }

    /// Wraps `inner` with an empty plan: a transparent pass-through.
    pub fn transparent(inner: S) -> ChaosSmr<S> {
        ChaosSmr::new(inner, FaultPlan::empty())
    }

    /// The wrapped scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The armed plan (sorted).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current op-clock reading (0 without the `inject` feature).
    pub fn op_clock(&self) -> u64 {
        #[cfg(feature = "inject")]
        {
            self.st.clock.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "inject"))]
        0
    }

    /// Faults fired so far.
    pub fn faults_injected(&self) -> u64 {
        #[cfg(feature = "inject")]
        {
            self.st.faults.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "inject"))]
        0
    }

    /// Peak number of victim contexts held at once (stalls + hostages).
    pub fn held_peak(&self) -> usize {
        #[cfg(feature = "inject")]
        {
            self.st.held_peak.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "inject"))]
        0
    }

    /// The faults fired so far, in firing order — the replay witness
    /// the determinism tests compare.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        #[cfg(feature = "inject")]
        {
            lock(&self.st.rt).log.clone()
        }
        #[cfg(not(feature = "inject"))]
        Vec::new()
    }

    /// Ends the chaos: releases every held victim gracefully, replays
    /// any deferred flush through `ctx`, and cancels standing budgets
    /// (restart storms, injected registration failures, flush
    /// suppression). Pending *future* actions stay armed. Call before
    /// drain/shutdown so recovery is measured against a quiet plan.
    pub fn quiesce(&self, ctx: &mut S::ThreadCtx) {
        #[cfg(feature = "inject")]
        {
            let mut rt = lock(&self.st.rt);
            for (_, mut v) in rt.stalled.drain(..) {
                self.inner.end_op(&mut v);
            }
            rt.hostages.clear();
            let deferred = std::mem::take(&mut rt.deferred_flushes);
            // SAFETY(ordering): Relaxed — budget and wake words are
            // advisory gates re-checked on the cold path under the rt
            // lock; releasing that lock below publishes this reset.
            self.st.restart_budget.store(0, Ordering::Relaxed);
            self.st.register_fail.store(0, Ordering::Relaxed);
            self.st.flush_until.store(0, Ordering::Relaxed);
            let wake = rt.pending.get(rt.cursor).map_or(u64::MAX, |a| a.at_op());
            self.st.next_wake.store(wake, Ordering::Relaxed);
            drop(rt);
            if deferred > 0 {
                self.inner.flush(ctx);
            }
        }
        let _ = ctx;
    }

    /// Fires `action` at clock reading `op`. Called under the runtime
    /// lock; touches the inner scheme only through its public surface.
    #[cfg(feature = "inject")]
    fn fire(&self, rt: &mut Rt<S::ThreadCtx>, op: u64, action: FaultAction) {
        match action {
            FaultAction::DiePinned { .. } => {
                // A fresh context pins, retires canary garbage, and
                // dies without end_op: the orphan-adoption path plus
                // the slot-release-on-death path in one fault. When
                // registration fails (slots exhausted by an earlier
                // fault) the death degenerates to a no-op — still
                // recorded, since the *plan* fired.
                if let Ok(mut v) = self.inner.register() {
                    self.inner.begin_op(&mut v);
                    for _ in 0..DIE_PINNED_GARBAGE {
                        let node = Box::into_raw(Box::new(ChaosNode {
                            header: SmrHeader::new(),
                            payload: op,
                        }));
                        // SAFETY: `node` is freshly allocated, private
                        // to this call, and never published — retiring
                        // it is trivially well-formed; the header is
                        // the node's own, initialized by the scheme.
                        unsafe {
                            self.inner.init_header(&mut v, &(*node).header);
                            self.inner.retire(
                                &mut v,
                                node as *mut u8,
                                &(*node).header,
                                free_chaos_node,
                            );
                        }
                    }
                    drop(v);
                }
            }
            FaultAction::StallThread { for_ops, .. } => {
                if let Ok(mut v) = self.inner.register() {
                    self.inner.begin_op(&mut v);
                    rt.stalled.push((op.saturating_add(for_ops.max(1)), v));
                }
            }
            FaultAction::DelayFlush { for_ops, .. } => {
                // SAFETY(ordering): Relaxed — an advisory window bound;
                // a racing flush that misses it by one op only shifts
                // when the fault lands, which the chaos model allows.
                self.st
                    .flush_until
                    .store(op.saturating_add(for_ops.max(1)), Ordering::Relaxed);
            }
            FaultAction::FailRegister { count, .. } | FaultAction::FailAlloc { count, .. } => {
                // SAFETY(ordering): Relaxed — a monotone failure budget
                // later consumed by CAS in register(); it never carries
                // dependent data, only a count.
                self.st
                    .register_fail
                    .fetch_add(count.max(1), Ordering::Relaxed);
            }
            FaultAction::ExhaustSlots { for_ops, .. } => {
                let mut grabbed = Vec::new();
                while grabbed.len() < EXHAUST_CAP {
                    match self.inner.register() {
                        Ok(c) => grabbed.push(c),
                        Err(_) => break,
                    }
                }
                rt.hostages
                    .push((op.saturating_add(for_ops.max(1)), grabbed));
            }
            FaultAction::RestartStorm { count, .. } => {
                // SAFETY(ordering): Relaxed — same monotone-budget shape
                // as register_fail: consumed by CAS in needs_restart,
                // no payload rides on it.
                self.st
                    .restart_budget
                    .fetch_add(count.max(1), Ordering::Relaxed);
            }
        }
        let held = rt.stalled.len() + rt.hostages.iter().map(|(_, h)| h.len()).sum::<usize>();
        // SAFETY(ordering): Relaxed — held_peak and faults are
        // telemetry, read by assertions after the run (or behind the
        // rt lock); no ordering is required.
        self.st.held_peak.fetch_max(held, Ordering::Relaxed);
        rt.log.push(FaultRecord {
            kind: action.kind(),
            planned_at: action.at_op(),
            fired_at: op,
        });
        // SAFETY(ordering): Relaxed — run-level fault tally, see above.
        self.st.faults.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.st.tracer.get() {
            lock(t).emit(Hook::Fault, action.kind() as u64, op);
        }
    }

    /// Cold path behind the `next_wake` gate: fire due actions,
    /// release expired victims, replay deferred flushes, re-arm.
    #[cfg(feature = "inject")]
    fn poll(&self, op: u64, ctx: Option<&mut S::ThreadCtx>) {
        let mut rt = lock(&self.st.rt);
        while rt.cursor < rt.pending.len() && rt.pending[rt.cursor].at_op() <= op {
            let action = rt.pending[rt.cursor];
            rt.cursor += 1;
            self.fire(&mut rt, op, action);
        }
        let mut i = 0;
        while i < rt.stalled.len() {
            if rt.stalled[i].0 <= op {
                let (_, mut v) = rt.stalled.swap_remove(i);
                // Graceful release: the stall *ends*, it is not a
                // death — unfreeze the announcement, then retire the
                // victim context normally.
                self.inner.end_op(&mut v);
                drop(v);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < rt.hostages.len() {
            if rt.hostages[i].0 <= op {
                rt.hostages.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if rt.deferred_flushes > 0 && self.st.flush_until.load(Ordering::Relaxed) <= op {
            rt.deferred_flushes = 0;
            if let Some(c) = ctx {
                // The delayed flush replays here, on whichever thread
                // crossed the window's end — a reordered flush.
                self.inner.flush(c);
            }
        }
        let mut wake = rt.pending.get(rt.cursor).map_or(u64::MAX, |a| a.at_op());
        for (release, _) in &rt.stalled {
            wake = wake.min(*release);
        }
        for (release, _) in &rt.hostages {
            wake = wake.min(*release);
        }
        if rt.deferred_flushes > 0 {
            wake = wake.min(self.st.flush_until.load(Ordering::Relaxed));
        }
        // SAFETY(ordering): Relaxed — next_wake is an advisory fast-path
        // gate; a stale read costs one extra poll() under the rt lock,
        // never a missed fault (poll re-checks the real schedule).
        self.st.next_wake.store(wake, Ordering::Relaxed);
    }
}

impl<S: Smr> Smr for ChaosSmr<S> {
    type ThreadCtx = S::ThreadCtx;

    fn register(&self) -> Result<S::ThreadCtx, RegisterError> {
        #[cfg(feature = "inject")]
        {
            let mut n = self.st.register_fail.load(Ordering::Relaxed);
            while n > 0 {
                // SAFETY(ordering): Relaxed/Relaxed — the budget word
                // carries no dependent data; the CAS only needs the
                // decrement itself to be atomic.
                match self.st.register_fail.compare_exchange_weak(
                    n,
                    n - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    // Injected failure: capacity 0 marks it as chaos,
                    // not a genuinely full registry.
                    Ok(_) => return Err(RegisterError { capacity: 0 }),
                    Err(cur) => n = cur,
                }
            }
        }
        self.inner.register()
    }

    fn name(&self) -> &'static str {
        // Transparent on purpose: records and SchemeId mapping key off
        // the scheme under test, not the harness around it.
        self.inner.name()
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.attach_recorder(recorder);
        #[cfg(feature = "inject")]
        let _ = self.st.tracer.set(Mutex::new(
            recorder.tracer(CHAOS_THREAD, SchemeId::from_name(self.inner.name())),
        ));
    }

    fn begin_op(&self, ctx: &mut S::ThreadCtx) {
        #[cfg(feature = "inject")]
        {
            // SAFETY(ordering): Relaxed — the op clock only orders
            // faults against this thread's own ops; cross-thread slack
            // is part of the chaos model (fired_at >= planned_at).
            let op = self.st.clock.fetch_add(1, Ordering::Relaxed) + 1;
            if op >= self.st.next_wake.load(Ordering::Relaxed) {
                self.poll(op, Some(&mut *ctx));
            }
        }
        self.inner.begin_op(ctx);
    }

    fn end_op(&self, ctx: &mut S::ThreadCtx) {
        self.inner.end_op(ctx);
    }

    fn load(
        &self,
        ctx: &mut S::ThreadCtx,
        slot: usize,
        src: &std::sync::atomic::AtomicUsize,
    ) -> usize {
        self.inner.load(ctx, slot, src)
    }

    fn requires_validation(&self) -> bool {
        self.inner.requires_validation()
    }

    fn protect_alias(&self, ctx: &mut S::ThreadCtx, dst_slot: usize, src_slot: usize, word: usize) {
        self.inner.protect_alias(ctx, dst_slot, src_slot, word);
    }

    fn init_header(&self, ctx: &mut S::ThreadCtx, header: &SmrHeader) {
        self.inner.init_header(ctx, header);
    }

    /// # Safety
    ///
    /// Same contract as the inner scheme's `retire` — delegated
    /// verbatim; the decorator adds nothing between caller and scheme.
    unsafe fn retire(
        &self,
        ctx: &mut S::ThreadCtx,
        ptr: *mut u8,
        header: *const SmrHeader,
        drop_fn: DropFn,
    ) {
        // SAFETY: same contract, delegated verbatim.
        unsafe { self.inner.retire(ctx, ptr, header, drop_fn) }
    }

    fn enter_read_phase(&self, ctx: &mut S::ThreadCtx) {
        self.inner.enter_read_phase(ctx);
    }

    fn needs_restart(&self, ctx: &mut S::ThreadCtx) -> bool {
        #[cfg(feature = "inject")]
        {
            let mut n = self.st.restart_budget.load(Ordering::Relaxed);
            while n > 0 {
                // SAFETY(ordering): Relaxed/Relaxed — monotone budget
                // decrement, same shape as register(); atomicity alone
                // bounds the storm to the planned count.
                match self.st.restart_budget.compare_exchange_weak(
                    n,
                    n - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return true, // spurious, bounded by the budget
                    Err(cur) => n = cur,
                }
            }
        }
        self.inner.needs_restart(ctx)
    }

    fn reserve(&self, ctx: &mut S::ThreadCtx, slot: usize, word: usize) {
        self.inner.reserve(ctx, slot, word);
    }

    fn commit_reservations(&self, ctx: &mut S::ThreadCtx) -> bool {
        self.inner.commit_reservations(ctx)
    }

    fn clear_reservations(&self, ctx: &mut S::ThreadCtx) {
        self.inner.clear_reservations(ctx);
    }

    /// # Safety
    ///
    /// Same contract as the inner scheme's `neutralize` — delegated
    /// verbatim.
    unsafe fn neutralize(&self, slot: usize) -> bool {
        // SAFETY: same contract, delegated verbatim.
        unsafe { self.inner.neutralize(slot) }
    }

    fn quiescent_point(&self, ctx: &mut S::ThreadCtx) {
        self.inner.quiescent_point(ctx);
    }

    fn stats(&self) -> SmrStats {
        self.inner.stats()
    }

    fn flush(&self, ctx: &mut S::ThreadCtx) {
        #[cfg(feature = "inject")]
        {
            let now = self.st.clock.load(Ordering::Relaxed);
            if now < self.st.flush_until.load(Ordering::Relaxed) {
                lock(&self.st.rt).deferred_flushes += 1;
                return;
            }
        }
        self.inner.flush(ctx);
    }
}

// SAFETY: pure delegation — every protection-relevant call forwards to
// `S` unchanged, and injections only create additional scheme-owned
// contexts and garbage through the same public surface, which cannot
// weaken the inner scheme's traversal guarantee.
unsafe impl<S: SupportsUnlinkedTraversal> SupportsUnlinkedTraversal for ChaosSmr<S> {}

// SAFETY: as above — `begin_op`/`end_op` bracket protection is the
// inner scheme's, forwarded verbatim.
unsafe impl<S: EpochProtected> EpochProtected for ChaosSmr<S> {}

#[cfg(all(test, feature = "inject"))]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::leak::Leak;

    fn spin<S: Smr>(smr: &S, ctx: &mut S::ThreadCtx, ops: usize) {
        for _ in 0..ops {
            smr.begin_op(ctx);
            smr.end_op(ctx);
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let smr = ChaosSmr::transparent(Leak::new(4));
        let mut ctx = smr.register().unwrap();
        spin(&smr, &mut ctx, 100);
        assert_eq!(smr.faults_injected(), 0);
        assert!(smr.fault_log().is_empty());
        assert_eq!(smr.stats().total_retired, 0);
        assert_eq!(smr.name(), "Leak");
        assert_eq!(smr.op_clock(), 100);
    }

    #[test]
    fn die_pinned_orphans_are_adopted_and_drained() {
        let plan = FaultPlan::new(0, vec![FaultAction::DiePinned { at_op: 3 }]);
        let smr = ChaosSmr::new(Ebr::with_threshold(8, 2), plan);
        let mut ctx = smr.register().unwrap();
        spin(&smr, &mut ctx, 16);
        assert_eq!(smr.faults_injected(), 1);
        assert_eq!(
            smr.fault_log(),
            vec![FaultRecord {
                kind: 0,
                planned_at: 3,
                fired_at: 3
            }]
        );
        // The victim's canary garbage exists and is orphaned…
        assert_eq!(smr.stats().total_retired, 4);
        // …and survivors adopt and free it.
        for _ in 0..6 {
            spin(&smr, &mut ctx, 1);
            smr.flush(&mut ctx);
        }
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
    }

    #[test]
    fn stall_holds_a_pin_then_releases() {
        let plan = FaultPlan::new(
            0,
            vec![FaultAction::StallThread {
                at_op: 2,
                for_ops: 10,
            }],
        );
        let smr = ChaosSmr::new(Ebr::with_threshold(8, 1), plan);
        let mut ctx = smr.register().unwrap();
        // Retire churn while the victim pins the epoch: footprint grows.
        let retire_one = |ctx: &mut _| {
            let p = Box::into_raw(Box::new(0u64)) as *mut u8;
            // SAFETY: p is the Box::into_raw of the u64 above; retire
            // passes it to free_u64 exactly once.
            unsafe fn free_u64(p: *mut u8) {
                unsafe { drop(Box::from_raw(p as *mut u64)) }
            }
            unsafe { smr.retire(ctx, p, std::ptr::null(), free_u64) };
        };
        for _ in 0..8 {
            smr.begin_op(&mut ctx);
            retire_one(&mut ctx);
            smr.end_op(&mut ctx);
            smr.flush(&mut ctx);
        }
        assert!(smr.held_peak() >= 1);
        assert!(
            smr.stats().retired_now > 0,
            "stalled pin must hold garbage: {}",
            smr.stats()
        );
        // Pass the window: the victim is released and churn drains.
        for _ in 0..12 {
            smr.begin_op(&mut ctx);
            smr.end_op(&mut ctx);
            smr.flush(&mut ctx);
        }
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
    }

    #[test]
    fn fail_register_and_exhaust_slots() {
        let plan = FaultPlan::new(
            0,
            vec![
                FaultAction::FailRegister { at_op: 1, count: 2 },
                FaultAction::ExhaustSlots {
                    at_op: 4,
                    for_ops: 6,
                },
            ],
        );
        let smr = ChaosSmr::new(Leak::new(4), plan);
        let mut ctx = smr.register().unwrap();
        spin(&smr, &mut ctx, 1);
        assert_eq!(
            smr.register().unwrap_err(),
            RegisterError { capacity: 0 },
            "injected failure reports capacity 0"
        );
        assert!(smr.register().is_err());
        let real = smr.register().expect("budget spent: registry has room");
        drop(real);
        spin(&smr, &mut ctx, 3); // fires ExhaustSlots at op 4
        assert!(
            smr.register().is_err(),
            "hostages hold every remaining slot"
        );
        spin(&smr, &mut ctx, 7); // window closes, hostages released
        assert!(smr.register().is_ok());
        assert_eq!(smr.faults_injected(), 2);
    }

    #[test]
    fn restart_storm_is_spurious_and_bounded() {
        let plan = FaultPlan::new(0, vec![FaultAction::RestartStorm { at_op: 1, count: 3 }]);
        let smr = ChaosSmr::new(Leak::new(2), plan);
        let mut ctx = smr.register().unwrap();
        spin(&smr, &mut ctx, 1);
        let hits = (0..10).filter(|_| smr.needs_restart(&mut ctx)).count();
        assert_eq!(hits, 3, "exactly the budgeted spurious restarts");
    }

    #[test]
    fn delayed_flush_replays_after_the_window() {
        let plan = FaultPlan::new(
            0,
            vec![FaultAction::DelayFlush {
                at_op: 1,
                for_ops: 5,
            }],
        );
        // Threshold 1: a flush would normally drain immediately.
        let smr = ChaosSmr::new(Ebr::with_threshold(4, 1), plan);
        let mut ctx = smr.register().unwrap();
        smr.begin_op(&mut ctx);
        let p = Box::into_raw(Box::new(7u64)) as *mut u8;
        // SAFETY: p is the Box::into_raw of the u64 above; retire
        // passes it to free_u64 exactly once.
        unsafe fn free_u64(p: *mut u8) {
            unsafe { drop(Box::from_raw(p as *mut u64)) }
        }
        unsafe { smr.retire(&mut ctx, p, std::ptr::null(), free_u64) };
        smr.end_op(&mut ctx);
        smr.flush(&mut ctx); // swallowed by the window
        assert_eq!(smr.stats().retired_now, 1, "flush was suppressed");
        spin(&smr, &mut ctx, 8); // window closes; deferred flush replays
        smr.flush(&mut ctx);
        assert_eq!(smr.stats().retired_now, 0, "{}", smr.stats());
    }

    #[test]
    fn quiesce_releases_everything() {
        let plan = FaultPlan::new(
            0,
            vec![
                FaultAction::StallThread {
                    at_op: 1,
                    for_ops: 1_000_000,
                },
                FaultAction::FailRegister {
                    at_op: 1,
                    count: 1_000,
                },
            ],
        );
        let smr = ChaosSmr::new(Ebr::with_threshold(8, 1), plan);
        let mut ctx = smr.register().unwrap();
        spin(&smr, &mut ctx, 2);
        assert!(smr.register().is_err(), "failure budget armed");
        smr.quiesce(&mut ctx);
        assert!(smr.register().is_ok(), "quiesce cancels budgets");
        spin(&smr, &mut ctx, 2);
        smr.flush(&mut ctx);
        assert_eq!(smr.stats().retired_now, 0);
    }
}
