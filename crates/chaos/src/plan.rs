//! Serializable fault plans: what to break, and when.
//!
//! A [`FaultPlan`] is a seed plus a list of [`FaultAction`]s, each
//! anchored to a global operation index (the decorator's op clock).
//! Plans are plain data: generated from a seed, serialized to a single
//! JSON line, parsed back, and replayed — the same plan against the
//! same single-threaded workload fires the same faults at the same
//! clock readings and produces the same final statistics, which is what
//! makes a chaos failure a *bug report* instead of an anecdote.
//!
//! The JSON wire format follows the workspace convention (hand-rolled
//! emitter from [`era_obs::report`], no serialization dependency):
//!
//! ```json
//! {"seed":42,"ops":[{"kind":"die_pinned","at_op":100},
//!                   {"kind":"stall","at_op":250,"for_ops":64}]}
//! ```

use std::fmt;

use era_obs::report::JsonObject;

/// One injected fault, anchored to the decorator's global op clock.
///
/// Window-style actions (`for_ops`) stay in force until the clock
/// passes `at_op + for_ops`; budget-style actions (`count`) apply to
/// the next `count` matching calls. Both interpretations are bounded,
/// so no plan can livelock a workload that keeps issuing operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Register a fresh context, pin it, retire a few chaos-owned
    /// canary nodes through it, and drop it **without** `end_op` — the
    /// "thread died while pinned" injection, orphaned garbage included.
    DiePinned {
        /// Global op index the fault fires at.
        at_op: u64,
    },
    /// Pin a victim context and freeze its announcement for `for_ops`
    /// global ops — the robustness adversary of the paper's lower
    /// bounds. The victim is released gracefully when the window ends.
    StallThread {
        /// Global op index the fault fires at.
        at_op: u64,
        /// How many global ops the victim stays pinned.
        for_ops: u64,
    },
    /// Suppress `flush` calls for `for_ops` ops; the suppressed flush
    /// replays — possibly from a *different* thread's context — once
    /// the window closes (a delayed, reordered reclamation flush).
    DelayFlush {
        /// Global op index the fault fires at.
        at_op: u64,
        /// How many global ops flushes stay suppressed.
        for_ops: u64,
    },
    /// Fail the next `count` `register` calls with a capacity error
    /// even though slots are free.
    FailRegister {
        /// Global op index the fault fires at.
        at_op: u64,
        /// How many registrations to refuse.
        count: u64,
    },
    /// Grab every free registry slot and hold the contexts hostage for
    /// `for_ops` ops — registry-slot exhaustion.
    ExhaustSlots {
        /// Global op index the fault fires at.
        at_op: u64,
        /// How many global ops the slots stay held.
        for_ops: u64,
    },
    /// Answer `true` to the next `count` `needs_restart` polls — a
    /// spurious neutralization storm. Always safe: restart-protocol
    /// followers simply redo their read phase.
    RestartStorm {
        /// Global op index the fault fires at.
        at_op: u64,
        /// How many polls to answer spuriously.
        count: u64,
    },
    /// Fail the next `count` allocations. On [`crate::ChaosArena`]
    /// (VBR) the arena reports full; on [`crate::ChaosSmr`] the
    /// scheme's only allocation-like fallible call is `register`, so
    /// it behaves as [`FaultAction::FailRegister`].
    FailAlloc {
        /// Global op index the fault fires at.
        at_op: u64,
        /// How many allocations to refuse.
        count: u64,
    },
}

impl FaultAction {
    /// Number of distinct action kinds.
    pub const KINDS: u8 = 7;

    /// Stable discriminant — the `a` payload of `Hook::Fault` events.
    pub fn kind(self) -> u8 {
        match self {
            FaultAction::DiePinned { .. } => 0,
            FaultAction::StallThread { .. } => 1,
            FaultAction::DelayFlush { .. } => 2,
            FaultAction::FailRegister { .. } => 3,
            FaultAction::ExhaustSlots { .. } => 4,
            FaultAction::RestartStorm { .. } => 5,
            FaultAction::FailAlloc { .. } => 6,
        }
    }

    /// Stable lower-case name — the JSON `kind` field.
    pub fn kind_name(self) -> &'static str {
        match self {
            FaultAction::DiePinned { .. } => "die_pinned",
            FaultAction::StallThread { .. } => "stall",
            FaultAction::DelayFlush { .. } => "delay_flush",
            FaultAction::FailRegister { .. } => "fail_register",
            FaultAction::ExhaustSlots { .. } => "exhaust_slots",
            FaultAction::RestartStorm { .. } => "restart_storm",
            FaultAction::FailAlloc { .. } => "fail_alloc",
        }
    }

    /// The global op index this action fires at.
    pub fn at_op(self) -> u64 {
        match self {
            FaultAction::DiePinned { at_op }
            | FaultAction::StallThread { at_op, .. }
            | FaultAction::DelayFlush { at_op, .. }
            | FaultAction::FailRegister { at_op, .. }
            | FaultAction::ExhaustSlots { at_op, .. }
            | FaultAction::RestartStorm { at_op, .. }
            | FaultAction::FailAlloc { at_op, .. } => at_op,
        }
    }
}

/// A seeded, serializable, replayable schedule of fault injections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans);
    /// carried in records so a run can be regenerated, not just
    /// replayed.
    pub seed: u64,
    /// The injections, sorted by [`FaultAction::at_op`].
    pub ops: Vec<FaultAction>,
}

impl FaultPlan {
    /// An empty plan: the decorator is transparent.
    #[must_use = "a plan does nothing until handed to ChaosSmr/ChaosArena"]
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from explicit actions (sorted by fire index; the sort is
    /// stable, so same-index actions keep their given order).
    #[must_use = "a plan does nothing until handed to ChaosSmr/ChaosArena"]
    pub fn new(seed: u64, mut ops: Vec<FaultAction>) -> FaultPlan {
        ops.sort_by_key(|a| a.at_op());
        FaultPlan { seed, ops }
    }

    /// Generates `count` pseudo-random injections over `[1, horizon]`
    /// ops. Deterministic in `seed` (SplitMix64), so a record carrying
    /// `(seed, horizon, count)` pins the plan exactly. Windows and
    /// budgets are kept small relative to the horizon so no single
    /// fault can dominate a run.
    #[must_use = "a plan does nothing until handed to ChaosSmr/ChaosArena"]
    pub fn generate(seed: u64, horizon: u64, count: usize) -> FaultPlan {
        let horizon = horizon.max(1);
        let window_cap = (horizon / 8).clamp(4, 256);
        let mut state = seed;
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let at_op = 1 + splitmix64(&mut state) % horizon;
            let for_ops = 4 + splitmix64(&mut state) % window_cap;
            let count = 1 + splitmix64(&mut state) % 4;
            ops.push(match splitmix64(&mut state) % FaultAction::KINDS as u64 {
                0 => FaultAction::DiePinned { at_op },
                1 => FaultAction::StallThread { at_op, for_ops },
                2 => FaultAction::DelayFlush { at_op, for_ops },
                3 => FaultAction::FailRegister { at_op, count },
                4 => FaultAction::ExhaustSlots { at_op, for_ops },
                5 => FaultAction::RestartStorm { at_op, count },
                _ => FaultAction::FailAlloc { at_op, count },
            });
        }
        FaultPlan::new(seed, ops)
    }

    /// The same plan re-anchored `delta` ops later on the decorator's
    /// clock — the scheduling hook campaign harnesses use to aim a
    /// seed-generated plan at a *phase* of a longer run: generate over
    /// the phase's own horizon, then offset by the ops already spent
    /// before the phase starts. Fire indices saturate instead of
    /// wrapping, so an absurd delta pushes faults past the run's end
    /// (they never fire) rather than to its beginning.
    #[must_use = "offset returns the shifted plan; the original is unchanged"]
    pub fn offset(&self, delta: u64) -> FaultPlan {
        let shift = |at_op: u64| at_op.saturating_add(delta);
        let ops = self
            .ops
            .iter()
            .map(|a| match *a {
                FaultAction::DiePinned { at_op } => FaultAction::DiePinned {
                    at_op: shift(at_op),
                },
                FaultAction::StallThread { at_op, for_ops } => FaultAction::StallThread {
                    at_op: shift(at_op),
                    for_ops,
                },
                FaultAction::DelayFlush { at_op, for_ops } => FaultAction::DelayFlush {
                    at_op: shift(at_op),
                    for_ops,
                },
                FaultAction::FailRegister { at_op, count } => FaultAction::FailRegister {
                    at_op: shift(at_op),
                    count,
                },
                FaultAction::ExhaustSlots { at_op, for_ops } => FaultAction::ExhaustSlots {
                    at_op: shift(at_op),
                    for_ops,
                },
                FaultAction::RestartStorm { at_op, count } => FaultAction::RestartStorm {
                    at_op: shift(at_op),
                    count,
                },
                FaultAction::FailAlloc { at_op, count } => FaultAction::FailAlloc {
                    at_op: shift(at_op),
                    count,
                },
            })
            .collect();
        FaultPlan {
            seed: self.seed,
            ops,
        }
    }

    /// Serializes the plan as one JSON line (the `ChaosRunRecord`
    /// embeds this verbatim so every record is replayable).
    pub fn to_json(&self) -> String {
        let mut ops = String::from("[");
        for (i, a) in self.ops.iter().enumerate() {
            if i > 0 {
                ops.push(',');
            }
            let obj = JsonObject::new()
                .str("kind", a.kind_name())
                .u64("at_op", a.at_op());
            let obj = match *a {
                FaultAction::StallThread { for_ops, .. }
                | FaultAction::DelayFlush { for_ops, .. }
                | FaultAction::ExhaustSlots { for_ops, .. } => obj.u64("for_ops", for_ops),
                FaultAction::FailRegister { count, .. }
                | FaultAction::RestartStorm { count, .. }
                | FaultAction::FailAlloc { count, .. } => obj.u64("count", count),
                FaultAction::DiePinned { .. } => obj,
            };
            ops.push_str(&obj.finish());
        }
        ops.push(']');
        JsonObject::new()
            .u64("seed", self.seed)
            .raw("ops", &ops)
            .finish()
    }

    /// Parses a plan from its [`FaultPlan::to_json`] record.
    ///
    /// # Errors
    ///
    /// [`PlanParseError`] (with a byte offset) on malformed JSON, an
    /// unknown field, or an unknown action kind.
    pub fn from_json(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let mut seed = 0u64;
        let mut ops = Vec::new();
        p.ws();
        p.eat(b'{')?;
        p.ws();
        if p.peek() != Some(b'}') {
            loop {
                let key = p.string()?;
                p.ws();
                p.eat(b':')?;
                p.ws();
                match key.as_str() {
                    "seed" => seed = p.u64()?,
                    "ops" => {
                        p.eat(b'[')?;
                        p.ws();
                        if p.peek() != Some(b']') {
                            loop {
                                ops.push(p.action()?);
                                p.ws();
                                if !p.comma_or(b']')? {
                                    break;
                                }
                                p.ws();
                            }
                        } else {
                            p.i += 1;
                        }
                    }
                    _ => return Err(p.err("unknown plan field")),
                }
                p.ws();
                if !p.comma_or(b'}')? {
                    break;
                }
                p.ws();
            }
        } else {
            p.i += 1;
        }
        p.ws();
        if p.i != p.s.len() {
            return Err(p.err("trailing input after plan"));
        }
        Ok(FaultPlan::new(seed, ops))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A plan failed to parse: byte offset plus a static description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanParseError {
    /// Byte offset into the JSON text where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault plan parse error at byte {}: {}",
            self.at, self.msg
        )
    }
}

impl std::error::Error for PlanParseError {}

/// A minimal parser for exactly the shape [`FaultPlan::to_json`]
/// emits (plus arbitrary whitespace and member order).
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> PlanParseError {
        PlanParseError { at: self.i, msg }
    }

    fn ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), PlanParseError> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    /// Consumes either a comma (returns `true`) or `close` (returns
    /// `false`).
    fn comma_or(&mut self, close: u8) -> Result<bool, PlanParseError> {
        match self.peek() {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(b) if b == close => {
                self.i += 1;
                Ok(false)
            }
            _ => Err(self.err("expected ',' or a closing bracket")),
        }
    }

    fn u64(&mut self) -> Result<u64, PlanParseError> {
        let start = self.i;
        let mut v: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
                .ok_or(PlanParseError {
                    at: self.i,
                    msg: "integer overflow",
                })?;
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected an unsigned integer"));
        }
        Ok(v)
    }

    /// A plain string (plan fields never need escapes; reject them).
    fn string(&mut self) -> Result<String, PlanParseError> {
        self.eat(b'"')?;
        let start = self.i;
        loop {
            match self.peek() {
                Some(b'"') => break,
                Some(b'\\') => return Err(self.err("escapes are not used in plan strings")),
                Some(_) => self.i += 1,
                None => return Err(self.err("unterminated string")),
            }
        }
        let out = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| self.err("invalid utf-8"))?
            .to_string();
        self.i += 1;
        Ok(out)
    }

    fn action(&mut self) -> Result<FaultAction, PlanParseError> {
        self.eat(b'{')?;
        self.ws();
        let (mut kind, mut at_op, mut for_ops, mut count) = (None::<String>, 0u64, 1u64, 1u64);
        loop {
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            match key.as_str() {
                "kind" => kind = Some(self.string()?),
                "at_op" => at_op = self.u64()?,
                "for_ops" => for_ops = self.u64()?,
                "count" => count = self.u64()?,
                _ => return Err(self.err("unknown action field")),
            }
            self.ws();
            if !self.comma_or(b'}')? {
                break;
            }
            self.ws();
        }
        match kind.as_deref() {
            Some("die_pinned") => Ok(FaultAction::DiePinned { at_op }),
            Some("stall") => Ok(FaultAction::StallThread { at_op, for_ops }),
            Some("delay_flush") => Ok(FaultAction::DelayFlush { at_op, for_ops }),
            Some("fail_register") => Ok(FaultAction::FailRegister { at_op, count }),
            Some("exhaust_slots") => Ok(FaultAction::ExhaustSlots { at_op, for_ops }),
            Some("restart_storm") => Ok(FaultAction::RestartStorm { at_op, count }),
            Some("fail_alloc") => Ok(FaultAction::FailAlloc { at_op, count }),
            Some(_) => Err(self.err("unknown action kind")),
            None => Err(self.err("action is missing its kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        FaultPlan::new(
            9,
            vec![
                FaultAction::StallThread {
                    at_op: 40,
                    for_ops: 16,
                },
                FaultAction::DiePinned { at_op: 10 },
                FaultAction::RestartStorm {
                    at_op: 40,
                    count: 3,
                },
                FaultAction::FailAlloc {
                    at_op: 77,
                    count: 2,
                },
                FaultAction::DelayFlush {
                    at_op: 90,
                    for_ops: 8,
                },
                FaultAction::ExhaustSlots {
                    at_op: 91,
                    for_ops: 5,
                },
                FaultAction::FailRegister {
                    at_op: 95,
                    count: 1,
                },
            ],
        )
    }

    #[test]
    fn new_sorts_by_fire_index() {
        let plan = sample();
        assert!(plan.ops.windows(2).all(|w| w[0].at_op() <= w[1].at_op()));
        assert_eq!(plan.ops[0], FaultAction::DiePinned { at_op: 10 });
        // Stable: the two at_op=40 actions keep their given order.
        assert_eq!(plan.ops[1].kind_name(), "stall");
        assert_eq!(plan.ops[2].kind_name(), "restart_storm");
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let plan = sample();
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json(), json, "replay record must be stable");
    }

    #[test]
    fn json_accepts_whitespace_and_field_order() {
        let text =
            r#" { "ops" : [ { "at_op" : 5 , "kind" : "stall" , "for_ops" : 2 } ] , "seed" : 3 } "#;
        let plan = FaultPlan::from_json(text).unwrap();
        assert_eq!(plan.seed, 3);
        assert_eq!(
            plan.ops,
            vec![FaultAction::StallThread {
                at_op: 5,
                for_ops: 2
            }]
        );
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"seed\":}",
            "{\"seed\":1,\"ops\":[{\"kind\":\"nope\",\"at_op\":1}]}",
            "{\"seed\":1,\"ops\":[{\"at_op\":1}]}",
            "{\"bogus\":1}",
            "{\"seed\":1} trailing",
            "{\"seed\":99999999999999999999999}",
        ] {
            let err = FaultPlan::from_json(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?} must fail");
        }
        // Empty object and empty ops array are both fine.
        assert_eq!(FaultPlan::from_json("{}").unwrap(), FaultPlan::empty());
        assert_eq!(
            FaultPlan::from_json("{\"seed\":7,\"ops\":[]}")
                .unwrap()
                .seed,
            7
        );
    }

    #[test]
    fn offset_shifts_every_fire_index_and_nothing_else() {
        let plan = sample();
        let shifted = plan.offset(1_000);
        assert_eq!(shifted.seed, plan.seed);
        assert_eq!(shifted.ops.len(), plan.ops.len());
        for (a, b) in plan.ops.iter().zip(shifted.ops.iter()) {
            assert_eq!(b.at_op(), a.at_op() + 1_000);
            assert_eq!(b.kind(), a.kind(), "offset must not change the action");
        }
        // Order is preserved (a uniform shift cannot reorder), the
        // original is untouched, and offset(0) is the identity.
        assert!(shifted.ops.windows(2).all(|w| w[0].at_op() <= w[1].at_op()));
        assert_eq!(plan, sample());
        assert_eq!(plan.offset(0), plan);
        // Saturation: never wraps around to fire at the run's start.
        let far = plan.offset(u64::MAX);
        assert!(far.ops.iter().all(|op| op.at_op() == u64::MAX));
        // The shifted plan is still a valid wire record.
        assert_eq!(FaultPlan::from_json(&shifted.to_json()).unwrap(), shifted);
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = FaultPlan::generate(1234, 10_000, 40);
        let b = FaultPlan::generate(1234, 10_000, 40);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::generate(1235, 10_000, 40));
        assert_eq!(a.ops.len(), 40);
        assert!(a.ops.iter().all(|op| (1..=10_000).contains(&op.at_op())));
        assert!(a.ops.windows(2).all(|w| w[0].at_op() <= w[1].at_op()));
        // The generator reaches every action kind over a modest plan.
        let kinds: std::collections::HashSet<u8> = a.ops.iter().map(|o| o.kind()).collect();
        assert_eq!(kinds.len(), FaultAction::KINDS as usize);
        // Roundtrip through JSON survives generation too.
        assert_eq!(FaultPlan::from_json(&a.to_json()).unwrap(), a);
    }
}
