//! Replay determinism: the acceptance gate of the chaos harness.
//!
//! The same `FaultPlan { seed, ops }` driven through the same
//! single-threaded workload must reproduce the **identical** fault
//! sequence (`fault_log`) and the identical final
//! [`SmrStats`](era_smr::SmrStats) — twice over, for every scheme.
//! The second run parses the plan back from its JSON record, so the
//! test also proves a checked-in plan line is a complete replay recipe.

// Without `inject` no fault ever fires, so there is nothing to replay.
#![cfg(feature = "inject")]

use era_chaos::{ChaosArena, ChaosSmr, FaultPlan};
use era_smr::common::{Smr, SmrHeader, SmrStats};
use era_smr::ebr::Ebr;
use era_smr::he::He;
use era_smr::hp::Hp;
use era_smr::ibr::Ibr;
use era_smr::leak::Leak;
use era_smr::nbr::Nbr;
use era_smr::qsbr::Qsbr;

const SEED: u64 = 0xE6A_CA05;
const HORIZON: u64 = 256;
const FAULTS: usize = 16;

#[repr(C)]
struct Node {
    header: SmrHeader,
    payload: u64,
}

/// # Safety
///
/// `p` must be the `Box::into_raw` pointer of a live `Node`; the SMR
/// scheme passes it here exactly once.
unsafe fn free_node(p: *mut u8) {
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

/// The reference workload: a fixed single-threaded churn loop. All
/// nondeterminism must come from the plan — which has none.
fn run<S: Smr>(inner: S, plan: FaultPlan) -> (Vec<era_chaos::FaultRecord>, SmrStats) {
    let smr = ChaosSmr::new(inner, plan);
    let mut ctx = smr.register().expect("root context");
    for i in 0..HORIZON {
        smr.begin_op(&mut ctx);
        if i % 3 == 0 {
            let node = Box::into_raw(Box::new(Node {
                header: SmrHeader::new(),
                payload: i,
            }));
            // SAFETY: `node` is freshly allocated and never published —
            // retiring it immediately is well-formed and happens once.
            unsafe {
                smr.init_header(&mut ctx, &(*node).header);
                smr.retire(&mut ctx, node as *mut u8, &(*node).header, free_node);
            }
        }
        let _ = smr.needs_restart(&mut ctx);
        smr.end_op(&mut ctx);
        smr.quiescent_point(&mut ctx);
        if i % 7 == 0 {
            smr.flush(&mut ctx);
        }
    }
    smr.quiesce(&mut ctx);
    for _ in 0..8 {
        smr.begin_op(&mut ctx);
        smr.end_op(&mut ctx);
        smr.quiescent_point(&mut ctx);
        smr.flush(&mut ctx);
    }
    (smr.fault_log(), smr.stats())
}

/// Runs the workload twice — the replay reconstructing the plan from
/// its JSON record — and asserts bit-identical outcomes.
fn assert_deterministic<S: Smr>(make: impl Fn() -> S) {
    let plan = FaultPlan::generate(SEED, HORIZON, FAULTS);
    assert_eq!(plan.ops.len(), FAULTS, "generator must fill the plan");
    let json = plan.to_json();
    let replay = FaultPlan::from_json(&json).expect("own JSON must parse");
    assert_eq!(plan, replay, "JSON record must be a complete recipe");

    let (log_a, stats_a) = run(make(), plan);
    let (log_b, stats_b) = run(make(), replay);
    assert!(!log_a.is_empty(), "the plan must actually fire");
    assert_eq!(log_a, log_b, "fault sequences must replay identically");
    assert_eq!(stats_a, stats_b, "final footprints must match");
}

#[test]
fn ebr_replays_identically() {
    assert_deterministic(|| Ebr::with_threshold(8, 4));
}

#[test]
fn hp_replays_identically() {
    assert_deterministic(|| Hp::with_threshold(8, 3, 4));
}

#[test]
fn he_replays_identically() {
    assert_deterministic(|| He::with_params(8, 3, 4, 4));
}

#[test]
fn ibr_replays_identically() {
    assert_deterministic(|| Ibr::with_params(8, 4, 4));
}

#[test]
fn nbr_replays_identically() {
    assert_deterministic(|| Nbr::with_threshold(8, 2, 4));
}

#[test]
fn qsbr_replays_identically() {
    assert_deterministic(|| Qsbr::with_threshold(8, 4));
}

#[test]
fn leak_replays_identically() {
    assert_deterministic(|| Leak::new(8));
}

#[test]
fn vbr_arena_replays_identically() {
    // VBR's chaos surface is allocation failure; the workload is an
    // alloc/retire churn with version validation sprinkled in.
    fn run_arena(plan: FaultPlan) -> (Vec<era_chaos::FaultRecord>, SmrStats) {
        let arena: ChaosArena<2> = ChaosArena::new(32, plan);
        let mut live = Vec::new();
        for i in 0..HORIZON {
            // Err means injected (or genuine) exhaustion; skip the write.
            if let Ok(h) = arena.alloc() {
                let _ = arena.write(h, 0, i);
                live.push(h);
            }
            if live.len() > 8 {
                let h = live.remove(0);
                let _ = arena.validate(h);
                let _ = arena.retire(h);
            }
        }
        for h in live.drain(..) {
            let _ = arena.retire(h);
        }
        (arena.fault_log(), arena.stats())
    }

    let plan = FaultPlan::generate(SEED, HORIZON, FAULTS);
    let replay = FaultPlan::from_json(&plan.to_json()).expect("parse");
    let (log_a, stats_a) = run_arena(plan);
    let (log_b, stats_b) = run_arena(replay);
    assert!(!log_a.is_empty());
    assert_eq!(log_a, log_b);
    assert_eq!(stats_a, stats_b);
}
