//! Experiment F1 — reproduce **Figure 1** (the Theorem 6.1 lower-bound
//! execution).
//!
//! Replays the paper's adversarial execution with every simulated
//! scheme and prints (a) the retired-population trajectory — the
//! figure's stages generalized to `n` rounds — and (b) the per-scheme
//! outcome: which ERA property the scheme sacrificed.
//!
//! Usage: `figure1 [rounds]` (default 200).

use era_bench::table::Table;
use era_sim::schemes::all_schemes;
use era_sim::theorem::run_figure1;

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    println!("== F1: Figure 1 / Theorem 6.1 lower-bound execution ==");
    println!("rounds (T2 insert/delete pairs) = {rounds}\n");

    let mut outcomes = Vec::new();
    for scheme in all_schemes(2) {
        outcomes.push(run_figure1(scheme, rounds));
    }

    // Trajectory: retired population at sampled stages.
    let mut traj = Table::new(
        std::iter::once("round".to_string()).chain(outcomes.iter().map(|o| o.scheme.clone())),
    );
    let checkpoints: Vec<usize> = (1..=10).map(|i| i * rounds / 10).collect();
    let series: Vec<Vec<usize>> = all_schemes(2)
        .into_iter()
        .map(|scheme| {
            let name = scheme.name();
            let mut sim = era_sim::HarrisSim::new(scheme);
            use era_core::ids::ThreadId;
            use era_sim::OpKind;
            assert!(sim.run_op(ThreadId(1), OpKind::Insert(1)));
            assert!(sim.run_op(ThreadId(1), OpKind::Insert(2)));
            let mut t1 = sim.start_op(ThreadId(0), OpKind::Delete(3));
            for _ in 0..3 {
                sim.step(&mut t1);
            }
            assert!(sim.run_op(ThreadId(1), OpKind::Delete(1)));
            let mut out = Vec::new();
            for (r, n) in (2..2 + rounds as i64).enumerate() {
                assert!(sim.run_op(ThreadId(1), OpKind::Insert(n + 1)), "{name}");
                assert!(sim.run_op(ThreadId(1), OpKind::Delete(n)));
                if checkpoints.contains(&(r + 1)) {
                    out.push(sim.sim.heap.sample().retired);
                }
            }
            out
        })
        .collect();
    for (i, &cp) in checkpoints.iter().enumerate() {
        traj.row(
            std::iter::once(cp.to_string()).chain(
                series
                    .iter()
                    .map(|s| s.get(i).map_or(String::new(), |v| v.to_string())),
            ),
        );
    }
    println!("Retired population during T2's churn (T1 stalled mid-traversal):");
    println!("{traj}");

    let mut table = Table::new([
        "scheme",
        "peak_retired",
        "max_active",
        "violations",
        "rollbacks",
        "solo_done",
        "sacrificed",
    ]);
    for o in &outcomes {
        table.row([
            o.scheme.clone(),
            o.peak_retired.to_string(),
            o.peak_max_active.to_string(),
            o.violations.to_string(),
            o.rollbacks.to_string(),
            o.solo_completed.to_string(),
            o.sacrificed.to_string(),
        ]);
    }
    println!("Outcome of the full construction (churn + T1 solo run):");
    println!("{table}");
    for o in &outcomes {
        if let Some(v) = &o.first_violation {
            println!("  {}: first violation: {v}", o.scheme);
        }
    }
    println!(
        "\nEvery scheme sacrificed one property — no scheme achieved all \
         three, as Theorem 6.1 asserts."
    );
}
