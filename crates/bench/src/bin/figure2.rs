//! Experiment F2 — reproduce **Figure 2** (Appendix E): the
//! protect-validate schemes (HP, HE, IBR) perform an unsafe access on
//! Harris's linked list, while EBR/VBR/NBR survive the same schedule.
//!
//! Usage: `figure2`.

use era_bench::table::Table;
use era_sim::figure2::run_figure2;
use era_sim::schemes::all_schemes;

fn main() {
    println!("== F2: Figure 2 / Appendix E — limited applicability of HP/HE/IBR ==\n");

    let mut table = Table::new([
        "scheme",
        "violations",
        "rollbacks",
        "43_reclaimed",
        "t1_completed",
        "verdict",
    ]);
    let mut details = Vec::new();
    for scheme in all_schemes(4) {
        let out = run_figure2(scheme);
        let verdict = if out.safe() {
            "safe on this schedule"
        } else {
            "UNSAFE: Def. 4.2 violation"
        };
        table.row([
            out.scheme.clone(),
            out.violations.to_string(),
            out.rollbacks.to_string(),
            out.node43_reclaimed.to_string(),
            out.t1_completed.to_string(),
            verdict.to_string(),
        ]);
        if let Some(v) = out.first_violation.clone() {
            details.push(format!("  {}: {v}", out.scheme));
        }
    }
    println!("{table}");
    if !details.is_empty() {
        println!("First violations:");
        for d in details {
            println!("{d}");
        }
    }
    println!(
        "\nHP/HE/IBR validate a *stable* pointer, but stability does not \
         imply the referenced node is un-reclaimed on a marked chain — \
         exactly the paper's Figure 2."
    );
}
