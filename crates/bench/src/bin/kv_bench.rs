//! Experiment E8 — the **serving-layer** experiment: drive the sharded
//! `era-kv` store under YCSB-style mixes and show what the runtime ERA
//! navigator buys.
//!
//! The headline scenario is `--stall`: one reader pins a protected
//! region on shard 0 for the whole run (the adversary of the theorem's
//! robustness lower bounds). With `--navigator off`, an EBR- or
//! QSBR-backed shard grows its retired population without bound — the
//! textbook non-robustness of the easy/applicable schemes. With the
//! navigator on, admission control and cooperative neutralization hold
//! the same shard's footprint to a sawtooth bounded by the hard budget,
//! and every state transition lands in the report.
//!
//! Usage:
//!   kv_bench [--scheme ebr|qsbr|hp] [--threads N] [--shards N]
//!            [--ops N] [--keys N] [--mix a|b|c|churn]
//!            [--dist uniform|zipf] [--theta 0.99]
//!            [--soft N] [--hard N] [--stall] [--navigator on|off]
//!            [--report out.jsonl] [--flight-dump out.eraflt]
//!            [--ring-capacity N]
//!
//! Defaults: ebr, 4 threads, 4 shards, 30000 ops/thread, 1024 keys,
//! churn mix when `--stall` is given (ycsb-a otherwise), uniform keys,
//! soft budget 512, hard budget 2048, navigator on, per-shard trace
//! ring capacity from `ERA_RING_CAPACITY` or the workspace default. A flight recorder
//! is always armed: a panic writes a crash `.eraflt` (one source per
//! shard), and a clean run writes the same dump at exit.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use era_bench::table::Table;
use era_kv::workload::{run_workload, KeyDist, KvMix, KvWorkloadSpec};
use era_kv::{write_jsonl, KvConfig, KvRunRecord, KvStore};
use era_obs::{DumpStats, FlightRecorder, TraceLog};
use era_smr::{ebr::Ebr, hp::Hp, qsbr::Qsbr, Smr};

struct Options {
    scheme: String,
    threads: usize,
    shards: usize,
    ops: usize,
    keys: i64,
    mix: Option<KvMix>,
    dist: KeyDist,
    soft: usize,
    hard: usize,
    stall: bool,
    navigator: bool,
    report: Option<PathBuf>,
    flight_dump: Option<PathBuf>,
    ring_capacity: usize,
}

fn parse_options() -> Options {
    let mut opts = Options {
        scheme: "ebr".to_string(),
        threads: 4,
        shards: 4,
        ops: 30_000,
        keys: 1_024,
        mix: None,
        dist: KeyDist::Uniform,
        soft: 512,
        hard: 2_048,
        stall: false,
        navigator: true,
        report: None,
        flight_dump: None,
        ring_capacity: std::env::var("ERA_RING_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(era_obs::DEFAULT_RING_CAPACITY),
    };
    let mut theta = 0.99f64;
    let mut zipf = false;
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scheme" => opts.scheme = value(&mut args, "--scheme"),
            "--threads" => opts.threads = value(&mut args, "--threads").parse().unwrap_or(4),
            "--shards" => opts.shards = value(&mut args, "--shards").parse().unwrap_or(4).max(1),
            "--ops" => opts.ops = value(&mut args, "--ops").parse().unwrap_or(30_000),
            "--keys" => opts.keys = value(&mut args, "--keys").parse().unwrap_or(1_024),
            "--soft" => opts.soft = value(&mut args, "--soft").parse().unwrap_or(512),
            "--hard" => opts.hard = value(&mut args, "--hard").parse().unwrap_or(2_048),
            "--theta" => theta = value(&mut args, "--theta").parse().unwrap_or(0.99),
            "--stall" => opts.stall = true,
            "--zipf" => zipf = true,
            "--dist" => match value(&mut args, "--dist").as_str() {
                "uniform" => zipf = false,
                "zipf" | "zipfian" => zipf = true,
                other => {
                    eprintln!("unknown --dist {other} (use uniform|zipf)");
                    std::process::exit(2);
                }
            },
            "--mix" => {
                opts.mix = Some(match value(&mut args, "--mix").as_str() {
                    "a" => KvMix::YCSB_A,
                    "b" => KvMix::YCSB_B,
                    "c" => KvMix::YCSB_C,
                    "churn" => KvMix::CHURN,
                    other => {
                        eprintln!("unknown --mix {other} (use a|b|c|churn)");
                        std::process::exit(2);
                    }
                })
            }
            "--navigator" => match value(&mut args, "--navigator").as_str() {
                "on" => opts.navigator = true,
                "off" => opts.navigator = false,
                other => {
                    eprintln!("unknown --navigator {other} (use on|off)");
                    std::process::exit(2);
                }
            },
            "--report" => opts.report = Some(PathBuf::from(value(&mut args, "--report"))),
            "--flight-dump" => {
                opts.flight_dump = Some(PathBuf::from(value(&mut args, "--flight-dump")))
            }
            "--ring-capacity" => {
                opts.ring_capacity = value(&mut args, "--ring-capacity")
                    .parse()
                    .unwrap_or(era_obs::DEFAULT_RING_CAPACITY)
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if zipf {
        opts.dist = KeyDist::Zipfian { theta };
    }
    opts
}

fn run_with<S: Smr>(
    schemes: &[S],
    opts: &Options,
    records: &mut Vec<KvRunRecord>,
    table: &mut Table,
    flight_path: &Path,
) {
    let cfg = KvConfig {
        retired_soft: opts.soft,
        retired_hard: opts.hard,
        max_threads: opts.threads + 8,
        ring_capacity: opts.ring_capacity,
        ..KvConfig::default()
    };
    let store = KvStore::new(schemes, cfg);
    // One flight source per shard — each shard recorder has its own
    // logical clock, so era-view keeps their timelines separate.
    let flight = Arc::new(FlightRecorder::new());
    for i in 0..store.shard_count() {
        flight.add_source(&format!("shard{i}"), store.recorder(i));
    }
    flight.install_panic_hook(flight_path.to_path_buf());
    let spec = KvWorkloadSpec {
        mix: opts.mix.unwrap_or(if opts.stall {
            KvMix::CHURN
        } else {
            KvMix::YCSB_A
        }),
        dist: opts.dist,
        key_range: opts.keys,
        ops_per_thread: opts.ops,
        threads: opts.threads,
        prefill: (opts.keys / 2) as usize,
        seed: 0xE5A_0C5,
    };
    let stall = opts.stall.then_some(0);
    let stats = run_workload(&store, &spec, opts.navigator, stall);
    let peaks: Vec<String> = stats
        .per_shard_retired_peak
        .iter()
        .map(|p| p.to_string())
        .collect();
    table.row(vec![
        store.scheme(0).name().to_string(),
        spec.mix.name().to_string(),
        if opts.navigator { "on" } else { "off" }.to_string(),
        format!("{:.2}", stats.mops()),
        stats.overloaded.to_string(),
        stats.transitions.to_string(),
        stats.neutralizations.to_string(),
        stats.reader_restarts.to_string(),
        peaks.join("/"),
    ]);
    // The flight recorder owns the ring drain; the run record is built
    // from its retained buffers so the two collectors never race for
    // the same events.
    flight.poll();
    let logs: Vec<TraceLog> = (0..store.shard_count())
        .map(|i| flight.retained_log(i))
        .collect();
    for i in 0..store.shard_count() {
        let st = store.scheme(i).stats();
        flight.set_stats(
            i,
            DumpStats {
                retired_now: st.retired_now as u64,
                retired_peak: st.retired_peak as u64,
                total_retired: st.total_retired,
                total_reclaimed: st.total_reclaimed,
                era: st.era,
            },
        );
    }
    match flight.snapshot_to_file(flight_path) {
        Ok(()) => println!(
            "wrote flight dump to {} (replay with `era-view {0}`)",
            flight_path.display()
        ),
        Err(e) => eprintln!("failed to write flight dump {}: {e}", flight_path.display()),
    }
    records.push(KvRunRecord::from_logs(
        &store,
        &spec,
        opts.navigator,
        stats,
        &logs,
    ));
}

fn main() {
    let opts = parse_options();
    let mut records = Vec::new();
    let mut table = Table::new(
        [
            "scheme",
            "mix",
            "nav",
            "Mops/s",
            "shed",
            "transitions",
            "neutralized",
            "restarts",
            "peak/shard",
        ]
        .into_iter()
        .map(String::from),
    );
    let capacity = opts.threads + 4; // workers + prefill + stall reader + slack
    println!(
        "== E8: era-kv serving layer — {} shards, {} threads, {} ops/thread{} ==\n",
        opts.shards,
        opts.threads,
        opts.ops,
        if opts.stall {
            ", stalled reader on shard 0"
        } else {
            ""
        }
    );
    let flight_path = opts.flight_dump.clone().unwrap_or_else(|| {
        opts.report
            .as_ref()
            .map(|p| p.with_extension("eraflt"))
            .unwrap_or_else(|| PathBuf::from("kv_bench.eraflt"))
    });
    match opts.scheme.as_str() {
        "ebr" => {
            let schemes: Vec<Ebr> = (0..opts.shards).map(|_| Ebr::new(capacity)).collect();
            run_with(&schemes, &opts, &mut records, &mut table, &flight_path);
        }
        "qsbr" => {
            let schemes: Vec<Qsbr> = (0..opts.shards).map(|_| Qsbr::new(capacity)).collect();
            run_with(&schemes, &opts, &mut records, &mut table, &flight_path);
        }
        "hp" => {
            let schemes: Vec<Hp> = (0..opts.shards).map(|_| Hp::new(capacity, 3)).collect();
            run_with(&schemes, &opts, &mut records, &mut table, &flight_path);
        }
        other => {
            eprintln!("unknown --scheme {other} (use ebr|qsbr|hp)");
            std::process::exit(2);
        }
    }
    println!("{table}");
    if opts.stall {
        println!(
            "Interpretation: with the navigator on, the stalled shard's peak is a \
             sawtooth bounded near the hard budget ({}); with --navigator off, \
             EBR/QSBR peaks grow with the run length (non-robustness).",
            opts.hard
        );
    }
    if let Some(path) = &opts.report {
        match write_jsonl(path, &records) {
            Ok(()) => println!(
                "wrote {} run record(s) to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write report {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
