//! Experiment E10 — the **chaos** experiment: drive every scheme
//! through a seeded, replayable [`FaultPlan`] and measure what recovery
//! costs.
//!
//! Each scheme runs the same single-threaded churn workload while the
//! plan injects die-pinned context drops, frozen announcements, delayed
//! flushes, registration failures, slot exhaustion, and spurious
//! restart storms. The run record counts faults planned vs. fired,
//! orphan adoptions (the `adopt` hook), the footprint peak, and the
//! recovery latency — flush rounds needed to drain `retired_now` to 0
//! after the run. One JSON line per scheme embeds the full plan, so any
//! row of a checked-in baseline can be replayed bit-for-bit.
//!
//! Usage:
//!   chaos_bench [--seed N] [--ops N] [--faults N]
//!               [--scheme all|ebr|hp|he|ibr|nbr|qsbr|vbr|leak]
//!               [--report out.jsonl] [--flight-dump out.eraflt]
//!
//! Defaults: seed 0xC4A05, 20000 ops, 24 faults, all schemes. A flight
//! recorder is always armed: a panic mid-run writes a crash `.eraflt`
//! next to the FaultPlan JSON, and a clean run writes the same dump at
//! exit so `era-view` can replay the injected faults and adoptions.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use era_bench::table::Table;
use era_chaos::{ChaosArena, ChaosSmr, FaultPlan};
use era_obs::report::JsonObject;
use era_obs::{DumpStats, FlightRecorder, Hook, Recorder};
use era_smr::common::{Smr, SmrHeader, SmrStats};
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, leak::Leak, nbr::Nbr, qsbr::Qsbr};

struct Options {
    seed: u64,
    ops: u64,
    faults: usize,
    scheme: String,
    report: Option<PathBuf>,
    flight_dump: Option<PathBuf>,
}

fn parse_options() -> Options {
    let mut opts = Options {
        seed: 0xC4A05,
        ops: 20_000,
        faults: 24,
        scheme: "all".to_string(),
        report: None,
        flight_dump: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => opts.seed = value(&mut args, "--seed").parse().unwrap_or(0xC4A05),
            "--ops" => opts.ops = value(&mut args, "--ops").parse().unwrap_or(20_000),
            "--faults" => opts.faults = value(&mut args, "--faults").parse().unwrap_or(24),
            "--scheme" => opts.scheme = value(&mut args, "--scheme"),
            "--report" => opts.report = Some(PathBuf::from(value(&mut args, "--report"))),
            "--flight-dump" => {
                opts.flight_dump = Some(PathBuf::from(value(&mut args, "--flight-dump")))
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// One scheme's chaos run, reduced to the numbers E10 compares.
struct ChaosRunRecord {
    scheme: String,
    seed: u64,
    ops: u64,
    faults_planned: u64,
    faults_injected: u64,
    adoptions: u64,
    retired_peak: u64,
    total_reclaimed: u64,
    recovery_rounds: u64,
    recovered: bool,
    trace_dropped: u64,
    plan_json: String,
}

impl ChaosRunRecord {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("record", "chaos_run")
            .str("scheme", &self.scheme)
            .u64("seed", self.seed)
            .u64("ops", self.ops)
            .u64("faults_planned", self.faults_planned)
            .u64("faults_injected", self.faults_injected)
            .u64("adoptions", self.adoptions)
            .u64("retired_peak", self.retired_peak)
            .u64("total_reclaimed", self.total_reclaimed)
            .u64("recovery_rounds", self.recovery_rounds)
            .bool("recovered", self.recovered)
            .u64("trace_dropped", self.trace_dropped)
            .raw("plan", &self.plan_json)
            .finish()
    }
}

/// Converts live scheme counters into the dependency-free mirror the
/// dump format carries.
fn dump_stats(st: &SmrStats) -> DumpStats {
    DumpStats {
        retired_now: st.retired_now as u64,
        retired_peak: st.retired_peak as u64,
        total_retired: st.total_retired,
        total_reclaimed: st.total_reclaimed,
        era: st.era,
    }
}

#[repr(C)]
struct Node {
    header: SmrHeader,
    payload: u64,
}

/// # Safety
///
/// `p` must be the `Box::into_raw` pointer of a live `Node`; the SMR
/// scheme passes it here exactly once.
unsafe fn free_node(p: *mut u8) {
    unsafe { drop(Box::from_raw(p as *mut Node)) }
}

/// Drain cap: a scheme that cannot empty its retired population within
/// this many rounds (with every chaos pin released) has wedged.
const MAX_RECOVERY_ROUNDS: u64 = 256;

fn run_scheme<S: Smr>(
    name: &str,
    inner: S,
    opts: &Options,
    reclaims: bool,
    flight: &FlightRecorder,
) -> ChaosRunRecord {
    let plan = FaultPlan::generate(opts.seed, opts.ops, opts.faults);
    let plan_json = plan.to_json();
    let faults_planned = plan.ops.len() as u64;
    let recorder = Recorder::new(16);
    let source = flight.add_source(name, &recorder);
    let smr = ChaosSmr::new(inner, plan);
    smr.attach_recorder(&recorder);
    let mut ctx = smr.register().expect("root context");
    for i in 0..opts.ops {
        smr.begin_op(&mut ctx);
        if i % 3 == 0 {
            let node = Box::into_raw(Box::new(Node {
                header: SmrHeader::new(),
                payload: i,
            }));
            // SAFETY: `node` is freshly allocated and never published —
            // retiring it immediately is well-formed and happens once.
            unsafe {
                smr.init_header(&mut ctx, &(*node).header);
                smr.retire(&mut ctx, node as *mut u8, &(*node).header, free_node);
            }
        }
        let _ = smr.needs_restart(&mut ctx);
        smr.end_op(&mut ctx);
        smr.quiescent_point(&mut ctx);
        if i % 16 == 0 {
            smr.flush(&mut ctx);
        }
        // Periodic incremental drain into the flight buffer, so ring
        // overwrite (not the flight layer) is the only loss channel
        // and a crash loses at most one stride of events.
        if i % 512 == 0 {
            flight.poll();
        }
    }
    // Recovery: release every chaos-held pin, then count the flush
    // rounds needed to drain the retired population.
    smr.quiesce(&mut ctx);
    let mut recovery_rounds = 0;
    while reclaims && smr.stats().retired_now > 0 && recovery_rounds < MAX_RECOVERY_ROUNDS {
        smr.begin_op(&mut ctx);
        smr.end_op(&mut ctx);
        smr.quiescent_point(&mut ctx);
        smr.flush(&mut ctx);
        recovery_rounds += 1;
    }
    let st = smr.stats();
    flight.set_stats(source, dump_stats(&st));
    flight.poll();
    ChaosRunRecord {
        scheme: name.to_string(),
        seed: opts.seed,
        ops: opts.ops,
        faults_planned,
        faults_injected: smr.faults_injected(),
        adoptions: recorder.metrics().hook_count(Hook::Adopt),
        retired_peak: st.retired_peak as u64,
        total_reclaimed: st.total_reclaimed,
        recovery_rounds,
        recovered: !reclaims || st.retired_now == 0,
        trace_dropped: recorder.dropped(),
        plan_json,
    }
}

fn run_vbr(opts: &Options, flight: &FlightRecorder) -> ChaosRunRecord {
    let plan = FaultPlan::generate(opts.seed, opts.ops, opts.faults);
    let plan_json = plan.to_json();
    let faults_planned = plan.ops.len() as u64;
    let recorder = Recorder::new(16);
    let source = flight.add_source("VBR", &recorder);
    let arena: ChaosArena<2> = ChaosArena::new(64, plan);
    arena.attach_recorder(&recorder);
    let mut live = Vec::new();
    for i in 0..opts.ops {
        if let Ok(h) = arena.alloc() {
            let _ = arena.write(h, 0, i);
            live.push(h);
        }
        if live.len() > 32 {
            let h = live.remove(0);
            let _ = arena.retire(h);
        }
        if i % 512 == 0 {
            flight.poll();
        }
    }
    for h in live.drain(..) {
        let _ = arena.retire(h);
    }
    let st = arena.stats();
    flight.set_stats(source, dump_stats(&st));
    flight.poll();
    ChaosRunRecord {
        scheme: "VBR".to_string(),
        seed: opts.seed,
        ops: opts.ops,
        faults_planned,
        faults_injected: arena.faults_injected(),
        adoptions: 0, // retire-is-reclaim: nothing to adopt
        retired_peak: st.retired_peak as u64,
        total_reclaimed: st.total_reclaimed,
        recovery_rounds: 0,
        recovered: arena.live() == 0,
        trace_dropped: recorder.dropped(),
        plan_json,
    }
}

fn main() {
    let opts = parse_options();
    // Crash-safe by default: the dump lands next to the FaultPlan JSON
    // (the --report path with an .eraflt extension) unless overridden.
    let flight_path = opts.flight_dump.clone().unwrap_or_else(|| {
        opts.report
            .as_ref()
            .map(|p| p.with_extension("eraflt"))
            .unwrap_or_else(|| PathBuf::from("chaos_bench.eraflt"))
    });
    let flight = Arc::new(FlightRecorder::new());
    flight.install_panic_hook(flight_path.clone());
    let cap = 16; // root ctx + chaos victims (stalls overlap at most a few)
    let all = opts.scheme == "all";
    let want = |n: &str| all || opts.scheme == n;
    let mut records = Vec::new();
    println!(
        "== E10: chaos recovery — seed {:#x}, {} ops, {} planned faults ==\n",
        opts.seed, opts.ops, opts.faults
    );
    if want("ebr") {
        records.push(run_scheme(
            "EBR",
            Ebr::with_threshold(cap, 64),
            &opts,
            true,
            &flight,
        ));
    }
    if want("hp") {
        records.push(run_scheme(
            "HP",
            Hp::with_threshold(cap, 3, 64),
            &opts,
            true,
            &flight,
        ));
    }
    if want("he") {
        records.push(run_scheme(
            "HE",
            He::with_params(cap, 3, 64, 8),
            &opts,
            true,
            &flight,
        ));
    }
    if want("ibr") {
        records.push(run_scheme(
            "IBR",
            Ibr::with_params(cap, 64, 8),
            &opts,
            true,
            &flight,
        ));
    }
    if want("nbr") {
        records.push(run_scheme(
            "NBR",
            Nbr::with_threshold(cap, 2, 64),
            &opts,
            true,
            &flight,
        ));
    }
    if want("qsbr") {
        records.push(run_scheme(
            "QSBR",
            Qsbr::with_threshold(cap, 64),
            &opts,
            true,
            &flight,
        ));
    }
    if want("leak") {
        records.push(run_scheme("Leak", Leak::new(cap), &opts, false, &flight));
    }
    if want("vbr") {
        records.push(run_vbr(&opts, &flight));
    }
    if records.is_empty() {
        eprintln!(
            "unknown --scheme {} (use all|ebr|hp|he|ibr|nbr|qsbr|vbr|leak)",
            opts.scheme
        );
        std::process::exit(2);
    }

    let mut table = Table::new(
        [
            "scheme",
            "planned",
            "injected",
            "adoptions",
            "peak",
            "reclaimed",
            "recovery",
            "recovered",
            "dropped",
        ]
        .into_iter()
        .map(String::from),
    );
    for r in &records {
        table.row(vec![
            r.scheme.clone(),
            r.faults_planned.to_string(),
            r.faults_injected.to_string(),
            r.adoptions.to_string(),
            r.retired_peak.to_string(),
            r.total_reclaimed.to_string(),
            format!("{} rounds", r.recovery_rounds),
            if r.recovered { "yes" } else { "NO" }.to_string(),
            r.trace_dropped.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Interpretation: every planned fault fires (injected == planned up to \
         window clipping); reclaiming schemes drain to 0 within the recovery \
         cap, and adoptions > 0 shows survivors absorbing dead contexts' \
         garbage rather than leaking it."
    );
    match flight.snapshot_to_file(&flight_path) {
        Ok(()) => println!(
            "wrote flight dump to {} (replay with `era-view {0}`)",
            flight_path.display()
        ),
        Err(e) => eprintln!("failed to write flight dump {}: {e}", flight_path.display()),
    }
    if records.iter().any(|r| !r.recovered) {
        eprintln!("FAILED: a scheme did not recover");
        std::process::exit(1);
    }
    if let Some(path) = &opts.report {
        let mut out = String::new();
        for r in &records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        match std::fs::File::create(path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => println!(
                "wrote {} run record(s) to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write report {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
