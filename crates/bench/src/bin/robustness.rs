//! Experiment E4 — **robustness footprint** of the real schemes
//! (Definitions 5.1/5.2, quantitative).
//!
//! Two stalled-reader experiments on Michael's list:
//!
//! * *disjoint churn*: the worker churns keys outside the structure —
//!   EBR accumulates everything, HP/HE/IBR stay (near-)constant;
//! * *overlapping churn*: the worker deletes and re-inserts the
//!   structure's own keys — the pre-stall cohort is pinned by HE/IBR
//!   (footprint ≈ structure size: **weak** robustness, linear in
//!   `max_active`), while HP stays constant and EBR keeps growing.
//!
//! Plus the VBR/NBR rows: VBR's retired population is identically zero
//! (retire *is* reclaim); NBR's stays below its neutralization
//! threshold.
//!
//! Usage: `robustness [churn_ops] [structure_size]` (defaults 40000, 512).

use era_bench::runner::{run_harris, run_vbr, stall_churn_michael};
use era_bench::table::Table;
use era_bench::workload::{KeyDist, Mix, WorkloadSpec};
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, nbr::Nbr, qsbr::Qsbr};

fn main() {
    let churn: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let size: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);

    println!("== E4: robustness footprint under a stalled reader ==");
    println!("structure size = {size}, churn ops = {churn}\n");

    for overlap in [false, true] {
        let label = if overlap {
            "overlapping churn (retires the pre-stall cohort)"
        } else {
            "disjoint churn (retires only post-stall nodes)"
        };
        println!("--- {label} ---");
        let mut table = Table::new([
            "scheme",
            "peak_retired",
            "final_retired",
            "series (every ~25%)",
        ]);
        macro_rules! run {
            ($name:literal, $make:expr) => {{
                let smr = $make;
                let r = stall_churn_michael(&smr, $name, size, churn, overlap);
                let n = r.retired_series.len();
                let picks: Vec<String> = (1..=4)
                    .map(|i| r.retired_series[(i * (n - 1)) / 4].to_string())
                    .collect();
                table.row([
                    $name.to_string(),
                    r.peak_retired.to_string(),
                    r.final_retired.to_string(),
                    picks.join(" → "),
                ]);
            }};
        }
        run!("EBR", Ebr::with_threshold(4, 16));
        run!("HP", Hp::with_threshold(4, 3, 16));
        run!("HE", He::with_params(4, 3, 16, 8));
        run!("IBR", Ibr::with_params(4, 16, 8));
        run!("QSBR", Qsbr::with_threshold(4, 16));
        println!("{table}");
        println!(
            "(QSBR note: the generic harness never calls quiescent(), so \
             nothing drains even after the unstall — exactly the \
             integration burden that keeps QSBR out of Definition 5.3.)\n"
        );
    }

    println!("--- schemes without the protect/epoch dichotomy ---");
    let mut table = Table::new(["scheme", "peak_retired", "final_retired", "note"]);
    let spec = WorkloadSpec {
        mix: Mix::UPDATE_HEAVY,
        dist: KeyDist::Uniform,
        key_range: size as i64,
        ops_per_thread: churn / 4,
        threads: 4,
        prefill: size / 2,
        seed: 42,
    };
    let nbr = Nbr::with_threshold(8, 2, 64);
    let r = run_harris(&nbr, &spec);
    table.row([
        "NBR".to_string(),
        r.peak_retired.to_string(),
        r.final_retired.to_string(),
        "bounded by the neutralization threshold".to_string(),
    ]);
    let r = run_vbr(&spec);
    table.row([
        "VBR".to_string(),
        r.peak_retired.to_string(),
        r.final_retired.to_string(),
        "retire is reclaim: identically zero".to_string(),
    ]);
    println!("{table}");
}
