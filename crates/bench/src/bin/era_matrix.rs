//! Experiment T1 — the §6 **ERA trade-off matrix**, measured.
//!
//! Builds the matrix three ways and checks Theorem 6.1 over each:
//!
//! 1. the paper's reference classification (`era-core`);
//! 2. the matrix *measured* by replaying the Figure 1 construction with
//!    every simulated scheme (robustness classified from scaling runs,
//!    applicability from the safety oracle, easy integration from the
//!    static Definition 5.3 interface plus observed roll-backs);
//! 3. robustness of the **real** `era-smr` schemes from stalled-thread
//!    churn at increasing scales.
//!
//! Usage: `era_matrix [rounds]` (default 256).

use era_bench::runner::stall_churn_michael;
use era_core::era::reference_matrix;
use era_core::robustness::{classify, RobustnessObservation};
use era_sim::theorem::measured_matrix;
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, qsbr::Qsbr};

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);

    println!("== T1: the ERA trade-off matrix (§6) ==\n");

    println!("--- Paper reference classification ---");
    let reference = reference_matrix();
    println!("{reference}");
    reference
        .check_theorem()
        .expect("reference matrix contradicts the theorem");

    println!("--- Measured from the simulator (Figure 1 replays, {rounds} rounds) ---");
    let measured = measured_matrix(rounds);
    println!("{measured}");
    match measured.check_theorem() {
        Ok(()) => println!("Theorem 6.1 holds over the measured matrix.\n"),
        Err(v) => panic!("measurement pipeline broken: {v}"),
    }

    println!("--- Real-scheme robustness (stalled reader, churn at 4 scales) ---");
    let scales = [2_000usize, 8_000, 32_000, 128_000];
    let mut table = era_bench::table::Table::new(["scheme", "peaks (per scale)", "classification"]);
    macro_rules! classify_real {
        ($name:literal, $make:expr) => {{
            let mut obs = Vec::new();
            let mut peaks = Vec::new();
            for &scale in &scales {
                let smr = $make;
                let report = stall_churn_michael(&smr, $name, 64, scale, false);
                peaks.push(report.peak_retired.to_string());
                obs.push(RobustnessObservation {
                    scale: scale as u64,
                    threads: 2,
                    peak_retired: report.peak_retired,
                    peak_max_active: 64 + 64, // structure + churn window
                });
            }
            let verdict = classify(&obs);
            table.row([$name.to_string(), peaks.join(" "), verdict.to_string()]);
        }};
    }
    classify_real!("EBR", Ebr::with_threshold(4, 16));
    classify_real!("HP", Hp::with_threshold(4, 3, 16));
    classify_real!("HE", He::with_params(4, 3, 16, 8));
    classify_real!("IBR", Ibr::with_params(4, 16, 8));
    classify_real!("QSBR", Qsbr::with_threshold(4, 16));
    println!("{table}");
    println!(
        "EBR's peak grows with the churn (not even weakly robust); the \
         protect-based schemes stay bounded — and pay for it with Harris-list \
         applicability (see F2)."
    );
}
