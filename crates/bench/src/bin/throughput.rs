//! Experiment E5 — **throughput scalability** of every (structure ×
//! scheme) pair, the standard SMR evaluation shape of the works the
//! paper surveys (IBR [45], NBR [39], VBR [37]).
//!
//! Prints Mops/s for Michael's list (all pointer-based schemes),
//! Harris's list (EBR/NBR/Leak — the type system excludes the rest) and
//! the VBR list, across thread counts and operation mixes.
//!
//! Usage: `throughput [ops_per_thread] [key_range]` (defaults 200000, 1024).

use era_bench::runner::{run_harris, run_michael, run_skiplist, run_vbr};
use era_bench::table::Table;
use era_bench::workload::{Mix, WorkloadSpec};
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, leak::Leak, nbr::Nbr};

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let key_range: i64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_024);
    let threads = [1usize, 2, 4, 8];
    let mixes = [Mix::READ_HEAVY, Mix::UPDATE_HEAVY];

    println!("== E5: throughput (Mops/s), ops/thread = {ops}, keys = {key_range} ==\n");

    for mix in mixes {
        println!("--- mix {mix} ---");
        let mut table = Table::new(
            std::iter::once("structure+scheme".to_string())
                .chain(threads.iter().map(|t| format!("{t}T"))),
        );
        macro_rules! spec {
            ($t:expr) => {
                WorkloadSpec {
                    mix,
                    key_range,
                    ops_per_thread: ops,
                    threads: $t,
                    prefill: (key_range / 2) as usize,
                    seed: 7,
                }
            };
        }
        macro_rules! row_michael {
            ($label:literal, $make:expr) => {{
                let mut cells = vec![$label.to_string()];
                for &t in &threads {
                    let smr = $make;
                    let st = run_michael(&smr, &spec!(t));
                    cells.push(format!("{:.2}", st.mops()));
                }
                table.row(cells);
            }};
        }
        macro_rules! row_harris {
            ($label:literal, $make:expr) => {{
                let mut cells = vec![$label.to_string()];
                for &t in &threads {
                    let smr = $make;
                    let st = run_harris(&smr, &spec!(t));
                    cells.push(format!("{:.2}", st.mops()));
                }
                table.row(cells);
            }};
        }
        row_michael!("michael+Leak", Leak::new(16));
        row_michael!("michael+EBR", Ebr::new(16));
        row_michael!("michael+HP", Hp::new(16, 3));
        row_michael!("michael+HE", He::new(16, 3));
        row_michael!("michael+IBR", Ibr::new(16));
        row_harris!("harris+Leak", Leak::new(16));
        row_harris!("harris+EBR", Ebr::new(16));
        row_harris!("harris+NBR", Nbr::new(16, 2));
        {
            let mut cells = vec!["skiplist+EBR".to_string()];
            for &t in &threads {
                let smr = Ebr::new(16);
                let st = run_skiplist(&smr, &spec!(t));
                cells.push(format!("{:.2}", st.mops()));
            }
            table.row(cells);
        }
        {
            let mut cells = vec!["vbr-list".to_string()];
            for &t in &threads {
                let st = run_vbr(&spec!(t));
                cells.push(format!("{:.2}", st.mops()));
            }
            table.row(cells);
        }
        println!("{table}");
    }
    println!(
        "Shape expectations: Leak is the ceiling; EBR tracks it closely; \
         HP/HE pay per-read validation; Harris beats Michael under churn \
         (see also the michael_vs_harris Criterion bench, experiment E6)."
    );
}
