//! Experiment E5 — **throughput scalability** of every (structure ×
//! scheme) pair, the standard SMR evaluation shape of the works the
//! paper surveys (IBR [45], NBR [39], VBR [37]).
//!
//! Prints Mops/s for Michael's list (all pointer-based schemes),
//! Harris's list (EBR/NBR/Leak — the type system excludes the rest) and
//! the VBR list, across thread counts and operation mixes.
//!
//! Usage: `throughput [ops_per_thread] [key_range] [--report out.jsonl]
//! [--json-out out.jsonl] [--label tag] [--zipf [--theta 0.99]]`
//! (defaults 200000, 1024, uniform keys).
//! With `--report`, every Michael/Harris run is traced through an
//! [`era_obs::Recorder`] and the JSON-lines report (throughput, retired
//! high-water, footprint curve, reclaim-latency histogram) is written
//! to the given path. With `--json-out`, the same runs are recorded
//! *untraced* (throughput + scheme counters only — the shape perf
//! comparisons use; see `era_bench::report` for the format) — since the
//! workloads are seeded, the output is deterministic up to timing.
//! `--label` tags every emitted record (e.g. `before`/`after`).
//! `--zipf` draws keys from a YCSB-style zipfian distribution instead
//! of uniformly, concentrating contention on a hot set.

use std::path::PathBuf;

use era_bench::report::{write_jsonl, RunRecord};
use era_bench::runner::{
    run_harris, run_harris_traced, run_michael, run_michael_traced, run_skiplist, run_vbr,
};
use era_bench::table::Table;
use era_bench::workload::{KeyDist, Mix, WorkloadSpec};
use era_obs::Recorder;
use era_smr::common::Smr as _;
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, leak::Leak, nbr::Nbr};

fn main() {
    let mut report_path: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut label = String::new();
    let mut zipf = false;
    let mut theta = 0.99f64;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--report" {
            report_path = args.next().map(PathBuf::from);
            if report_path.is_none() {
                eprintln!("--report requires a path argument");
                std::process::exit(2);
            }
        } else if arg == "--json-out" {
            json_out = args.next().map(PathBuf::from);
            if json_out.is_none() {
                eprintln!("--json-out requires a path argument");
                std::process::exit(2);
            }
        } else if arg == "--label" {
            match args.next() {
                Some(l) => label = l,
                None => {
                    eprintln!("--label requires a value");
                    std::process::exit(2);
                }
            }
        } else if arg == "--zipf" {
            zipf = true;
        } else if arg == "--theta" {
            match args.next().and_then(|s| s.parse().ok()) {
                Some(t) if (0.0..1.0).contains(&t) && t > 0.0 => theta = t,
                _ => {
                    eprintln!("--theta requires a value in (0, 1)");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let dist = if zipf {
        KeyDist::Zipfian { theta }
    } else {
        KeyDist::Uniform
    };
    let ops: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let key_range: i64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_024);
    let mut records: Vec<RunRecord> = Vec::new();
    let threads = [1usize, 2, 4, 8];
    let mixes = [Mix::READ_HEAVY, Mix::UPDATE_HEAVY];

    println!(
        "== E5: throughput (Mops/s), ops/thread = {ops}, keys = {key_range} ({}) ==\n",
        match dist {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipfian { theta } => format!("zipfian theta={theta}"),
        }
    );

    for mix in mixes {
        println!("--- mix {mix} ---");
        let mut table = Table::new(
            std::iter::once("structure+scheme".to_string())
                .chain(threads.iter().map(|t| format!("{t}T"))),
        );
        macro_rules! spec {
            ($t:expr) => {
                WorkloadSpec {
                    mix,
                    dist,
                    key_range,
                    ops_per_thread: ops,
                    threads: $t,
                    prefill: (key_range / 2) as usize,
                    seed: 7,
                }
            };
        }
        macro_rules! row_michael {
            ($label:literal, $make:expr) => {{
                let mut cells = vec![$label.to_string()];
                for &t in &threads {
                    let smr = $make;
                    let spec = spec!(t);
                    let st = if report_path.is_some() {
                        let rec = Recorder::new(t + 2);
                        let st = run_michael_traced(&smr, &spec, &rec);
                        records.push(
                            RunRecord::collect("michael", smr.name(), &spec, st, &rec)
                                .with_label(&label),
                        );
                        st
                    } else {
                        let st = run_michael(&smr, &spec);
                        if json_out.is_some() {
                            records.push(
                                RunRecord::from_stats("michael", smr.name(), &spec, st)
                                    .with_label(&label),
                            );
                        }
                        st
                    };
                    cells.push(format!("{:.2}", st.mops()));
                }
                table.row(cells);
            }};
        }
        macro_rules! row_harris {
            ($label:literal, $make:expr) => {{
                let mut cells = vec![$label.to_string()];
                for &t in &threads {
                    let smr = $make;
                    let spec = spec!(t);
                    let st = if report_path.is_some() {
                        let rec = Recorder::new(t + 2);
                        let st = run_harris_traced(&smr, &spec, &rec);
                        records.push(
                            RunRecord::collect("harris", smr.name(), &spec, st, &rec)
                                .with_label(&label),
                        );
                        st
                    } else {
                        let st = run_harris(&smr, &spec);
                        if json_out.is_some() {
                            records.push(
                                RunRecord::from_stats("harris", smr.name(), &spec, st)
                                    .with_label(&label),
                            );
                        }
                        st
                    };
                    cells.push(format!("{:.2}", st.mops()));
                }
                table.row(cells);
            }};
        }
        row_michael!("michael+Leak", Leak::new(16));
        row_michael!("michael+EBR", Ebr::new(16));
        row_michael!("michael+HP", Hp::new(16, 3));
        row_michael!("michael+HE", He::new(16, 3));
        row_michael!("michael+IBR", Ibr::new(16));
        row_harris!("harris+Leak", Leak::new(16));
        row_harris!("harris+EBR", Ebr::new(16));
        row_harris!("harris+NBR", Nbr::new(16, 2));
        {
            let mut cells = vec!["skiplist+EBR".to_string()];
            for &t in &threads {
                let smr = Ebr::new(16);
                let st = run_skiplist(&smr, &spec!(t));
                cells.push(format!("{:.2}", st.mops()));
            }
            table.row(cells);
        }
        {
            let mut cells = vec!["vbr-list".to_string()];
            for &t in &threads {
                let st = run_vbr(&spec!(t));
                cells.push(format!("{:.2}", st.mops()));
            }
            table.row(cells);
        }
        println!("{table}");
    }
    println!(
        "Shape expectations: Leak is the ceiling; EBR tracks it closely; \
         HP/HE pay per-read validation; Harris beats Michael under churn \
         (see also the michael_vs_harris Criterion bench, experiment E6)."
    );
    for path in [report_path, json_out].into_iter().flatten() {
        match write_jsonl(&path, &records) {
            Ok(()) => println!("wrote {} run records to {}", records.len(), path.display()),
            Err(e) => {
                eprintln!("failed to write report {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
