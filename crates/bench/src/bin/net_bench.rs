//! Experiment E13 — the **wire-level** experiment: drive an `era-net`
//! server with an open-loop, zipfian-skewed load and measure what
//! navigator-driven admission control looks like from the client side:
//! tail latency, throughput, and typed `Overloaded`/`DeadlineExceeded`
//! frames instead of silent stalls.
//!
//! By default the benchmark spawns its own in-process server (same
//! process, real loopback TCP). Point `--addr` at an already-running
//! `era-net serve` to drive it from a separate process — several
//! `net_bench` instances can gang up on one server.
//!
//! Latency is measured from each request's **intended** send time
//! under open-loop pacing (`--rate`), so coordinated omission is
//! charged to the server rather than hidden by a stalling client.
//!
//! Usage:
//!   net_bench [--addr HOST:PORT] [--connections N] [--duration SECS]
//!             [--pipeline N] [--rate OPS_PER_SEC] [--keys N]
//!             [--mix a|b|c|churn] [--dist uniform|zipf] [--theta F]
//!             [--seed N] [--report out.jsonl]
//!             (internal server only:)
//!             [--scheme ebr|qsbr|hp] [--shards N] [--workers N]
//!             [--soft N] [--hard N] [--flight-dump out.eraflt]
//!             [--ring-capacity N]  (default: ERA_RING_CAPACITY env)

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use era_bench::table::Table;
use era_kv::workload::{KeyDist, KvMix};
use era_kv::{KvConfig, KvStore};
use era_net::proto::{read_frame, write_request, Request, Response};
use era_net::{percentiles, write_jsonl, ErrorCode, NetConfig, NetRunRecord, NetServer};
use era_smr::{ebr::Ebr, hp::Hp, qsbr::Qsbr, Smr};
use rand::{rngs::StdRng, RngExt, SeedableRng};

struct Options {
    addr: Option<String>,
    connections: usize,
    duration: Duration,
    pipeline: usize,
    rate: u64,
    keys: i64,
    mix: KvMix,
    mix_name: &'static str,
    dist: KeyDist,
    seed: u64,
    report: Option<PathBuf>,
    // Internal-server knobs.
    scheme: String,
    shards: usize,
    workers: usize,
    soft: usize,
    hard: usize,
    flight_dump: PathBuf,
    ring_capacity: usize,
}

fn parse_options() -> Options {
    let mut opts = Options {
        addr: None,
        connections: 4,
        duration: Duration::from_secs(3),
        pipeline: 16,
        rate: 0,
        keys: 1 << 16,
        mix: KvMix::YCSB_A,
        mix_name: "a",
        dist: KeyDist::Uniform,
        seed: 0x0E8A_BE9C,
        report: None,
        scheme: "ebr".to_string(),
        shards: 4,
        workers: 4,
        soft: 512,
        hard: 2_048,
        flight_dump: PathBuf::from("net_bench.eraflt"),
        ring_capacity: std::env::var("ERA_RING_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(era_obs::DEFAULT_RING_CAPACITY),
    };
    let mut theta = 0.99f64;
    let mut zipf = false;
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = Some(value(&mut args, "--addr")),
            "--connections" => {
                opts.connections = value(&mut args, "--connections")
                    .parse()
                    .unwrap_or(4)
                    .max(1)
            }
            "--duration" => {
                let secs: f64 = value(&mut args, "--duration").parse().unwrap_or(3.0);
                opts.duration = Duration::from_secs_f64(secs.max(0.1));
            }
            "--pipeline" => {
                opts.pipeline = value(&mut args, "--pipeline").parse().unwrap_or(16).max(1)
            }
            "--rate" => opts.rate = value(&mut args, "--rate").parse().unwrap_or(0),
            "--keys" => opts.keys = value(&mut args, "--keys").parse().unwrap_or(1 << 16),
            "--theta" => theta = value(&mut args, "--theta").parse().unwrap_or(0.99),
            "--seed" => opts.seed = value(&mut args, "--seed").parse().unwrap_or(0x0E8A_BE9C),
            "--zipf" => zipf = true,
            "--dist" => match value(&mut args, "--dist").as_str() {
                "uniform" => zipf = false,
                "zipf" | "zipfian" => zipf = true,
                other => {
                    eprintln!("unknown --dist {other} (use uniform|zipf)");
                    std::process::exit(2);
                }
            },
            "--mix" => {
                (opts.mix, opts.mix_name) = match value(&mut args, "--mix").as_str() {
                    "a" => (KvMix::YCSB_A, "a"),
                    "b" => (KvMix::YCSB_B, "b"),
                    "c" => (KvMix::YCSB_C, "c"),
                    "churn" => (KvMix::CHURN, "churn"),
                    other => {
                        eprintln!("unknown --mix {other} (use a|b|c|churn)");
                        std::process::exit(2);
                    }
                }
            }
            "--report" => opts.report = Some(PathBuf::from(value(&mut args, "--report"))),
            "--scheme" => opts.scheme = value(&mut args, "--scheme"),
            "--shards" => opts.shards = value(&mut args, "--shards").parse().unwrap_or(4).max(1),
            "--workers" => opts.workers = value(&mut args, "--workers").parse().unwrap_or(4).max(1),
            "--soft" => opts.soft = value(&mut args, "--soft").parse().unwrap_or(512),
            "--hard" => opts.hard = value(&mut args, "--hard").parse().unwrap_or(2_048),
            "--flight-dump" => opts.flight_dump = PathBuf::from(value(&mut args, "--flight-dump")),
            "--ring-capacity" => {
                opts.ring_capacity = value(&mut args, "--ring-capacity")
                    .parse()
                    .unwrap_or(era_obs::DEFAULT_RING_CAPACITY)
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if zipf {
        opts.dist = KeyDist::Zipfian { theta };
    }
    opts
}

/// What one client connection measured.
#[derive(Default)]
struct ConnResult {
    ops: u64,
    overloaded: u64,
    deadline_exceeded: u64,
    latencies_us: Vec<u64>,
}

fn read_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> Response {
    let frame = read_frame(stream, scratch)
        .expect("transport error mid-response")
        .expect("server closed mid-response");
    Response::decode(frame).expect("server sent an undecodable frame")
}

/// One client connection: open-loop paced, pipelined bursts, latency
/// from intended send times.
fn drive_connection(opts: &Options, addr: &str, conn_id: u64) -> ConnResult {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut scratch = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed ^ conn_id.wrapping_mul(0x9E37_79B9));
    let sampler = opts.dist.sampler(opts.keys);
    let mut res = ConnResult::default();
    // Per-connection share of the offered load; 0 = closed loop.
    let interval = if opts.rate > 0 {
        Duration::from_secs_f64(opts.connections as f64 / opts.rate as f64)
    } else {
        Duration::ZERO
    };
    let start = Instant::now();
    let mut burst = Vec::with_capacity(opts.pipeline * 24);
    let mut intended: Vec<Instant> = Vec::with_capacity(opts.pipeline);
    let mut sent_total = 0u64;
    while start.elapsed() < opts.duration {
        burst.clear();
        intended.clear();
        // Pace the burst head; the burst's requests inherit evenly
        // spaced intended timestamps so a late batch charges every
        // request it delayed.
        if opts.rate > 0 {
            let due = start + interval.mul_f64(sent_total as f64);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        for j in 0..opts.pipeline {
            let key = sampler.sample(&mut rng);
            let draw = rng.random_range(0..100u32);
            let req = if draw < opts.mix.reads {
                Request::Get { key }
            } else if draw < opts.mix.reads + opts.mix.writes {
                Request::Put {
                    key,
                    value: sent_total as i64,
                }
            } else {
                Request::Remove { key }
            };
            req.encode(&mut burst);
            intended.push(if opts.rate > 0 {
                start + interval.mul_f64((sent_total + j as u64) as f64)
            } else {
                Instant::now()
            });
        }
        stream.write_all(&burst).expect("send burst");
        stream.flush().expect("flush burst");
        sent_total += opts.pipeline as u64;
        for due in &intended {
            match read_response(&mut stream, &mut scratch) {
                Response::Value(_) | Response::Entries(_) | Response::Pong => {}
                Response::Error(e) => match e.code {
                    ErrorCode::Overloaded => res.overloaded += 1,
                    ErrorCode::DeadlineExceeded => res.deadline_exceeded += 1,
                    ErrorCode::Malformed => panic!("server called us malformed: {e:?}"),
                },
                other => panic!("unexpected response {other:?}"),
            }
            res.ops += 1;
            let lat = Instant::now().saturating_duration_since(*due);
            res.latencies_us.push(lat.as_micros() as u64);
        }
    }
    res
}

/// Runs the measured load against `addr` and assembles the record.
fn run_load(opts: &Options, addr: &str) -> NetRunRecord {
    // Prefill half the keyspace through one pipelined connection so
    // reads hit real entries.
    {
        let mut stream = TcpStream::connect(addr).expect("connect for prefill");
        stream.set_nodelay(true).expect("nodelay");
        let mut scratch = Vec::new();
        let prefill = (opts.keys / 2).max(0);
        let mut k = 0i64;
        while k < prefill {
            let mut burst = Vec::new();
            let end = (k + 256).min(prefill);
            for key in k..end {
                Request::Put { key, value: key }.encode(&mut burst);
            }
            stream.write_all(&burst).expect("send prefill");
            for _ in k..end {
                let _ = read_response(&mut stream, &mut scratch);
            }
            k = end;
        }
    }

    let started = Instant::now();
    let results: Vec<ConnResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.connections)
            .map(|c| s.spawn(move || drive_connection(opts, addr, c as u64)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    // One closing STATS frame: the server-side counters the record
    // carries (trace_dropped, sheds, per-shard health).
    let stats = {
        let mut stream = TcpStream::connect(addr).expect("connect for stats");
        let mut scratch = Vec::new();
        write_request(&mut stream, &Request::Stats).expect("send stats");
        match read_response(&mut stream, &mut scratch) {
            Response::Stats(st) => st,
            other => panic!("STATS answered {other:?}"),
        }
    };

    let mut all_lat: Vec<u64> = Vec::new();
    let mut ops = 0u64;
    let mut overloaded = 0u64;
    let mut deadline_exceeded = 0u64;
    for mut r in results {
        ops += r.ops;
        overloaded += r.overloaded;
        deadline_exceeded += r.deadline_exceeded;
        all_lat.append(&mut r.latencies_us);
    }
    let (p50_us, p99_us, p999_us, max_us) = percentiles(&mut all_lat);
    NetRunRecord {
        addr: addr.to_string(),
        connections: opts.connections,
        dist: opts.dist.name().to_string(),
        mix: opts.mix.name().to_string(),
        key_range: opts.keys as u64,
        pipeline: opts.pipeline,
        target_rate: opts.rate,
        ops,
        overloaded,
        deadline_exceeded,
        elapsed,
        p50_us,
        p99_us,
        p999_us,
        max_us,
        trace_dropped: stats.trace_dropped,
        server_sheds: stats.sheds,
        health: stats.health,
    }
}

fn bench_internal<S: Smr>(schemes: &[S], opts: &Options) -> NetRunRecord {
    let cfg = KvConfig {
        retired_soft: opts.soft,
        retired_hard: opts.hard,
        max_threads: opts.workers + 8,
        ring_capacity: opts.ring_capacity,
        ..KvConfig::default()
    };
    let store = KvStore::new(schemes, cfg);
    let server = NetServer::bind(
        &store,
        NetConfig {
            workers: opts.workers,
            ring_capacity: opts.ring_capacity,
            ..NetConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind internal server");
    server.flight().install_panic_hook(opts.flight_dump.clone());
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let record = std::thread::scope(|s| {
        let run = s.spawn(|| server.run().expect("serve"));
        let record = run_load(opts, &addr);
        handle.shutdown();
        let stats = run.join().unwrap();
        println!("server: {stats}");
        record
    });
    match server.write_flight(&opts.flight_dump) {
        Ok(()) => println!(
            "wrote flight dump to {} (replay with `era-view {0}`)",
            opts.flight_dump.display()
        ),
        Err(e) => eprintln!(
            "failed to write flight dump {}: {e}",
            opts.flight_dump.display()
        ),
    }
    record
}

fn main() {
    let opts = parse_options();
    println!(
        "== E13: era-net wire level — {} connection(s) × pipeline {}, mix ycsb-{}, {} keys, {} ==\n",
        opts.connections,
        opts.pipeline,
        opts.mix_name,
        opts.keys,
        if opts.rate > 0 {
            format!("open loop @ {} ops/s", opts.rate)
        } else {
            "closed loop".to_string()
        },
    );
    let record = match &opts.addr {
        Some(addr) => {
            println!("driving external server at {addr}");
            run_load(&opts, addr)
        }
        None => {
            let capacity = opts.workers + 8;
            match opts.scheme.as_str() {
                "ebr" => {
                    let schemes: Vec<Ebr> = (0..opts.shards).map(|_| Ebr::new(capacity)).collect();
                    bench_internal(&schemes, &opts)
                }
                "qsbr" => {
                    let schemes: Vec<Qsbr> =
                        (0..opts.shards).map(|_| Qsbr::new(capacity)).collect();
                    bench_internal(&schemes, &opts)
                }
                "hp" => {
                    let schemes: Vec<Hp> = (0..opts.shards).map(|_| Hp::new(capacity, 3)).collect();
                    bench_internal(&schemes, &opts)
                }
                other => {
                    eprintln!("unknown --scheme {other} (use ebr|qsbr|hp)");
                    std::process::exit(2);
                }
            }
        }
    };
    let mut table = Table::new(
        [
            "Mops/s",
            "p50 µs",
            "p99 µs",
            "p99.9 µs",
            "max µs",
            "shed",
            "deadline",
            "dropped",
        ]
        .into_iter()
        .map(String::from),
    );
    table.row(vec![
        format!("{:.3}", record.mops()),
        record.p50_us.to_string(),
        record.p99_us.to_string(),
        record.p999_us.to_string(),
        record.max_us.to_string(),
        record.overloaded.to_string(),
        record.deadline_exceeded.to_string(),
        record.trace_dropped.to_string(),
    ]);
    println!("{table}");
    if let Some(path) = &opts.report {
        match write_jsonl(path, &[record]) {
            Ok(()) => println!("wrote 1 run record to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write report {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
