//! # era-bench — experiment harness for the ERA theorem reproduction
//!
//! Shared machinery for the experiment binaries (`figure1`, `figure2`,
//! `era_matrix`, `robustness`, `throughput`) and the Criterion benches.
//! See `EXPERIMENTS.md` at the workspace root for the experiment index
//! (which paper artifact each binary regenerates).
//!
//! * [`workload`] — operation-mix generators (read-heavy, update-heavy)
//!   with seeded RNGs for reproducibility;
//! * [`runner`] — throughput runners for every (structure × scheme)
//!   pair, plus the stalled-thread robustness harness of Definition 5.1
//!   measurements;
//! * [`report`] — JSON-lines run reports (throughput, footprint curve,
//!   reclamation-latency histogram) built on [`era_obs`];
//! * [`table`] — plain-text table rendering for the binaries.

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod table;
pub mod workload;

pub use report::{write_jsonl, RunRecord};
pub use runner::{
    run_harris, run_harris_traced, run_michael, run_michael_traced, run_skiplist, run_vbr,
    RunStats, StallReport,
};
pub use workload::{Mix, WorkloadSpec};
