//! Structured JSON-lines run reports.
//!
//! Each [`RunRecord`] captures one benchmark run — identity (structure,
//! scheme, mix, thread count), throughput, the footprint curve sampled
//! by the runner, the retire→reclaim latency histogram, and per-hook
//! call counts — and renders as one line of JSON via the hand-rolled
//! writer in [`era_obs::report`] (the workspace builds offline, with no
//! serialization dependency). A `*.jsonl` file of such lines is the
//! machine-readable counterpart of the plain-text tables.
//!
//! # Record format
//!
//! One JSON object per line, keys always present, in this order:
//!
//! | key | type | meaning |
//! |---|---|---|
//! | `label` | string | Free-form run tag (`""` when untagged). The checked-in `BENCH_smr_baseline.json` uses `"before"`/`"after"` to pair the two sides of a perf comparison. |
//! | `structure` | string | Data structure driven (`michael`, `harris`, `skiplist`, `vbr-list`). |
//! | `scheme` | string | Reclamation scheme name as reported by [`Smr::name`](era_smr::common::Smr::name). |
//! | `mix` | string | Operation mix, e.g. `"90r/5i/5d"`. |
//! | `threads` | int | Worker threads. |
//! | `ops` | int | Total completed operations (all threads). |
//! | `elapsed_s` | float | Wall-clock seconds for the measured phase. |
//! | `mops` | float | Throughput in million ops per second. |
//! | `peak_retired` | int | Highest retired population the *sampler* observed. |
//! | `retired_peak` | int | Scheme-reported retired high-water mark (the §5.1 robustness figure; ≥ `peak_retired`). |
//! | `final_retired` | int | Retired-but-unreclaimed population at run end. |
//! | `total_retired` | int | Total retire calls. |
//! | `total_reclaimed` | int | Total nodes reclaimed. |
//! | `reclaim_latency` | object | Log₂ histogram of retire→reclaim latency in logical ticks (empty for untraced runs). |
//! | `hook_counts` | object | Per-hook event counts (empty `{}` for untraced runs). |
//! | `footprint_curve` | array | `[logical_ts, retired_now]` pairs from the sampler (empty for untraced runs). |
//! | `trace_dropped` | int | Trace events lost to ring overwrite (0 = complete or untraced). |
//!
//! Traced records come from [`RunRecord::collect`] (a [`Recorder`] was
//! attached — richer but with per-op tracing overhead); untraced records
//! come from [`RunRecord::from_stats`] (throughput + scheme counters
//! only — what `throughput --json-out` writes, and what perf
//! comparisons should be based on). Workloads are seeded (the shim-rand
//! `StdRng`), so the op streams are identical across runs and machines;
//! only the timing varies.

use std::io::Write;
use std::path::Path;

use era_obs::report::{histogram_json, hook_counts_json, JsonObject};
use era_obs::{HistogramSnapshot, Hook, Recorder};

use crate::runner::RunStats;
use crate::workload::WorkloadSpec;

/// One benchmark run, ready to serialize.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Free-form run tag (e.g. "before"/"after"); empty when untagged.
    pub label: String,
    /// Data structure driven ("michael", "harris", …).
    pub structure: String,
    /// Reclamation scheme name.
    pub scheme: String,
    /// Operation mix, rendered (e.g. "90r/5i/5d").
    pub mix: String,
    /// Worker threads.
    pub threads: usize,
    /// Aggregate run statistics.
    pub stats: RunStats,
    /// Footprint curve: `(logical_ts, retired_now)` per sampler tick.
    pub curve: Vec<(u64, u64)>,
    /// Retire→reclaim latency in logical-clock ticks.
    pub latency: HistogramSnapshot,
    /// Per-hook call counts, rendered as JSON (only hooks that fired).
    pub hook_counts: String,
    /// Trace events lost to ring overwrite (0 = complete trace).
    pub trace_dropped: u64,
}

impl RunRecord {
    /// Assembles a record from a traced run: drains `recorder` (taking
    /// the footprint curve from its [`Hook::Sample`] events) and
    /// snapshots its metrics. Call once per run, after the runner
    /// returns.
    pub fn collect(
        structure: &str,
        scheme: &str,
        spec: &WorkloadSpec,
        stats: RunStats,
        recorder: &Recorder,
    ) -> RunRecord {
        let log = recorder.drain();
        let curve = log.with_hook(Hook::Sample).map(|e| (e.ts, e.a)).collect();
        RunRecord {
            label: String::new(),
            structure: structure.to_string(),
            scheme: scheme.to_string(),
            mix: spec.mix.to_string(),
            threads: spec.threads,
            stats,
            curve,
            latency: recorder.metrics().reclaim_latency.snapshot(),
            hook_counts: hook_counts_json(recorder.metrics()),
            trace_dropped: log.dropped,
        }
    }

    /// Assembles a record from an *untraced* run: throughput and the
    /// scheme's own counters only — no footprint curve, latency
    /// histogram, or hook counts. This is the record shape perf
    /// comparisons use (no tracing overhead perturbing the timings).
    pub fn from_stats(structure: &str, scheme: &str, spec: &WorkloadSpec, stats: RunStats) -> Self {
        RunRecord {
            label: String::new(),
            structure: structure.to_string(),
            scheme: scheme.to_string(),
            mix: spec.mix.to_string(),
            threads: spec.threads,
            stats,
            curve: Vec::new(),
            latency: HistogramSnapshot::empty(),
            hook_counts: "{}".to_string(),
            trace_dropped: 0,
        }
    }

    /// Sets the free-form run tag (builder style).
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Renders the record as one line of JSON.
    pub fn to_json_line(&self) -> String {
        JsonObject::new()
            .str("label", &self.label)
            .str("structure", &self.structure)
            .str("scheme", &self.scheme)
            .str("mix", &self.mix)
            .u64("threads", self.threads as u64)
            .u64("ops", self.stats.ops as u64)
            .f64("elapsed_s", self.stats.elapsed.as_secs_f64())
            .f64("mops", self.stats.mops())
            .u64("peak_retired", self.stats.peak_retired as u64)
            .u64("retired_peak", self.stats.retired_peak as u64)
            .u64("final_retired", self.stats.final_retired as u64)
            .u64("total_retired", self.stats.total_retired)
            .u64("total_reclaimed", self.stats.total_reclaimed)
            .raw("reclaim_latency", &histogram_json(&self.latency))
            .raw("hook_counts", &self.hook_counts)
            .pairs("footprint_curve", &self.curve)
            .u64("trace_dropped", self.trace_dropped)
            .finish()
    }
}

/// Writes `records` as a JSON-lines file (one record per line).
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_jsonl(path: &Path, records: &[RunRecord]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    for r in records {
        writeln!(file, "{}", r.to_json_line())?;
    }
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_michael_traced;
    use era_smr::ebr::Ebr;

    #[test]
    fn traced_run_yields_a_complete_record() {
        let spec = WorkloadSpec::small();
        let rec = Recorder::new(spec.threads + 2);
        let smr = Ebr::new(spec.threads + 2);
        let stats = run_michael_traced(&smr, &spec, &rec);
        let record = RunRecord::collect("michael", "EBR", &spec, stats, &rec);
        assert!(!record.curve.is_empty(), "sampler must emit the curve");
        assert!(
            record.curve.windows(2).all(|w| w[0].0 < w[1].0),
            "curve is in logical-time order"
        );
        // Every timed reclamation corresponds to a real one.
        assert!(record.latency.total() <= stats.total_reclaimed);
        let line = record.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'), "one record = one line");
        for key in [
            "\"structure\":\"michael\"",
            "\"scheme\":\"EBR\"",
            "\"mops\":",
            "\"retired_peak\":",
            "\"reclaim_latency\":{",
            "\"hook_counts\":{",
            "\"footprint_curve\":[[",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn untraced_record_is_stats_only() {
        let spec = WorkloadSpec::small();
        let smr = Ebr::new(spec.threads + 2);
        let stats = crate::runner::run_michael(&smr, &spec);
        let record = RunRecord::from_stats("michael", "EBR", &spec, stats).with_label("before");
        assert!(record.curve.is_empty());
        assert_eq!(record.latency.total(), 0);
        let line = record.to_json_line();
        assert!(line.contains("\"label\":\"before\""));
        assert!(line.contains("\"hook_counts\":{}"));
        assert!(line.contains("\"footprint_curve\":[]"));
        assert!(line.contains("\"trace_dropped\":0"));
    }

    #[test]
    fn jsonl_file_roundtrip() {
        let spec = WorkloadSpec::small();
        let rec = Recorder::new(spec.threads + 2);
        let smr = Ebr::new(spec.threads + 2);
        let stats = run_michael_traced(&smr, &spec, &rec);
        let record = RunRecord::collect("michael", "EBR", &spec, stats, &rec);
        let dir = std::env::temp_dir().join("era-bench-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.jsonl");
        write_jsonl(&path, &[record.clone(), record]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
