//! Plain-text table rendering for the experiment binaries.

/// A simple left-aligned column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, row: &[String]| {
            for (i, c) in row.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
        )?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["scheme", "mops"]);
        t.row(["EBR", "12.5"]);
        t.row(["HP", "9.001"]);
        let s = t.to_string();
        assert!(s.contains("scheme"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Columns align: 'mops' starts at the same offset in all lines.
        let off = s.lines().next().unwrap().find("mops").unwrap();
        for line in s.lines().skip(2) {
            assert!(line.len() >= off);
        }
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.to_string().lines().count(), 3);
    }
}
