//! Throughput runners and the stalled-thread robustness harness.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use era_ds::{HarrisList, MichaelList, SkipList, VbrList};
use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};
use era_smr::common::{EpochProtected, Smr, SupportsUnlinkedTraversal};

use crate::workload::{GenOp, WorkloadSpec};

/// Trace thread slot used by the runner's footprint sampler.
const SAMPLER_THREAD: u16 = u16::MAX - 1;

/// Tracer for thread 0's footprint sampler: one [`Hook::Sample`] per
/// sampling interval carrying `(retired_now, ops_done)`.
fn sampler(recorder: Option<&Recorder>, scheme: &str) -> ThreadTracer {
    match recorder {
        Some(rec) => rec.tracer(SAMPLER_THREAD, SchemeId::from_name(scheme)),
        None => ThreadTracer::disabled(),
    }
}

/// Result of one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Total operations executed.
    pub ops: usize,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Peak retired population observed by the sampler.
    pub peak_retired: usize,
    /// The scheme's own retired-population high-water mark (exact,
    /// updated on every retire — the sampler's `peak_retired` can only
    /// undershoot it).
    pub retired_peak: usize,
    /// Retired population after the final flush.
    pub final_retired: usize,
    /// Total nodes retired.
    pub total_retired: u64,
    /// Total nodes reclaimed.
    pub total_reclaimed: u64,
}

impl RunStats {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Drives `spec` against a [`MichaelList`] (works with every
/// pointer-based scheme, HP included).
pub fn run_michael<S: Smr + Sync>(smr: &S, spec: &WorkloadSpec) -> RunStats {
    run_michael_inner(smr, spec, None)
}

/// [`run_michael`] with an attached [`era_obs::Recorder`]: the scheme
/// emits its hook events into the recorder and thread 0 samples the
/// retired population as [`Hook::Sample`] events (the footprint curve).
pub fn run_michael_traced<S: Smr + Sync>(
    smr: &S,
    spec: &WorkloadSpec,
    recorder: &Recorder,
) -> RunStats {
    run_michael_inner(smr, spec, Some(recorder))
}

fn run_michael_inner<S: Smr + Sync>(
    smr: &S,
    spec: &WorkloadSpec,
    recorder: Option<&Recorder>,
) -> RunStats {
    if let Some(rec) = recorder {
        smr.attach_recorder(rec);
    }
    let list = MichaelList::new(smr);
    {
        let mut ctx = smr.register().expect("capacity for the prefill thread");
        for k in spec.prefill_keys() {
            list.insert(&mut ctx, k);
        }
    }
    let peak = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..spec.threads {
            let (list, peak) = (&list, &peak);
            s.spawn(move || {
                let mut ctx = smr.register().expect("thread capacity");
                let mut tracer = if t == 0 {
                    sampler(recorder, smr.name())
                } else {
                    ThreadTracer::disabled()
                };
                for (i, op) in spec.ops_for_thread(t).enumerate() {
                    match op {
                        GenOp::Contains(k) => {
                            let _ = list.contains(&mut ctx, k);
                        }
                        GenOp::Insert(k) => {
                            let _ = list.insert(&mut ctx, k);
                        }
                        GenOp::Delete(k) => {
                            let _ = list.delete(&mut ctx, k);
                        }
                    }
                    if i % 1024 == 0 {
                        let retired = smr.stats().retired_now;
                        // SAFETY(ordering): Relaxed — footprint
                        // high-water telemetry, read after joins.
                        peak.fetch_max(retired, Ordering::Relaxed);
                        tracer.emit(Hook::Sample, retired as u64, i as u64);
                    }
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let st = smr.stats();
    RunStats {
        ops: spec.ops_per_thread * spec.threads,
        elapsed,
        peak_retired: peak.load(Ordering::Relaxed).max(st.retired_now),
        retired_peak: st.retired_peak,
        final_retired: st.retired_now,
        total_retired: st.total_retired,
        total_reclaimed: st.total_reclaimed,
    }
}

/// Drives `spec` against a [`HarrisList`] (schemes supporting
/// marked-chain traversal only: EBR, NBR, Leak).
pub fn run_harris<S: Smr + SupportsUnlinkedTraversal + Sync>(
    smr: &S,
    spec: &WorkloadSpec,
) -> RunStats {
    run_harris_inner(smr, spec, None)
}

/// [`run_harris`] with an attached [`era_obs::Recorder`] (see
/// [`run_michael_traced`]).
pub fn run_harris_traced<S: Smr + SupportsUnlinkedTraversal + Sync>(
    smr: &S,
    spec: &WorkloadSpec,
    recorder: &Recorder,
) -> RunStats {
    run_harris_inner(smr, spec, Some(recorder))
}

fn run_harris_inner<S: Smr + SupportsUnlinkedTraversal + Sync>(
    smr: &S,
    spec: &WorkloadSpec,
    recorder: Option<&Recorder>,
) -> RunStats {
    if let Some(rec) = recorder {
        smr.attach_recorder(rec);
    }
    let list = HarrisList::new(smr);
    {
        let mut ctx = smr.register().expect("capacity for the prefill thread");
        for k in spec.prefill_keys() {
            list.insert(&mut ctx, k);
        }
    }
    let peak = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..spec.threads {
            let (list, peak) = (&list, &peak);
            s.spawn(move || {
                let mut ctx = smr.register().expect("thread capacity");
                let mut tracer = if t == 0 {
                    sampler(recorder, smr.name())
                } else {
                    ThreadTracer::disabled()
                };
                for (i, op) in spec.ops_for_thread(t).enumerate() {
                    match op {
                        GenOp::Contains(k) => {
                            let _ = list.contains(&mut ctx, k);
                        }
                        GenOp::Insert(k) => {
                            let _ = list.insert(&mut ctx, k);
                        }
                        GenOp::Delete(k) => {
                            let _ = list.delete(&mut ctx, k);
                        }
                    }
                    if i % 1024 == 0 {
                        let retired = smr.stats().retired_now;
                        // SAFETY(ordering): Relaxed — footprint
                        // high-water telemetry, read after joins.
                        peak.fetch_max(retired, Ordering::Relaxed);
                        tracer.emit(Hook::Sample, retired as u64, i as u64);
                    }
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let st = smr.stats();
    RunStats {
        ops: spec.ops_per_thread * spec.threads,
        elapsed,
        peak_retired: peak.load(Ordering::Relaxed).max(st.retired_now),
        retired_peak: st.retired_peak,
        final_retired: st.retired_now,
        total_retired: st.total_retired,
        total_reclaimed: st.total_reclaimed,
    }
}

/// Drives `spec` against a [`SkipList`] (epoch-protected schemes only:
/// EBR and Leak).
pub fn run_skiplist<S: Smr + EpochProtected + Sync>(smr: &S, spec: &WorkloadSpec) -> RunStats {
    let list = SkipList::new(smr);
    {
        let mut ctx = smr.register().expect("capacity for the prefill thread");
        for k in spec.prefill_keys() {
            list.insert(&mut ctx, k);
        }
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..spec.threads {
            let list = &list;
            s.spawn(move || {
                let mut ctx = smr.register().expect("thread capacity");
                for op in spec.ops_for_thread(t) {
                    match op {
                        GenOp::Contains(k) => {
                            let _ = list.contains(&mut ctx, k);
                        }
                        GenOp::Insert(k) => {
                            let _ = list.insert(&mut ctx, k);
                        }
                        GenOp::Delete(k) => {
                            let _ = list.delete(&mut ctx, k);
                        }
                    }
                }
                for _ in 0..4 {
                    smr.flush(&mut ctx);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let st = smr.stats();
    RunStats {
        ops: spec.ops_per_thread * spec.threads,
        elapsed,
        peak_retired: st.retired_now,
        retired_peak: st.retired_peak,
        final_retired: st.retired_now,
        total_retired: st.total_retired,
        total_reclaimed: st.total_reclaimed,
    }
}

/// Drives `spec` against a [`VbrList`] (the arena must be large enough
/// for `prefill + threads` concurrent nodes; retired population is
/// identically zero under VBR).
pub fn run_vbr(spec: &WorkloadSpec) -> RunStats {
    let list = VbrList::new(spec.key_range as usize + spec.threads * 2 + 16);
    for k in spec.prefill_keys() {
        list.insert(k);
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..spec.threads {
            let list = &list;
            s.spawn(move || {
                for op in spec.ops_for_thread(t) {
                    match op {
                        GenOp::Contains(k) => {
                            let _ = list.contains(k);
                        }
                        GenOp::Insert(k) => {
                            let _ = list.try_insert(k);
                        }
                        GenOp::Delete(k) => {
                            let _ = list.delete(k);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let st = list.arena().stats();
    RunStats {
        ops: spec.ops_per_thread * spec.threads,
        elapsed,
        peak_retired: st.retired_now,
        retired_peak: st.retired_peak,
        final_retired: st.retired_now,
        total_retired: st.total_retired,
        total_reclaimed: st.total_reclaimed,
    }
}

/// Outcome of one stalled-thread churn experiment (the Definition 5.1
/// measurement behind Figure 1's engine).
#[derive(Debug, Clone)]
pub struct StallReport {
    /// Scheme name.
    pub scheme: &'static str,
    /// Structure size at the moment of the stall.
    pub structure_size: usize,
    /// Churn operations executed while the thread was stalled.
    pub churn_ops: usize,
    /// Samples of the retired population, one per ~1k churn ops.
    pub retired_series: Vec<usize>,
    /// Peak retired population during the stall.
    pub peak_retired: usize,
    /// Retired population after un-stalling and flushing.
    pub final_retired: usize,
}

/// Runs the stalled-reader churn experiment on a [`MichaelList`]:
///
/// 1. prefill `structure_size` keys;
/// 2. a reader thread begins an operation, performs one protected load
///    (pinning whatever the scheme pins: the epoch, an era, a hazard)
///    and stalls;
/// 3. a worker churns `churn_ops` insert/delete pairs, sampling the
///    retired population — with `overlap = false` over keys disjoint
///    from the structure, with `overlap = true` over the prefilled keys
///    themselves (retiring the pre-stall cohort, which HE/IBR pin:
///    their footprint then scales with the structure size — the weak
///    robustness of Definition 5.2 — while EBR scales with the churn
///    and HP stays constant);
/// 4. the reader un-stalls; a final flush shows what was recoverable.
pub fn stall_churn_michael<S: Smr + Sync>(
    smr: &S,
    scheme: &'static str,
    structure_size: usize,
    churn_ops: usize,
    overlap: bool,
) -> StallReport {
    let list = MichaelList::new(smr);
    {
        let mut ctx = smr.register().expect("prefill registration");
        for k in 0..structure_size as i64 {
            list.insert(&mut ctx, k);
        }
    }
    let stalled = AtomicBool::new(true);
    let pinned = AtomicBool::new(false);
    let reader_done = AtomicBool::new(false);
    let dummy = AtomicUsize::new(0);
    let mut series = Vec::new();
    std::thread::scope(|s| {
        let (stalled, pinned, reader_done, dummy) = (&stalled, &pinned, &reader_done, &dummy);
        s.spawn(move || {
            let mut ctx = smr.register().expect("reader registration");
            smr.begin_op(&mut ctx);
            // One protected load inside the operation pins the scheme's
            // protection unit: EBR's announced epoch, HE/IBR's published
            // era, an HP hazard slot. The target word is empty — the pin
            // itself is what matters.
            let _ = smr.load(&mut ctx, 0, dummy);
            pinned.store(true, Ordering::SeqCst);
            while stalled.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            smr.end_op(&mut ctx);
            reader_done.store(true, Ordering::SeqCst);
        });
        while !pinned.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let mut ctx = smr.register().expect("worker registration");
        let base = structure_size as i64 + 10;
        for i in 0..churn_ops {
            let k = if overlap {
                (i % structure_size.max(1)) as i64
            } else {
                base + (i % 64) as i64
            };
            if overlap {
                let _ = list.delete(&mut ctx, k);
                let _ = list.insert(&mut ctx, k);
            } else {
                let _ = list.insert(&mut ctx, k);
                let _ = list.delete(&mut ctx, k);
            }
            if i % 1_000 == 0 {
                series.push(smr.stats().retired_now);
            }
        }
        series.push(smr.stats().retired_now);
        stalled.store(false, Ordering::SeqCst);
        // Wait until the reader's operation has actually ended, then
        // drain what is now reclaimable.
        while !reader_done.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        for _ in 0..8 {
            smr.flush(&mut ctx);
        }
    });
    let peak = series.iter().copied().max().unwrap_or(0);
    StallReport {
        scheme,
        structure_size,
        churn_ops,
        retired_series: series,
        peak_retired: peak,
        final_retired: smr.stats().retired_now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Mix, WorkloadSpec};
    use era_smr::ebr::Ebr;
    use era_smr::hp::Hp;
    use era_smr::leak::Leak;
    use era_smr::nbr::Nbr;

    #[test]
    fn michael_runner_produces_stats() {
        let smr = Hp::new(8, 3);
        let stats = run_michael(&smr, &WorkloadSpec::small());
        assert_eq!(stats.ops, 4_000);
        assert!(stats.mops() > 0.0);
        assert!(stats.total_reclaimed <= stats.total_retired);
    }

    #[test]
    fn harris_runner_produces_stats() {
        let smr = Ebr::new(8);
        let stats = run_harris(&smr, &WorkloadSpec::small());
        assert_eq!(stats.ops, 4_000);
        assert!(stats.total_retired > 0, "mixed workload must retire nodes");
    }

    #[test]
    fn harris_runner_with_nbr() {
        let smr = Nbr::new(8, 2);
        let stats = run_harris(&smr, &WorkloadSpec::small());
        assert!(
            stats.final_retired <= 64 * 8,
            "NBR keeps the footprint bounded"
        );
    }

    #[test]
    fn vbr_runner_produces_stats() {
        let stats = run_vbr(&WorkloadSpec::small());
        assert_eq!(stats.peak_retired, 0, "VBR: retire is reclaim");
        assert_eq!(stats.total_retired, stats.total_reclaimed);
    }

    #[test]
    fn update_heavy_workload_reclaims_under_leak_never() {
        let smr = Leak::new(8);
        let spec = WorkloadSpec {
            mix: Mix::UPDATE_HEAVY,
            ..WorkloadSpec::small()
        };
        let stats = run_michael(&smr, &spec);
        assert_eq!(stats.total_reclaimed, 0);
        assert_eq!(stats.final_retired as u64, stats.total_retired);
    }

    #[test]
    fn stall_churn_shows_ebr_unbounded_hp_bounded() {
        let ebr = Ebr::with_threshold(4, 16);
        let r1 = stall_churn_michael(&ebr, "EBR", 64, 5_000, false);
        assert!(
            r1.peak_retired >= 4_000,
            "EBR under stall must accumulate: {}",
            r1.peak_retired
        );
        assert!(
            r1.final_retired < 200,
            "unstalling drains: {}",
            r1.final_retired
        );

        let hp = Hp::with_threshold(4, 3, 16);
        let r2 = stall_churn_michael(&hp, "HP", 64, 5_000, false);
        assert!(
            r2.peak_retired <= hp.robustness_bound(),
            "HP stays bounded: {} vs {}",
            r2.peak_retired,
            hp.robustness_bound()
        );
    }

    #[test]
    fn overlapping_churn_pins_the_cohort_under_he() {
        use era_smr::he::He;
        // HE pins the pre-stall cohort (≈ structure size) but not the
        // churn — between HP's constant and EBR's unbounded footprint.
        let he = He::with_params(4, 3, 16, 1);
        let r = stall_churn_michael(&he, "HE", 256, 5_000, true);
        assert!(
            r.peak_retired >= 200,
            "the pre-stall cohort is pinned: {}",
            r.peak_retired
        );
        assert!(
            r.peak_retired <= 256 + 64,
            "but only the cohort: {}",
            r.peak_retired
        );
        assert!(
            r.final_retired < 64,
            "unstalling drains: {}",
            r.final_retired
        );
    }
}
