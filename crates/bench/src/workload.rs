//! Workload specifications and operation generators.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub use era_kv::workload::{KeyDist, KeySampler};

/// An operation mix in percent (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// `contains` share.
    pub reads: u32,
    /// `insert` share.
    pub inserts: u32,
    /// `delete` share.
    pub deletes: u32,
}

impl Mix {
    /// 90% reads, 5% inserts, 5% deletes — the classic read-heavy mix.
    pub const READ_HEAVY: Mix = Mix {
        reads: 90,
        inserts: 5,
        deletes: 5,
    };
    /// 0% reads, 50% inserts, 50% deletes — maximum churn.
    pub const UPDATE_HEAVY: Mix = Mix {
        reads: 0,
        inserts: 50,
        deletes: 50,
    };
    /// 50/25/25 — balanced.
    pub const MIXED: Mix = Mix {
        reads: 50,
        inserts: 25,
        deletes: 25,
    };

    /// Validates the mix.
    pub fn is_valid(&self) -> bool {
        self.reads + self.inserts + self.deletes == 100
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}r/{}i/{}d", self.reads, self.inserts, self.deletes)
    }
}

/// A generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenOp {
    /// `contains(key)`.
    Contains(i64),
    /// `insert(key)`.
    Insert(i64),
    /// `delete(key)`.
    Delete(i64),
}

/// A complete workload description.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Operation mix.
    pub mix: Mix,
    /// Key popularity distribution (uniform or zipfian).
    pub dist: KeyDist,
    /// Keys are drawn from `0..key_range` according to `dist`.
    pub key_range: i64,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Number of worker threads.
    pub threads: usize,
    /// Keys inserted before the measured phase (typically
    /// `key_range / 2`).
    pub prefill: usize,
    /// RNG seed (per-thread streams derive from it).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small default suitable for tests.
    pub fn small() -> Self {
        WorkloadSpec {
            mix: Mix::MIXED,
            dist: KeyDist::Uniform,
            key_range: 256,
            ops_per_thread: 2_000,
            threads: 2,
            prefill: 128,
            seed: 0xE5A_1234,
        }
    }

    /// The per-thread operation stream.
    pub fn ops_for_thread(&self, thread: usize) -> OpStream {
        OpStream {
            rng: StdRng::seed_from_u64(self.seed ^ (thread as u64).wrapping_mul(0x9E37_79B9)),
            mix: self.mix,
            sampler: self.dist.sampler(self.key_range.max(1)),
            remaining: self.ops_per_thread,
        }
    }

    /// The prefill keys (deterministic, spread over the range).
    pub fn prefill_keys(&self) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xFEED);
        let mut keys = std::collections::BTreeSet::new();
        while keys.len() < self.prefill.min(self.key_range as usize) {
            keys.insert(rng.random_range(0..self.key_range.max(1)));
        }
        keys.into_iter().collect()
    }
}

/// Iterator of operations for one thread.
#[derive(Debug)]
pub struct OpStream {
    rng: StdRng,
    mix: Mix,
    sampler: KeySampler,
    remaining: usize,
}

impl Iterator for OpStream {
    type Item = GenOp;

    fn next(&mut self) -> Option<GenOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let key = self.sampler.sample(&mut self.rng);
        let roll = self.rng.random_range(0..100u32);
        Some(if roll < self.mix.reads {
            GenOp::Contains(key)
        } else if roll < self.mix.reads + self.mix.inserts {
            GenOp::Insert(key)
        } else {
            GenOp::Delete(key)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_valid() {
        assert!(Mix::READ_HEAVY.is_valid());
        assert!(Mix::UPDATE_HEAVY.is_valid());
        assert!(Mix::MIXED.is_valid());
        assert!(!Mix {
            reads: 50,
            inserts: 50,
            deletes: 50
        }
        .is_valid());
    }

    #[test]
    fn streams_are_deterministic_and_sized() {
        let spec = WorkloadSpec::small();
        let a: Vec<_> = spec.ops_for_thread(0).collect();
        let b: Vec<_> = spec.ops_for_thread(0).collect();
        let c: Vec<_> = spec.ops_for_thread(1).collect();
        assert_eq!(a.len(), spec.ops_per_thread);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different threads, different streams");
    }

    #[test]
    fn mix_shares_are_respected_roughly() {
        let spec = WorkloadSpec {
            mix: Mix::READ_HEAVY,
            ops_per_thread: 10_000,
            ..WorkloadSpec::small()
        };
        let reads = spec
            .ops_for_thread(0)
            .filter(|op| matches!(op, GenOp::Contains(_)))
            .count();
        assert!((8_500..=9_500).contains(&reads), "reads={reads}");
    }

    #[test]
    fn zipfian_streams_skew_toward_hot_keys() {
        let uniform = WorkloadSpec {
            ops_per_thread: 10_000,
            ..WorkloadSpec::small()
        };
        let zipf = WorkloadSpec {
            dist: KeyDist::Zipfian { theta: 0.99 },
            ..uniform
        };
        let hot = |spec: &WorkloadSpec| {
            spec.ops_for_thread(0)
                .filter(|op| {
                    let (GenOp::Contains(k) | GenOp::Insert(k) | GenOp::Delete(k)) = op;
                    *k < 8
                })
                .count()
        };
        let (u, z) = (hot(&uniform), hot(&zipf));
        assert!(
            z > u * 5,
            "zipfian must concentrate on low keys: uniform={u} zipf={z}"
        );
        let a: Vec<_> = zipf.ops_for_thread(0).collect();
        let b: Vec<_> = zipf.ops_for_thread(0).collect();
        assert_eq!(a, b, "zipfian streams stay deterministic");
    }

    #[test]
    fn prefill_is_unique_and_in_range() {
        let spec = WorkloadSpec::small();
        let keys = spec.prefill_keys();
        assert_eq!(keys.len(), spec.prefill);
        let mut dedup = keys.clone();
        dedup.dedup();
        assert_eq!(keys, dedup);
        assert!(keys.iter().all(|&k| (0..spec.key_range).contains(&k)));
    }
}
