//! Criterion micro-bench: raw per-primitive overhead of each
//! reclamation scheme — `begin_op`/`end_op`, one protected load, and a
//! retire+reclaim cycle. Supports the E5 analysis (where does HP/HE's
//! slowdown come from).

use std::sync::atomic::AtomicUsize;

use criterion::{criterion_group, criterion_main, Criterion};
use era_smr::common::Smr;
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, leak::Leak, nbr::Nbr};

fn bench_scheme<S: Smr>(c: &mut Criterion, smr: S) {
    let name = smr.name();
    let mut ctx = smr.register().expect("one slot");
    let word = AtomicUsize::new(0x1000);

    c.bench_function(&format!("schemes/{name}/begin_end_op"), |b| {
        b.iter(|| {
            smr.begin_op(&mut ctx);
            smr.end_op(&mut ctx);
        })
    });

    c.bench_function(&format!("schemes/{name}/protected_load"), |b| {
        smr.begin_op(&mut ctx);
        b.iter(|| std::hint::black_box(smr.load(&mut ctx, 0, &word)));
        smr.end_op(&mut ctx);
    });

    // SAFETY: every pointer this bench retires is the Box::into_raw of
    // the u64 allocated in the same iteration; retire hands it to
    // free_u64 exactly once.
    unsafe fn free_u64(p: *mut u8) {
        unsafe { drop(Box::from_raw(p as *mut u64)) }
    }
    c.bench_function(&format!("schemes/{name}/retire_reclaim"), |b| {
        b.iter(|| {
            let p = Box::into_raw(Box::new(1u64)) as *mut u8;
            unsafe { smr.retire(&mut ctx, p, std::ptr::null(), free_u64) };
        });
        smr.flush(&mut ctx);
    });
}

fn benches(c: &mut Criterion) {
    bench_scheme(c, Leak::new(4));
    bench_scheme(c, Ebr::new(4));
    bench_scheme(c, Hp::new(4, 3));
    bench_scheme(c, He::new(4, 3));
    bench_scheme(c, Ibr::new(4));
    bench_scheme(c, Nbr::new(4, 2));
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(group);
