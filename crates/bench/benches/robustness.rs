//! Criterion bench behind experiment E4: the *time* cost of staying
//! robust — churn throughput with and without a stalled reader, per
//! scheme. A robust scheme (HP/HE/IBR) pays scan work but keeps going
//! at full speed under the stall; EBR's reclamation stops entirely (its
//! time stays flat while its memory grows — the memory side is measured
//! by the `robustness` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use era_bench::runner::stall_churn_michael;
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr};

const CHURN: usize = 10_000;
const SIZE: usize = 128;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("robustness/stalled_churn");
    g.throughput(Throughput::Elements(CHURN as u64));
    g.bench_with_input(BenchmarkId::new("EBR", CHURN), &(), |b, ()| {
        b.iter(|| stall_churn_michael(&Ebr::with_threshold(4, 16), "EBR", SIZE, CHURN, false))
    });
    g.bench_with_input(BenchmarkId::new("HP", CHURN), &(), |b, ()| {
        b.iter(|| stall_churn_michael(&Hp::with_threshold(4, 3, 16), "HP", SIZE, CHURN, false))
    });
    g.bench_with_input(BenchmarkId::new("HE", CHURN), &(), |b, ()| {
        b.iter(|| stall_churn_michael(&He::with_params(4, 3, 16, 8), "HE", SIZE, CHURN, false))
    });
    g.bench_with_input(BenchmarkId::new("IBR", CHURN), &(), |b, ()| {
        b.iter(|| stall_churn_michael(&Ibr::with_params(4, 16, 8), "IBR", SIZE, CHURN, false))
    });
    g.finish();
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
