//! Criterion bench behind experiment E6 — the paper's §6 "practical
//! importance" claim: Michael's HP-compatible modification of the list
//! is slower than Harris's original, because traversals must unlink
//! marked nodes before advancing (restarting on contention) instead of
//! walking straight through.
//!
//! We compare under update-heavy contention (which produces marked
//! nodes) and on read-heavy traversals of a larger list:
//!
//! * `harris+EBR` — the original algorithm with the strongly applicable
//!   scheme;
//! * `michael+EBR` — the modified algorithm, same scheme (isolates the
//!   algorithmic cost);
//! * `michael+HP` — the modified algorithm with the scheme it was
//!   designed for (adds the per-read protect/validate cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use era_bench::runner::{run_harris, run_michael};
use era_bench::workload::{KeyDist, Mix, WorkloadSpec};
use era_smr::{ebr::Ebr, hp::Hp};

fn benches(c: &mut Criterion) {
    let cases = [
        ("update-heavy", Mix::UPDATE_HEAVY, 256i64),
        ("read-heavy-long-list", Mix::READ_HEAVY, 2_048i64),
    ];
    for (label, mix, key_range) in cases {
        let mut g = c.benchmark_group(format!("michael_vs_harris/{label}"));
        let spec = WorkloadSpec {
            mix,
            dist: KeyDist::Uniform,
            key_range,
            ops_per_thread: 5_000,
            threads: 4,
            prefill: (key_range / 2) as usize,
            seed: 11,
        };
        g.throughput(Throughput::Elements(
            (spec.ops_per_thread * spec.threads) as u64,
        ));
        g.bench_with_input(BenchmarkId::new("harris+EBR", key_range), &spec, |b, s| {
            b.iter(|| run_harris(&Ebr::new(16), s))
        });
        g.bench_with_input(BenchmarkId::new("michael+EBR", key_range), &spec, |b, s| {
            b.iter(|| run_michael(&Ebr::new(16), s))
        });
        g.bench_with_input(BenchmarkId::new("michael+HP", key_range), &spec, |b, s| {
            b.iter(|| run_michael(&Hp::new(16, 3), s))
        });
        g.finish();
    }
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
