//! Criterion bench behind experiment E5: throughput of every
//! (structure × scheme) pair on read-heavy and update-heavy mixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use era_bench::runner::{run_harris, run_michael, run_vbr};
use era_bench::workload::{KeyDist, Mix, WorkloadSpec};
use era_smr::{ebr::Ebr, he::He, hp::Hp, ibr::Ibr, leak::Leak, nbr::Nbr};

fn spec(mix: Mix, threads: usize) -> WorkloadSpec {
    WorkloadSpec {
        mix,
        dist: KeyDist::Uniform,
        key_range: 512,
        ops_per_thread: 10_000,
        threads,
        prefill: 256,
        seed: 7,
    }
}

fn bench_mix(c: &mut Criterion, label: &str, mix: Mix) {
    let mut g = c.benchmark_group(format!("throughput/{label}"));
    for threads in [1usize, 4] {
        let s = spec(mix, threads);
        g.throughput(Throughput::Elements((s.ops_per_thread * s.threads) as u64));
        g.bench_with_input(BenchmarkId::new("michael+EBR", threads), &s, |b, s| {
            b.iter(|| run_michael(&Ebr::new(16), s))
        });
        g.bench_with_input(BenchmarkId::new("michael+HP", threads), &s, |b, s| {
            b.iter(|| run_michael(&Hp::new(16, 3), s))
        });
        g.bench_with_input(BenchmarkId::new("michael+HE", threads), &s, |b, s| {
            b.iter(|| run_michael(&He::new(16, 3), s))
        });
        g.bench_with_input(BenchmarkId::new("michael+IBR", threads), &s, |b, s| {
            b.iter(|| run_michael(&Ibr::new(16), s))
        });
        g.bench_with_input(BenchmarkId::new("michael+Leak", threads), &s, |b, s| {
            b.iter(|| run_michael(&Leak::new(16), s))
        });
        g.bench_with_input(BenchmarkId::new("harris+EBR", threads), &s, |b, s| {
            b.iter(|| run_harris(&Ebr::new(16), s))
        });
        g.bench_with_input(BenchmarkId::new("harris+NBR", threads), &s, |b, s| {
            b.iter(|| run_harris(&Nbr::new(16, 2), s))
        });
        g.bench_with_input(BenchmarkId::new("vbr-list", threads), &s, |b, s| {
            b.iter(|| run_vbr(s))
        });
    }
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_mix(c, "read-heavy", Mix::READ_HEAVY);
    bench_mix(c, "update-heavy", Mix::UPDATE_HEAVY);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
