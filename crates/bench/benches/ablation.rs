//! Ablation benches for the tunables each scheme exposes — the design
//! choices DESIGN.md calls out:
//!
//! * **EBR retire threshold** — how often a thread attempts epoch
//!   advancement + collection. Small = tight footprint, frequent
//!   all-thread scans; large = cheap retires, fat retire lists.
//! * **HP scan threshold** — the classic R-factor trade-off: scans cost
//!   O(hazards + garbage), amortized over the threshold.
//! * **HE/IBR era frequency** — allocations per era tick. Fast clocks
//!   shrink the pinned cohort (better robustness bound) but cost a
//!   shared counter increment per k allocations.
//!
//! The throughput side is measured here; the footprint side of the same
//! knobs is visible in the `robustness` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use era_bench::runner::run_michael;
use era_bench::workload::{KeyDist, Mix, WorkloadSpec};
use era_smr::{ebr::Ebr, he::He, hp::Hp};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        mix: Mix::UPDATE_HEAVY, // retire-heavy: the knobs under test fire
        dist: KeyDist::Uniform,
        key_range: 256,
        ops_per_thread: 8_000,
        threads: 2,
        prefill: 128,
        seed: 13,
    }
}

fn benches(c: &mut Criterion) {
    let s = spec();
    let ops = (s.ops_per_thread * s.threads) as u64;

    let mut g = c.benchmark_group("ablation/ebr_retire_threshold");
    g.throughput(Throughput::Elements(ops));
    for threshold in [1usize, 8, 64, 512] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| b.iter(|| run_michael(&Ebr::with_threshold(8, t), &s)),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("ablation/hp_scan_threshold");
    g.throughput(Throughput::Elements(ops));
    for threshold in [1usize, 8, 64, 512] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| b.iter(|| run_michael(&Hp::with_threshold(8, 3, t), &s)),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("ablation/he_era_frequency");
    g.throughput(Throughput::Elements(ops));
    for freq in [1u64, 8, 64, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(freq), &freq, |b, &f| {
            b.iter(|| run_michael(&He::with_params(8, 3, 64, f), &s))
        });
    }
    g.finish();
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
