//! The runtime ERA navigator: per-shard health classification and
//! graceful degradation.
//!
//! The ERA theorem is a static impossibility — no scheme is at once
//! robust, easy to integrate, and widely applicable. A *running*
//! system, though, can watch which property it is currently losing and
//! pay a different cost instead. The navigator does exactly that, per
//! shard:
//!
//! * **Robust** — footprint inside the soft budget. The shard runs the
//!   scheme's native trade-off; nothing is sacrificed at runtime.
//! * **Degrading** — footprint past the soft budget. Admission control
//!   bounds concurrent writes ([`crate::KvError::Overloaded`]):
//!   robustness is bought by *refusing work*, i.e. by sacrificing wide
//!   applicability (the heavy-traffic workload class is turned away).
//! * **Violating** — footprint past the hard budget: the robustness
//!   bound is gone, almost always because one pin is stalled. The
//!   navigator identifies the blamed thread slot from the shard's
//!   recorder (blame-count *deltas*, so an old, resolved stall cannot
//!   mislead it) and cooperatively neutralizes it
//!   ([`era_smr::Smr::neutralize`], NBR-style force-unpin + restart).
//!   Robustness is restored by sacrificing easy integration: every
//!   client must now follow the restart protocol.
//!
//! Classification applies hysteresis (escalate at the budget, recover
//! at half of it) so the state machine cannot flap on a footprint
//! hovering at a threshold. Every transition is emitted as a
//! [`Hook::Navigate`] event and counted, so traces and reports show
//! *when* the service moved between trade-offs, mirroring how
//! [`era_core::robustness`] classifies measured footprints after the
//! fact.

use std::sync::atomic::Ordering;

use era_obs::Hook;
use era_smr::Smr;

use crate::store::KvStore;

/// Live health class of one shard, the runtime analogue of
/// [`era_core::robustness::RobustnessVerdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ShardHealth {
    /// Footprint within the soft budget; native scheme behaviour.
    Robust = 0,
    /// Soft budget exceeded; admission control is shedding writes.
    Degrading = 1,
    /// Hard budget exceeded; the navigator neutralizes blamed pins.
    Violating = 2,
    /// A context died on this shard ([`crate::KvStore::quarantine`]):
    /// writes are refused outright while survivors adopt the orphaned
    /// garbage; the shard re-opens (`Robust`) once footprint drains
    /// below half the soft budget.
    Quarantined = 3,
}

impl ShardHealth {
    /// Decodes the `repr(u8)` value (saturating: unknown bytes read as
    /// `Violating`, the conservative class).
    pub fn from_u8(raw: u8) -> ShardHealth {
        match raw {
            0 => ShardHealth::Robust,
            1 => ShardHealth::Degrading,
            3 => ShardHealth::Quarantined,
            _ => ShardHealth::Violating,
        }
    }

    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Robust => "robust",
            ShardHealth::Degrading => "degrading",
            ShardHealth::Violating => "violating",
            ShardHealth::Quarantined => "quarantined",
        }
    }

    /// The offline verdict this live class corresponds to.
    pub fn verdict(self) -> era_core::robustness::RobustnessVerdict {
        use era_core::robustness::RobustnessVerdict as V;
        match self {
            ShardHealth::Robust => V::Robust,
            ShardHealth::Degrading => V::WeaklyRobust,
            ShardHealth::Violating | ShardHealth::Quarantined => V::NotRobust,
        }
    }
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Ticks spent `Violating` between repeated neutralization attempts
/// (the first attempt fires on entry). Retrying matters because a
/// neutralized-and-restarted reader that stalls again re-pins the
/// shard; the budget is re-enforced each time it is re-crossed. The
/// interval bounds the sawtooth amplitude — garbage accrued between
/// attempts is `retire_rate × interval × poll_period` on top of the
/// hard budget — so it is kept short; its only job is to give the
/// victim a few polls to act on the restart signal first.
const NEUTRALIZE_RETRY_TICKS: u32 = 8;

/// Pure classification step with hysteresis: escalate when `retired`
/// crosses a budget, de-escalate only once it falls below *half* the
/// budget.
pub(crate) fn classify(cur: ShardHealth, retired: usize, soft: usize, hard: usize) -> ShardHealth {
    match cur {
        ShardHealth::Robust => {
            if retired >= hard {
                ShardHealth::Violating
            } else if retired >= soft {
                ShardHealth::Degrading
            } else {
                ShardHealth::Robust
            }
        }
        ShardHealth::Degrading => {
            if retired >= hard {
                ShardHealth::Violating
            } else if retired < soft / 2 {
                ShardHealth::Robust
            } else {
                ShardHealth::Degrading
            }
        }
        ShardHealth::Violating => {
            if retired >= hard / 2 {
                ShardHealth::Violating
            } else if retired < soft / 2 {
                ShardHealth::Robust
            } else {
                ShardHealth::Degrading
            }
        }
        // Quarantine is sticky until the orphaned backlog has really
        // drained (same recovery threshold as full de-escalation); it
        // never steps down through Degrading — the shard was closed
        // because of a death, not load, so half-open admission would
        // only confuse the signal.
        ShardHealth::Quarantined => {
            if retired < soft / 2 {
                ShardHealth::Robust
            } else {
                ShardHealth::Quarantined
            }
        }
    }
}

impl<'s, S: Smr> KvStore<'s, S> {
    /// One watchdog pass over every shard: sample footprint, classify,
    /// emit transitions, and neutralize the blamed pin on shards whose
    /// hard budget is blown. Callers run this from a dedicated thread
    /// at whatever poll interval suits them (the workload driver uses
    /// a few hundred microseconds); it is cheap — a stats snapshot and
    /// a blame-counter scan per shard — and entirely read-side except
    /// for the reaction itself.
    pub fn navigator_tick(&self) {
        // Budgets are read once per tick (not per shard) so one tick
        // applies a consistent envelope even while a scenario is
        // swapping budgets concurrently.
        let (soft, hard) = self.budgets();
        for (i, sh) in self.shards.iter().enumerate() {
            let st = sh.smr.stats();
            let cur = ShardHealth::from_u8(sh.health.load(Ordering::SeqCst));
            let next = classify(cur, st.retired_now, soft, hard);
            {
                let mut tracer = sh.nav_tracer.lock().unwrap();
                tracer.emit(Hook::Sample, st.retired_now as u64, i as u64);
                if next != cur {
                    sh.health.store(next as u8, Ordering::SeqCst);
                    // SAFETY(ordering): Relaxed — transition/violation
                    // tallies are navigator telemetry, read only by
                    // nav_counters() reporting.
                    sh.transitions.fetch_add(1, Ordering::Relaxed);
                    tracer.emit(Hook::Navigate, i as u64, ((cur as u64) << 8) | next as u64);
                }
            }
            if next == ShardHealth::Violating {
                // SAFETY(ordering): Relaxed — tick counter private to
                // the single navigator thread.
                let ticks = sh.violating_ticks.fetch_add(1, Ordering::Relaxed);
                if ticks % NEUTRALIZE_RETRY_TICKS == 0 {
                    if let Some(slot) = self.blamed_slot(i) {
                        // SAFETY: the navigator contract (crate docs):
                        // every thread operating on this store polls
                        // `needs_restart` at operation boundaries before
                        // trusting pointers — KvStore's own ops do, and
                        // the stall harness's read loop does — so a
                        // force-unpin is always recoverable.
                        if unsafe { sh.smr.neutralize(slot) } {
                            // SAFETY(ordering): Relaxed — telemetry.
                            sh.neutralizations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            } else {
                // SAFETY(ordering): Relaxed — navigator-private reset.
                sh.violating_ticks.store(0, Ordering::Relaxed);
            }
        }
    }

    /// The thread slot to neutralize on shard `i`: the slot whose blame
    /// count grew the most since the last call (falling back to the
    /// all-time maximum when no new blame accrued between ticks).
    fn blamed_slot(&self, i: usize) -> Option<usize> {
        let sh = &self.shards[i];
        let now = sh.recorder.metrics().blame_counts();
        let mut last = sh.last_blame.lock().unwrap();
        if last.len() != now.len() {
            last.resize(now.len(), 0);
        }
        let delta_best = now
            .iter()
            .zip(last.iter())
            .enumerate()
            .map(|(slot, (&n, &p))| (slot, n.saturating_sub(p)))
            .max_by_key(|&(_, d)| d)
            .filter(|&(_, d)| d > 0)
            .map(|(slot, _)| slot);
        last.copy_from_slice(&now);
        delta_best.or_else(|| sh.recorder.metrics().most_blamed().map(|(slot, _)| slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{KvConfig, KvStore};
    use era_smr::ebr::Ebr;

    #[test]
    fn classify_escalates_and_recovers_with_hysteresis() {
        use ShardHealth::*;
        let (soft, hard) = (100, 400);
        assert_eq!(classify(Robust, 0, soft, hard), Robust);
        assert_eq!(classify(Robust, 99, soft, hard), Robust);
        assert_eq!(classify(Robust, 100, soft, hard), Degrading);
        assert_eq!(classify(Robust, 400, soft, hard), Violating);
        // Degrading holds until footprint halves below the soft budget.
        assert_eq!(classify(Degrading, 99, soft, hard), Degrading);
        assert_eq!(classify(Degrading, 50, soft, hard), Degrading);
        assert_eq!(classify(Degrading, 49, soft, hard), Robust);
        assert_eq!(classify(Degrading, 400, soft, hard), Violating);
        // Violating holds until footprint halves below the hard budget.
        assert_eq!(classify(Violating, 399, soft, hard), Violating);
        assert_eq!(classify(Violating, 200, soft, hard), Violating);
        assert_eq!(classify(Violating, 199, soft, hard), Degrading);
        assert_eq!(classify(Violating, 49, soft, hard), Robust);
        // Quarantine is sticky and never steps down through Degrading.
        assert_eq!(classify(Quarantined, 400, soft, hard), Quarantined);
        assert_eq!(classify(Quarantined, 50, soft, hard), Quarantined);
        assert_eq!(classify(Quarantined, 49, soft, hard), Robust);
    }

    #[test]
    fn health_maps_onto_offline_verdicts() {
        use era_core::robustness::RobustnessVerdict as V;
        assert_eq!(ShardHealth::Robust.verdict(), V::Robust);
        assert_eq!(ShardHealth::Degrading.verdict(), V::WeaklyRobust);
        assert_eq!(ShardHealth::Violating.verdict(), V::NotRobust);
        assert_eq!(ShardHealth::Quarantined.verdict(), V::NotRobust);
        assert_eq!(ShardHealth::from_u8(3), ShardHealth::Quarantined);
        assert_eq!(ShardHealth::from_u8(7), ShardHealth::Violating);
        assert_eq!(ShardHealth::Degrading.to_string(), "degrading");
    }

    #[test]
    fn tick_transitions_and_counts() {
        let schemes: Vec<Ebr> = vec![Ebr::with_threshold(4, 1)];
        let cfg = KvConfig {
            retired_soft: 4,
            retired_hard: 16,
            ..KvConfig::default()
        };
        let store = KvStore::new(&schemes, cfg);
        let mut ctx = store.register().unwrap();
        store.navigator_tick();
        assert_eq!(store.health(0), ShardHealth::Robust);

        // Pin the domain so churn accumulates garbage.
        let smr = store.scheme(0);
        let mut pin = smr.register().unwrap();
        era_smr::Smr::begin_op(smr, &mut pin);
        for k in 0..32 {
            store.put(&mut ctx, k, k).unwrap();
            store.remove(&mut ctx, k).unwrap();
        }
        store.navigator_tick();
        assert_eq!(store.health(0), ShardHealth::Violating);
        let (transitions, neutralizations, _) = store.nav_counters();
        assert!(transitions >= 1);
        assert!(
            neutralizations >= 1,
            "violating shard must trigger neutralization"
        );
        assert!(era_smr::Smr::needs_restart(smr, &mut pin));

        // Drain and recover: the victim restarted, flushes reclaim.
        era_smr::Smr::end_op(smr, &mut pin);
        for _ in 0..6 {
            store.flush(&mut ctx);
        }
        store.navigator_tick();
        assert_eq!(store.health(0), ShardHealth::Robust);
    }
}
