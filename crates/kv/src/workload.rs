//! YCSB-style workload driver for [`KvStore`]: operation mixes, key
//! popularity distributions, stall injection, and the navigator loop.
//!
//! The driver is deliberately self-contained (spawn threads, run the
//! mix, collect [`KvRunStats`]) so both `era-bench`'s `kv_bench` binary
//! and the integration tests drive the exact same code path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use era_obs::{Hook, SchemeId};
use era_smr::{Smr, SmrStats};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng, Zipf};

use crate::store::{KvCtx, KvStore};

/// Thread slot the driver's footprint sampler emits under (matches the
/// era-bench sampler convention).
pub const SAMPLER_THREAD: u16 = u16::MAX - 1;

/// How often the navigator and sampler threads poll.
const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// Key popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf-distributed popularity with skew `theta` in `(0, 1)`;
    /// YCSB's default skew is 0.99. Key 0 is the hottest.
    Zipfian {
        /// Skew parameter.
        theta: f64,
    },
}

impl KeyDist {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipfian { .. } => "zipfian",
        }
    }

    /// A sampler over keys `0..key_range`.
    pub fn sampler(&self, key_range: i64) -> KeySampler {
        let n = key_range.max(1) as u64;
        match *self {
            KeyDist::Uniform => KeySampler::Uniform(n),
            KeyDist::Zipfian { theta } => KeySampler::Zipf(Zipf::new(n, theta)),
        }
    }
}

/// Instantiated sampler for a [`KeyDist`] (Zipf precomputes its
/// harmonic normaliser once).
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform over `0..n`.
    Uniform(u64),
    /// Zipf ranks map directly onto keys (key 0 hottest).
    Zipf(Zipf),
}

impl KeySampler {
    /// Draws one key.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> i64 {
        match self {
            KeySampler::Uniform(n) => rng.random_range(0..*n) as i64,
            KeySampler::Zipf(z) => z.sample(rng) as i64,
        }
    }
}

/// An operation mix in percent (must sum to 100). Reads are `get`,
/// writes are `put` (YCSB "update"/"insert"), removes delete the key —
/// the retire-generating half of churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvMix {
    /// Percent `get`.
    pub reads: u32,
    /// Percent `put`.
    pub writes: u32,
    /// Percent `remove`.
    pub removes: u32,
}

impl KvMix {
    /// YCSB workload A: 50% reads / 50% updates.
    pub const YCSB_A: KvMix = KvMix {
        reads: 50,
        writes: 50,
        removes: 0,
    };
    /// YCSB workload B: 95% reads / 5% updates.
    pub const YCSB_B: KvMix = KvMix {
        reads: 95,
        writes: 5,
        removes: 0,
    };
    /// YCSB workload C: read-only.
    pub const YCSB_C: KvMix = KvMix {
        reads: 100,
        writes: 0,
        removes: 0,
    };
    /// Delete-heavy churn: the mix that actually exercises reclamation
    /// (updates swap values in place; only removes retire nodes).
    pub const CHURN: KvMix = KvMix {
        reads: 40,
        writes: 30,
        removes: 30,
    };

    /// Stable name for reports ("custom" for hand-rolled mixes).
    pub fn name(&self) -> &'static str {
        match *self {
            KvMix::YCSB_A => "ycsb-a",
            KvMix::YCSB_B => "ycsb-b",
            KvMix::YCSB_C => "ycsb-c",
            KvMix::CHURN => "churn",
            _ => "custom",
        }
    }

    fn op(&self, roll: u32) -> KvOp {
        if roll < self.reads {
            KvOp::Get
        } else if roll < self.reads + self.writes {
            KvOp::Put
        } else {
            KvOp::Remove
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KvOp {
    Get,
    Put,
    Remove,
}

/// Everything that defines one workload run.
#[derive(Debug, Clone, Copy)]
pub struct KvWorkloadSpec {
    /// Operation mix.
    pub mix: KvMix,
    /// Key popularity.
    pub dist: KeyDist,
    /// Keys are drawn from `0..key_range`.
    pub key_range: i64,
    /// Operations each worker performs.
    pub ops_per_thread: usize,
    /// Worker threads.
    pub threads: usize,
    /// Keys pre-inserted before the measured phase.
    pub prefill: usize,
    /// Base RNG seed (worker `t` derives its own stream from it).
    pub seed: u64,
}

impl KvWorkloadSpec {
    /// A small deterministic spec for tests.
    pub fn small() -> KvWorkloadSpec {
        KvWorkloadSpec {
            mix: KvMix::CHURN,
            dist: KeyDist::Uniform,
            key_range: 256,
            ops_per_thread: 2_000,
            threads: 2,
            prefill: 128,
            seed: 42,
        }
    }
}

/// Aggregate result of one [`run_workload`] call.
#[derive(Debug, Clone)]
pub struct KvRunStats {
    /// Operations completed (shed writes count: the caller got an
    /// answer, just not the one it wanted).
    pub ops: u64,
    /// Writes rejected with [`crate::KvError::Overloaded`].
    pub overloaded: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Navigator health transitions across shards.
    pub transitions: u64,
    /// Successful pin neutralizations.
    pub neutralizations: u64,
    /// Times the injected stalled reader was forced to restart.
    pub reader_restarts: u64,
    /// Which shard hosted the injected stall, if any.
    pub stalled_shard: Option<usize>,
    /// Per-shard footprint high-water marks, in shard order.
    pub per_shard_retired_peak: Vec<usize>,
    /// Service-level counters (sum-of-peaks across domains).
    pub merged: SmrStats,
    /// Entries left in the store after the run (quiescent count).
    pub final_len: usize,
}

impl KvRunStats {
    /// Million operations per second over the measured phase.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9) / 1e6
    }
}

/// Runs `spec` against `store`.
///
/// * `navigator_on` — when true, a watchdog thread calls
///   [`KvStore::navigator_tick`] every few hundred microseconds for the
///   duration of the run; when false the store never degrades (the
///   baseline that exhibits unbounded growth under a stall).
/// * `stall` — when `Some(shard)`, one extra reader registers with that
///   shard's scheme, opens a protected region, and spins inside it for
///   the whole run, polling [`Smr::needs_restart`] NBR-style: when the
///   navigator neutralizes it, it restarts its read phase (and promptly
///   stalls again — the adversarial reader of Theorem 6.1, not a
///   cooperative one).
///
/// # Panics
///
/// Panics when thread registration fails (size the schemes' capacity
/// to `spec.threads` + 1 for the stall reader + 1 for prefill).
pub fn run_workload<S: Smr>(
    store: &KvStore<'_, S>,
    spec: &KvWorkloadSpec,
    navigator_on: bool,
    stall: Option<usize>,
) -> KvRunStats {
    // Prefill from a short-lived context (slot returns before workers
    // start).
    {
        let mut ctx = store.register().expect("prefill registration");
        for k in 0..spec.prefill.min(spec.key_range as usize) {
            let _ = store.put(&mut ctx, k as i64, k as i64);
        }
        store.flush(&mut ctx);
    }

    let done = AtomicBool::new(false);
    let restarts = AtomicU64::new(0);
    let total_ops = AtomicU64::new(0);
    let total_shed = AtomicU64::new(0);
    let started = Instant::now();

    std::thread::scope(|s| {
        if navigator_on {
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    store.navigator_tick();
                    std::thread::sleep(POLL_INTERVAL);
                }
            });
        }

        // Footprint sampler: one Sample event per shard per poll, so
        // reports carry per-shard curves even with the navigator off.
        s.spawn(|| {
            let mut tracers: Vec<_> = (0..store.shard_count())
                .map(|i| store.recorder(i).tracer(SAMPLER_THREAD, SchemeId::NONE))
                .collect();
            while !done.load(Ordering::Acquire) {
                for (i, t) in tracers.iter_mut().enumerate() {
                    let st = store.scheme(i).stats();
                    t.emit(Hook::Sample, st.retired_now as u64, i as u64);
                }
                std::thread::sleep(POLL_INTERVAL);
            }
        });

        if let Some(si) = stall {
            let (done, restarts) = (&done, &restarts);
            s.spawn(move || {
                let smr = store.scheme(si);
                let mut ctx = smr.register().expect("stall reader registration");
                while !done.load(Ordering::Acquire) {
                    smr.begin_op(&mut ctx);
                    let mut neutralized = false;
                    while !done.load(Ordering::Relaxed) {
                        if smr.needs_restart(&mut ctx) {
                            neutralized = true;
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    smr.end_op(&mut ctx);
                    if neutralized {
                        // SAFETY(ordering): Relaxed — tally read after
                        // this thread is joined.
                        restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        let workers: Vec<_> = (0..spec.threads)
            .map(|t| {
                let (total_ops, total_shed) = (&total_ops, &total_shed);
                let spec = *spec;
                s.spawn(move || {
                    let mut ctx: KvCtx<S> = store.register().expect("worker registration");
                    let mut rng = StdRng::seed_from_u64(
                        spec.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let sampler = spec.dist.sampler(spec.key_range);
                    let mut ops = 0u64;
                    let mut shed = 0u64;
                    for _ in 0..spec.ops_per_thread {
                        let key = sampler.sample(&mut rng);
                        let roll = rng.random_range(0..100u32);
                        match spec.mix.op(roll) {
                            KvOp::Get => {
                                let _ = store.get(&mut ctx, key);
                            }
                            KvOp::Put => {
                                if store.put(&mut ctx, key, key).is_err() {
                                    shed += 1;
                                    std::thread::yield_now();
                                }
                            }
                            KvOp::Remove => {
                                if store.remove(&mut ctx, key).is_err() {
                                    shed += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        ops += 1;
                    }
                    store.flush(&mut ctx);
                    // SAFETY(ordering): Relaxed — run totals, read only
                    // after every worker below is joined.
                    total_ops.fetch_add(ops, Ordering::Relaxed);
                    total_shed.fetch_add(shed, Ordering::Relaxed);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker panicked");
        }
        // SAFETY(ordering): Release — pairs with the stall harness's
        // Relaxed polling loop exit; joins above already ordered the
        // workers, this publishes `done` to the pinned reader.
        done.store(true, Ordering::Release);
    });

    let elapsed = started.elapsed();
    let (transitions, neutralizations, _) = store.nav_counters();
    KvRunStats {
        ops: total_ops.load(Ordering::Relaxed),
        overloaded: total_shed.load(Ordering::Relaxed),
        elapsed,
        transitions,
        neutralizations,
        reader_restarts: restarts.load(Ordering::Relaxed),
        stalled_shard: stall,
        per_shard_retired_peak: store
            .shard_stats()
            .iter()
            .map(|st| st.retired_peak)
            .collect(),
        merged: store.stats(),
        final_len: store.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvConfig;
    use era_smr::ebr::Ebr;

    #[test]
    fn mixes_roll_correctly_and_have_names() {
        assert_eq!(KvMix::YCSB_A.op(0), KvOp::Get);
        assert_eq!(KvMix::YCSB_A.op(49), KvOp::Get);
        assert_eq!(KvMix::YCSB_A.op(50), KvOp::Put);
        assert_eq!(KvMix::CHURN.op(99), KvOp::Remove);
        assert_eq!(KvMix::YCSB_C.name(), "ycsb-c");
        assert_eq!(KvMix::CHURN.name(), "churn");
        assert_eq!(
            KvMix {
                reads: 10,
                writes: 80,
                removes: 10
            }
            .name(),
            "custom"
        );
    }

    #[test]
    fn key_dist_samplers_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for dist in [KeyDist::Uniform, KeyDist::Zipfian { theta: 0.99 }] {
            let sampler = dist.sampler(100);
            for _ in 0..1_000 {
                let k = sampler.sample(&mut rng);
                assert!((0..100).contains(&k), "{dist:?} produced {k}");
            }
        }
        assert_eq!(KeyDist::Uniform.name(), "uniform");
        assert_eq!(KeyDist::Zipfian { theta: 0.5 }.name(), "zipfian");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn driver_smoke_run() {
        let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(8)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let spec = KvWorkloadSpec {
            threads: 2,
            ops_per_thread: 500,
            ..KvWorkloadSpec::small()
        };
        let stats = run_workload(&store, &spec, true, None);
        assert_eq!(stats.ops, 1_000);
        assert_eq!(stats.per_shard_retired_peak.len(), 2);
        assert!(stats.mops() > 0.0);
        assert_eq!(stats.stalled_shard, None);
        assert_eq!(stats.final_len, store.len());
    }
}
