//! JSON-lines run records for `kv_bench` and the integration tests.
//!
//! A [`KvRunRecord`] folds the per-shard recorders of one
//! [`KvStore`](crate::KvStore) run into a single line of JSON:
//! reclaim-latency histograms are merged bucket-wise, hook counts are
//! summed across shards, and the footprint curve of the *stalled* shard
//! (the interesting one) is pulled from its `Sample` events.

use std::io::Write;
use std::path::Path;

use era_obs::report::{histogram_json, JsonObject};
use era_obs::{HistogramSnapshot, Hook, TraceLog};
use era_smr::Smr;

use crate::store::KvStore;
use crate::workload::{KvRunStats, KvWorkloadSpec};

/// One KV run, ready to serialize as a JSON line.
#[derive(Debug, Clone)]
pub struct KvRunRecord {
    /// Reclamation scheme name (from the shard schemes).
    pub scheme: String,
    /// Shard count.
    pub shards: usize,
    /// Mix name ("ycsb-a", "churn", …).
    pub mix: String,
    /// Key distribution name ("uniform"/"zipfian").
    pub dist: String,
    /// Worker threads.
    pub threads: usize,
    /// Whether the navigator thread was running.
    pub navigator: bool,
    /// Aggregate run statistics.
    pub stats: KvRunStats,
    /// Admission-control sheds counted by the store.
    pub sheds: u64,
    /// Footprint curve `(logical_ts, retired_now)` of the stalled shard
    /// (shard 0 when no stall was injected).
    pub stall_curve: Vec<(u64, u64)>,
    /// Retire→reclaim latency merged across shard recorders.
    pub latency: HistogramSnapshot,
    /// Per-hook call counts summed across shard recorders, as JSON.
    pub hook_counts: String,
    /// Trace events lost to ring overwrite, summed across shards.
    pub trace_dropped: u64,
}

impl KvRunRecord {
    /// Assembles a record after a run: drains every shard recorder,
    /// merges metrics, and keeps the stalled shard's footprint curve.
    /// Call once — draining consumes the event rings.
    pub fn collect<S: Smr>(
        store: &KvStore<'_, S>,
        spec: &KvWorkloadSpec,
        navigator: bool,
        stats: KvRunStats,
    ) -> KvRunRecord {
        let logs: Vec<TraceLog> = (0..store.shard_count())
            .map(|i| store.recorder(i).drain())
            .collect();
        KvRunRecord::from_logs(store, spec, navigator, stats, &logs)
    }

    /// Assembles a record from already-drained per-shard trace logs
    /// (`logs[i]` belongs to shard `i`; missing tails count as empty).
    ///
    /// This is the path `kv_bench --flight-dump` uses: the flight
    /// recorder owns the one-and-only ring drain, and the report is
    /// built from its retained buffers — draining the rings twice
    /// would race the two collectors for the same events.
    pub fn from_logs<S: Smr>(
        store: &KvStore<'_, S>,
        spec: &KvWorkloadSpec,
        navigator: bool,
        stats: KvRunStats,
        logs: &[TraceLog],
    ) -> KvRunRecord {
        let focus = stats.stalled_shard.unwrap_or(0);
        let mut latency = HistogramSnapshot::empty();
        let mut hook_sums = [0u64; Hook::COUNT];
        let mut stall_curve = Vec::new();
        let mut trace_dropped = 0;
        let empty = TraceLog::default();
        for i in 0..store.shard_count() {
            let rec = store.recorder(i);
            let log = logs.get(i).unwrap_or(&empty);
            if i == focus {
                stall_curve = log.with_hook(Hook::Sample).map(|e| (e.ts, e.a)).collect();
                stall_curve.sort_unstable();
            }
            trace_dropped += log.dropped;
            latency.merge(&rec.metrics().reclaim_latency.snapshot());
            for (s, hook) in hook_sums.iter_mut().zip(Hook::ALL) {
                *s += rec.metrics().hook_count(hook);
            }
        }
        let mut counts = JsonObject::new();
        for (s, hook) in hook_sums.iter().zip(Hook::ALL) {
            if *s > 0 {
                counts = counts.u64(hook.name(), *s);
            }
        }
        let (_, _, sheds) = store.nav_counters();
        KvRunRecord {
            scheme: store.scheme(0).name().to_string(),
            shards: store.shard_count(),
            mix: spec.mix.name().to_string(),
            dist: spec.dist.name().to_string(),
            threads: spec.threads,
            navigator,
            stats,
            sheds,
            stall_curve,
            latency,
            hook_counts: counts.finish(),
            trace_dropped,
        }
    }

    /// Renders the record as one line of JSON.
    pub fn to_json_line(&self) -> String {
        let stalled = self.stats.stalled_shard.map(|s| s as i64).unwrap_or(-1);
        JsonObject::new()
            .str("scheme", &self.scheme)
            .u64("shards", self.shards as u64)
            .u64("threads", self.threads as u64)
            .str("mix", &self.mix)
            .str("dist", &self.dist)
            .bool("navigator", self.navigator)
            .raw("stalled_shard", &stalled.to_string())
            .u64("ops", self.stats.ops)
            .f64("elapsed_s", self.stats.elapsed.as_secs_f64())
            .f64("mops", self.stats.mops())
            .u64("transitions", self.stats.transitions)
            .u64("neutralizations", self.stats.neutralizations)
            .u64("overloaded", self.stats.overloaded)
            .u64("sheds", self.sheds)
            .u64("reader_restarts", self.stats.reader_restarts)
            .u64("retired_peak", self.stats.merged.retired_peak as u64)
            .u64_array(
                "per_shard_retired_peak",
                &self
                    .stats
                    .per_shard_retired_peak
                    .iter()
                    .map(|&p| p as u64)
                    .collect::<Vec<_>>(),
            )
            .u64("total_retired", self.stats.merged.total_retired)
            .u64("total_reclaimed", self.stats.merged.total_reclaimed)
            .u64("final_len", self.stats.final_len as u64)
            .raw("reclaim_latency", &histogram_json(&self.latency))
            .raw("hook_counts", &self.hook_counts)
            .pairs("stall_curve", &self.stall_curve)
            .u64("trace_dropped", self.trace_dropped)
            .finish()
    }
}

/// Writes `records` as a JSON-lines file (one record per line).
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_jsonl(path: &Path, records: &[KvRunRecord]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    for r in records {
        writeln!(file, "{}", r.to_json_line())?;
    }
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvConfig;
    use crate::workload::run_workload;
    use era_smr::ebr::Ebr;

    #[test]
    fn record_from_run_serializes_completely() {
        let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(8)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let spec = KvWorkloadSpec::small();
        let stats = run_workload(&store, &spec, true, None);
        let record = KvRunRecord::collect(&store, &spec, true, stats);
        assert_eq!(record.shards, 2);
        let line = record.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'), "one record = one line");
        for key in [
            "\"scheme\":\"EBR\"",
            "\"mix\":\"churn\"",
            "\"dist\":\"uniform\"",
            "\"navigator\":true",
            "\"stalled_shard\":-1",
            "\"per_shard_retired_peak\":[",
            "\"reclaim_latency\":{",
            "\"hook_counts\":{",
            "\"stall_curve\":[",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        #[cfg(feature = "trace")]
        assert!(
            !record.stall_curve.is_empty(),
            "sampler thread must have emitted Sample events"
        );
    }

    #[test]
    fn jsonl_roundtrip() {
        let schemes: Vec<Ebr> = vec![Ebr::new(8)];
        let store = KvStore::new(&schemes, KvConfig::default());
        let spec = KvWorkloadSpec::small();
        let stats = run_workload(&store, &spec, false, None);
        let record = KvRunRecord::collect(&store, &spec, false, stats);
        let dir = std::env::temp_dir().join("era-kv-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kv.jsonl");
        write_jsonl(&path, &[record.clone(), record]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"navigator\":false"));
        std::fs::remove_file(&path).unwrap();
    }
}
