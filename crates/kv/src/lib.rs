//! # era-kv — a sharded SMR-backed key-value service with a runtime ERA navigator
//!
//! The ERA theorem (Sheffi & Petrank, PODC 2023) says no safe memory
//! reclamation scheme is simultaneously **E**asy to integrate,
//! **R**obust, and widely **A**pplicable. That is a statement about
//! schemes fixed at design time. This crate asks the systems question
//! that follows: if a *service* is free to change which property it
//! pays for **at runtime**, how close to all three can it get?
//!
//! ## Architecture
//!
//! * [`KvStore`] — N shards, each an [`era_ds::HashMap`] bound to its
//!   **own** reclamation-scheme instance ([`era_smr::Smr`]) and its own
//!   [`era_obs::Recorder`]. Sharding is not (only) a throughput trick:
//!   independent reclaimer domains mean a stalled reader pins exactly
//!   one shard's garbage, turning the theorem's worst case from a
//!   whole-service outage into a per-shard incident.
//! * [`ShardHealth`] + [`KvStore::navigator_tick`] — the navigator. A
//!   watchdog polls each shard's always-on footprint metrics against
//!   configured budgets ([`KvConfig::retired_soft`] /
//!   [`KvConfig::retired_hard`]) and walks a three-state machine:
//!   `Robust` (native behaviour) → `Degrading` (admission control
//!   sheds writes with [`KvError::Overloaded`]: robustness bought by
//!   narrowing applicability) → `Violating` (the blamed pin is
//!   cooperatively neutralized, NBR-style: robustness bought by giving
//!   up easy integration). Every transition is a
//!   [`Hook::Navigate`](era_obs::Hook) event.
//! * [`workload`] — a YCSB-style driver (A/B/C and churn mixes,
//!   uniform and zipfian keys, stall injection) used by `era-bench`'s
//!   `kv_bench` binary and the integration tests.
//! * [`report`] — JSON-lines run records merging the per-shard
//!   recorders.
//!
//! ## The navigator contract
//!
//! Neutralization force-unpins a thread's protected region, so **every
//! thread operating on a store must poll
//! [`Smr::needs_restart`](era_smr::Smr::needs_restart) at operation
//! boundaries** before trusting pointers across them. [`KvStore`]'s own
//! operations do this internally — callers that stay behind the facade
//! inherit the protocol for free, which is exactly the integration
//! burden the navigator shifts from every data-structure author to one
//! service author. Threads that access a shard's scheme directly (like
//! the stall harness in [`workload`]) must follow the protocol
//! themselves.
//!
//! ## Feature flags
//!
//! * `trace` (default) — enables the era-obs runtime: navigator
//!   transitions, admission sheds, and footprint samples land in the
//!   per-shard event rings and flow into [`report`] records. Without
//!   it the navigator still functions (classification reads always-on
//!   metrics), but reports carry no event curves.

#![warn(missing_docs)]

pub mod navigator;
pub mod report;
pub mod store;
pub mod workload;

pub use navigator::ShardHealth;
pub use report::{write_jsonl, KvRunRecord};
pub use store::{KvConfig, KvCtx, KvError, KvStore, RetryPolicy, NAVIGATOR_THREAD};
pub use workload::{run_workload, KeyDist, KvMix, KvRunStats, KvWorkloadSpec};
