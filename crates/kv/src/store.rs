//! The sharded store: N independent reclaimer domains behind one
//! facade.
//!
//! Each shard owns an [`era_ds::HashMap`] bound to its *own* scheme
//! instance and its own [`Recorder`], so reclamation, blame
//! attribution, and footprint accounting are all per-shard: a stalled
//! reader pins exactly one shard's garbage, and the navigator can see
//! — and act on — that shard alone.
//!
//! The store borrows the schemes (`KvStore::new(&schemes, cfg)`)
//! rather than owning them, matching the `era-ds` idiom
//! (`HashMap::new(&smr, …)`) and keeping the struct free of
//! self-references; callers keep the `Vec<S>` alive for the store's
//! lifetime, which `'s` enforces.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use era_ds::HashMap;
use era_obs::{Hook, Recorder, SchemeId, ThreadTracer};
use era_smr::{CachePadded, RegisterError, Smr, SmrStats};

use crate::navigator::ShardHealth;

/// Thread slot the navigator's service tracer emits under (stays clear
/// of real worker slots, the smr-internal service slot `u16::MAX`, and
/// the bench sampler slot `u16::MAX - 1`).
pub const NAVIGATOR_THREAD: u16 = u16::MAX - 2;

/// Tuning knobs for a [`KvStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Hash buckets per shard map.
    pub buckets_per_shard: usize,
    /// Retired-node budget at which a shard is classified
    /// [`ShardHealth::Degrading`] and admission control engages.
    pub retired_soft: usize,
    /// Retired-node budget at which a shard is classified
    /// [`ShardHealth::Violating`] and the navigator neutralizes the
    /// blamed pin.
    pub retired_hard: usize,
    /// Writes admitted concurrently to a degraded shard before callers
    /// see [`KvError::Overloaded`].
    pub admission_depth: usize,
    /// Blame slots per shard recorder; must be ≥ the schemes' thread
    /// capacity for neutralization to target the right slot.
    pub max_threads: usize,
    /// Event-ring capacity of each shard's recorder. The default
    /// ([`era_obs::DEFAULT_RING_CAPACITY`]) holds a few hundred
    /// milliseconds of traced traffic; soak-length scenario runs raise
    /// it so the flight recorder's retained window is not all
    /// `trace_dropped`.
    pub ring_capacity: usize,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            buckets_per_shard: 64,
            retired_soft: 512,
            retired_hard: 2048,
            admission_depth: 4,
            max_threads: 16,
            ring_capacity: era_obs::DEFAULT_RING_CAPACITY,
        }
    }
}

/// Errors surfaced to store callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Admission control rejected the write: the shard is degraded and
    /// its bounded queue is full. Backpressure is the navigator's first
    /// degradation mode — the service sheds load instead of growing
    /// footprint (sacrificing applicability to heavy traffic, not
    /// robustness).
    Overloaded {
        /// The shard that refused the write.
        shard: usize,
    },
    /// The retrying write path ([`KvStore::put_with_retry`]) ran out
    /// of budget: every attempt inside the per-op deadline was shed.
    /// This is the *typed* failure the self-healing path guarantees —
    /// a caller either succeeds within its deadline or gets this
    /// error; it never hangs.
    DeadlineExceeded {
        /// The shard that kept refusing the write.
        shard: usize,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Overloaded { shard } => {
                write!(f, "shard {shard} is overloaded (admission control)")
            }
            KvError::DeadlineExceeded { shard } => {
                write!(f, "shard {shard} stayed overloaded past the op deadline")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// Bounded retry/backoff policy for the self-healing write path.
///
/// Both bounds are hard: a write attempt loop stops at
/// `max_attempts` *or* when the next backoff would overrun
/// `deadline`, whichever comes first — so
/// [`KvStore::put_with_retry`] is total by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a RetryPolicy only takes effect when passed to put_with_retry"]
pub struct RetryPolicy {
    /// Maximum `put` attempts (≥ 1; 0 is treated as 1).
    pub max_attempts: u32,
    /// First backoff; doubles per retry (exponential).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Per-op wall-clock budget.
    pub deadline: Duration,
    /// Apply equal-jitter to each backoff step: a deterministic hash of
    /// the caller-supplied salt picks a wait in `[nominal/2, nominal]`,
    /// desynchronizing concurrent retriers (who otherwise re-collide on
    /// the shared admission queue every `base × 2^k`) without raising
    /// any step above the un-jittered ceiling — so every deadline bound
    /// that held for the fixed schedule still holds.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_millis(100),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `attempt` (0-based): the exponential step
    /// `base_backoff × 2^attempt` clamped to `max_backoff`, then — when
    /// [`RetryPolicy::jitter`] is set — scattered over
    /// `[nominal/2, nominal]` by a splitmix64 hash of `(salt, attempt)`.
    /// Pure and deterministic for a given `(policy, attempt, salt)`, so
    /// retry schedules are replayable from a seed like everything else
    /// in the campaign harness.
    pub fn backoff_for(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.base_backoff.max(Duration::from_nanos(1));
        let cap = self.max_backoff.max(self.base_backoff);
        let nominal_ns = (base.as_nanos() << attempt.min(63)).min(cap.as_nanos());
        let nominal_ns = u64::try_from(nominal_ns).unwrap_or(u64::MAX);
        if !self.jitter || nominal_ns < 2 {
            return Duration::from_nanos(nominal_ns);
        }
        // splitmix64 over (salt, attempt): cheap, stateless, and good
        // enough to decorrelate retriers — this is scheduling jitter,
        // not cryptography.
        let mut z = salt ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let half = nominal_ns / 2;
        Duration::from_nanos(half + z % (nominal_ns - half + 1))
    }
}

pub(crate) struct Shard<'s, S: Smr> {
    pub(crate) smr: &'s S,
    pub(crate) map: HashMap<'s, S>,
    pub(crate) recorder: Recorder,
    pub(crate) health: AtomicU8,
    inflight: AtomicUsize,
    pub(crate) transitions: AtomicU64,
    pub(crate) neutralizations: AtomicU64,
    sheds: AtomicU64,
    pub(crate) violating_ticks: AtomicU32,
    /// Blame counters at the previous navigator tick, for delta-based
    /// victim selection (cumulative counters would keep pointing at a
    /// long-resolved stall).
    pub(crate) last_blame: Mutex<Vec<u64>>,
    pub(crate) nav_tracer: Mutex<ThreadTracer>,
}

/// Per-thread handle for [`KvStore`]: one scheme context per shard.
#[must_use = "a KvCtx owns per-shard SMR registrations: dropping it releases every shard slot and orphans in-flight garbage"]
pub struct KvCtx<S: Smr> {
    pub(crate) ctxs: Vec<S::ThreadCtx>,
}

impl<S: Smr> fmt::Debug for KvCtx<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvCtx")
            .field("shards", &self.ctxs.len())
            .finish()
    }
}

/// A sharded concurrent key-value store over independent SMR domains.
///
/// # Example
///
/// ```
/// use era_kv::{KvConfig, KvStore};
/// use era_smr::ebr::Ebr;
///
/// let schemes: Vec<Ebr> = (0..4).map(|_| Ebr::new(8)).collect();
/// let store = KvStore::new(&schemes, KvConfig::default());
/// let mut ctx = store.register().unwrap();
/// assert_eq!(store.put(&mut ctx, 7, 70), Ok(None));
/// assert_eq!(store.get(&mut ctx, 7), Some(70));
/// assert_eq!(store.remove(&mut ctx, 7), Ok(Some(70)));
/// ```
pub struct KvStore<'s, S: Smr> {
    /// One shard per scheme, each cache-padded: a shard's hot admission
    /// counters (`inflight`, `sheds`) are bumped on every routed op, and
    /// without padding two adjacent shards' counters could share a line
    /// and serialize unrelated traffic.
    pub(crate) shards: Vec<CachePadded<Shard<'s, S>>>,
    pub(crate) cfg: KvConfig,
    /// Live navigator budgets. They start at the config values but are
    /// runtime-mutable ([`KvStore::set_budgets`]) so a scenario can
    /// tighten or relax the robustness envelope mid-run without
    /// rebuilding the store.
    pub(crate) soft_budget: AtomicUsize,
    pub(crate) hard_budget: AtomicUsize,
}

impl<S: Smr> fmt::Debug for KvStore<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvStore")
            .field("shards", &self.shards.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl<'s, S: Smr> KvStore<'s, S> {
    /// Builds a store with one shard per scheme in `schemes`. Each
    /// scheme becomes an independent reclaimer domain with its own
    /// recorder (attached here, so blame and footprint metrics are live
    /// from the first operation).
    ///
    /// # Panics
    ///
    /// Panics when `schemes` is empty.
    pub fn new(schemes: &'s [S], cfg: KvConfig) -> Self {
        assert!(!schemes.is_empty(), "a KvStore needs at least one shard");
        let shards = schemes
            .iter()
            .map(|smr| {
                let recorder = Recorder::with_ring_capacity(cfg.max_threads, cfg.ring_capacity);
                smr.attach_recorder(&recorder);
                let nav_tracer =
                    Mutex::new(recorder.tracer(NAVIGATOR_THREAD, SchemeId::from_name(smr.name())));
                CachePadded::new(Shard {
                    smr,
                    map: HashMap::new(smr, cfg.buckets_per_shard),
                    recorder,
                    health: AtomicU8::new(ShardHealth::Robust as u8),
                    inflight: AtomicUsize::new(0),
                    transitions: AtomicU64::new(0),
                    neutralizations: AtomicU64::new(0),
                    sheds: AtomicU64::new(0),
                    violating_ticks: AtomicU32::new(0),
                    last_blame: Mutex::new(Vec::new()),
                    nav_tracer,
                })
            })
            .collect();
        KvStore {
            shards,
            cfg,
            soft_budget: AtomicUsize::new(cfg.retired_soft),
            hard_budget: AtomicUsize::new(cfg.retired_hard),
        }
    }

    /// Replaces the navigator's soft/hard retired-node budgets for all
    /// shards, effective from the next [`KvStore::navigator_tick`].
    /// Zero-cost to call mid-run: classification reads the budgets
    /// fresh each tick, and hysteresis handles a shard that the new,
    /// tighter envelope instantly reclassifies. `hard` is clamped to at
    /// least `soft` so the escalation ladder stays ordered.
    pub fn set_budgets(&self, soft: usize, hard: usize) {
        self.soft_budget.store(soft, Ordering::SeqCst);
        self.hard_budget.store(hard.max(soft), Ordering::SeqCst);
    }

    /// The live `(soft, hard)` navigator budgets.
    pub fn budgets(&self) -> (usize, usize) {
        (
            self.soft_budget.load(Ordering::SeqCst),
            self.hard_budget.load(Ordering::SeqCst),
        )
    }

    /// Registers the calling thread with every shard domain.
    ///
    /// # Errors
    ///
    /// [`RegisterError`] when any shard's scheme is out of thread
    /// slots (contexts acquired so far are released again).
    pub fn register(&self) -> Result<KvCtx<S>, RegisterError> {
        let mut ctxs = Vec::with_capacity(self.shards.len());
        for sh in &self.shards {
            match sh.smr.register() {
                Ok(c) => ctxs.push(c),
                Err(e) => {
                    // Roll back the partial registration explicitly, in
                    // LIFO order, so a failed register leaves every
                    // earlier shard's registry slot free again. Dropping
                    // the Vec would do the same, but the rollback is a
                    // correctness requirement (a leaked slot shrinks the
                    // shard's thread capacity forever), not an accident
                    // of drop order — keep it visible.
                    while let Some(c) = ctxs.pop() {
                        drop(c);
                    }
                    return Err(e);
                }
            }
        }
        Ok(KvCtx { ctxs })
    }

    /// The shard `key` routes to. Uses a different multiplier than the
    /// in-shard bucket hash so shard routing and bucket placement stay
    /// uncorrelated (otherwise each shard would populate only a subset
    /// of its buckets).
    pub fn shard_of(&self, key: i64) -> usize {
        let h = (key as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// Reads `key`. Reads are never shed: they add no footprint, and
    /// refusing them would buy nothing.
    pub fn get(&self, ctx: &mut KvCtx<S>, key: i64) -> Option<i64> {
        let si = self.shard_of(key);
        let sh = &self.shards[si];
        let tctx = &mut ctx.ctxs[si];
        let _ = sh.smr.needs_restart(tctx); // op boundary: ack any pending neutralization
        let v = sh.map.get(tctx, key);
        sh.smr.quiescent_point(tctx);
        v
    }

    /// Inserts or updates `key`; returns the previous value.
    ///
    /// # Errors
    ///
    /// [`KvError::Overloaded`] when the target shard is degraded and
    /// its admission queue is full.
    pub fn put(&self, ctx: &mut KvCtx<S>, key: i64, value: i64) -> Result<Option<i64>, KvError> {
        let si = self.shard_of(key);
        self.admit_write(si)?;
        let sh = &self.shards[si];
        let tctx = &mut ctx.ctxs[si];
        let _ = sh.smr.needs_restart(tctx);
        let prev = sh.map.insert(tctx, key, value);
        sh.smr.quiescent_point(tctx);
        sh.inflight.fetch_sub(1, Ordering::SeqCst);
        Ok(prev)
    }

    /// Removes `key`; returns the removed value.
    ///
    /// # Errors
    ///
    /// [`KvError::Overloaded`] under the same conditions as
    /// [`KvStore::put`].
    pub fn remove(&self, ctx: &mut KvCtx<S>, key: i64) -> Result<Option<i64>, KvError> {
        let si = self.shard_of(key);
        self.admit_write(si)?;
        let sh = &self.shards[si];
        let tctx = &mut ctx.ctxs[si];
        let _ = sh.smr.needs_restart(tctx);
        let prev = sh.map.remove(tctx, key);
        sh.smr.quiescent_point(tctx);
        sh.inflight.fetch_sub(1, Ordering::SeqCst);
        Ok(prev)
    }

    /// Atomically adds `delta` to `key`'s value; returns the new value
    /// or `None` if absent. Counts as a write for admission control.
    ///
    /// # Errors
    ///
    /// [`KvError::Overloaded`] under the same conditions as
    /// [`KvStore::put`].
    pub fn incr(&self, ctx: &mut KvCtx<S>, key: i64, delta: i64) -> Result<Option<i64>, KvError> {
        let si = self.shard_of(key);
        self.admit_write(si)?;
        let sh = &self.shards[si];
        let tctx = &mut ctx.ctxs[si];
        let _ = sh.smr.needs_restart(tctx);
        let v = sh.map.fetch_add(tctx, key, delta);
        sh.smr.quiescent_point(tctx);
        sh.inflight.fetch_sub(1, Ordering::SeqCst);
        Ok(v)
    }

    /// Inserts or updates a batch of `(key, value)` pairs, amortizing
    /// the per-write admission handshake across each shard's share of
    /// the batch — the serving-path fast lane for pipelined writes.
    ///
    /// Items are grouped by shard; each shard group pays **one**
    /// admission decision, one `needs_restart` poll, and one quiescent
    /// point instead of one per item. Grouping is stable, so two writes
    /// to the same key keep their order (same key → same shard → same
    /// group, applied in batch order). Results come back in item order:
    /// the previous value per item, or [`KvError::Overloaded`] for
    /// every item of a shard group the navigator refused.
    pub fn put_batch(
        &self,
        ctx: &mut KvCtx<S>,
        items: &[(i64, i64)],
    ) -> Vec<Result<Option<i64>, KvError>> {
        let mut out: Vec<Result<Option<i64>, KvError>> = Vec::with_capacity(items.len());
        out.resize(items.len(), Ok(None));
        // Group item indices per shard, preserving item order within a
        // group. A batch is typically small (one connection's pipelined
        // burst), so a Vec<Vec<_>> scratch beats anything cleverer.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (idx, &(key, _)) in items.iter().enumerate() {
            groups[self.shard_of(key)].push(idx);
        }
        for (si, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            if let Err(e) = self.admit_write(si) {
                for &idx in group {
                    out[idx] = Err(e);
                }
                continue;
            }
            let sh = &self.shards[si];
            let tctx = &mut ctx.ctxs[si];
            let _ = sh.smr.needs_restart(tctx);
            for &idx in group {
                let (key, value) = items[idx];
                out[idx] = Ok(sh.map.insert(tctx, key, value));
            }
            sh.smr.quiescent_point(tctx);
            sh.inflight.fetch_sub(1, Ordering::SeqCst);
        }
        out
    }

    /// Inserts or updates `key` with bounded retry and exponential
    /// backoff — the self-healing write path. Between attempts the
    /// caller's own context flushes the target shard (helping drain
    /// the backlog that caused the shed) before backing off.
    ///
    /// # Errors
    ///
    /// [`KvError::DeadlineExceeded`] when every attempt within
    /// `policy`'s budget was shed. Never blocks past the deadline and
    /// never spins unboundedly: attempts and sleeps are both capped.
    pub fn put_with_retry(
        &self,
        ctx: &mut KvCtx<S>,
        key: i64,
        value: i64,
        policy: RetryPolicy,
    ) -> Result<Option<i64>, KvError> {
        let start = Instant::now();
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            match self.put(ctx, key, value) {
                Ok(prev) => return Ok(prev),
                Err(KvError::Overloaded { shard }) => {
                    self.shards[shard].smr.flush(&mut ctx.ctxs[shard]);
                    // Salting with the key decorrelates retriers stuck
                    // on different keys of the same overloaded shard.
                    let backoff = policy.backoff_for(attempt, key as u64);
                    let spent = start.elapsed();
                    if attempt + 1 == attempts || spent + backoff > policy.deadline {
                        return Err(KvError::DeadlineExceeded { shard });
                    }
                    std::thread::sleep(backoff);
                }
                Err(other) => return Err(other),
            }
        }
        Err(KvError::DeadlineExceeded {
            shard: self.shard_of(key),
        })
    }

    /// Marks `shard` [`ShardHealth::Quarantined`]: writes are refused
    /// outright (reads still served) until its footprint drains below
    /// half the soft budget, at which point [`KvStore::navigator_tick`]
    /// returns it to `Robust`. Call after a context death on the shard
    /// — the quarantine gives survivors room to adopt the orphaned
    /// garbage without new writes piling on.
    pub fn quarantine(&self, shard: usize) {
        let sh = &self.shards[shard];
        let prev = sh
            .health
            .swap(ShardHealth::Quarantined as u8, Ordering::SeqCst);
        if prev != ShardHealth::Quarantined as u8 {
            // SAFETY(ordering): Relaxed — transition tally is telemetry;
            // the SeqCst health swap above is the real edge.
            sh.transitions.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut t) = sh.nav_tracer.try_lock() {
                t.emit(
                    Hook::Navigate,
                    shard as u64,
                    ((prev as u64) << 8) | ShardHealth::Quarantined as u64,
                );
            }
        }
    }

    /// Re-registers this thread's context on `shard` after a death or
    /// neutralization incident: a fresh context is acquired, the old
    /// one is dropped (its garbage moves to the scheme's orphan pool
    /// and its registry slot is released), and the fresh context
    /// immediately flushes so the orphans are adopted.
    ///
    /// # Errors
    ///
    /// [`RegisterError`] when the shard's scheme has no spare slot —
    /// the old context is then kept untouched (healing needs one free
    /// slot because the fresh context is acquired before the old one
    /// is released, so the swap can never leave the thread without a
    /// context).
    pub fn heal(&self, ctx: &mut KvCtx<S>, shard: usize) -> Result<(), RegisterError> {
        let sh = &self.shards[shard];
        let mut fresh = sh.smr.register()?;
        // Ack any restart flag already raised against the fresh slot:
        // registry slots are recycled, and a neutralization aimed at the
        // slot's previous occupant (a navigator tick can fire between
        // that context's release and this register) must not leak into
        // the healed context's first real operation.
        let _ = sh.smr.needs_restart(&mut fresh);
        let mut old = std::mem::replace(&mut ctx.ctxs[shard], fresh);
        // Flush through the dying context first: whatever it can still
        // reclaim is freed directly instead of round-tripping through
        // the orphan pool, shrinking the adoption window a concurrent
        // `maintain` pass on another thread races against.
        sh.smr.flush(&mut old);
        drop(old);
        sh.smr.flush(&mut ctx.ctxs[shard]);
        Ok(())
    }

    /// One idle-maintenance pass for this context: a quiescent point
    /// and a flush on every shard, so garbage retired through `ctx`
    /// does not sit in its local lists while the thread has no
    /// traffic. Long-lived serving threads (the `era-net` worker pool)
    /// call this whenever they idle out of a read — without it, a
    /// quiet server pins its own backlog forever: reclamation only
    /// runs inside write operations, and an overloaded shard that has
    /// started shedding writes would never see another one.
    pub fn maintain(&self, ctx: &mut KvCtx<S>) {
        for (si, sh) in self.shards.iter().enumerate() {
            let tctx = &mut ctx.ctxs[si];
            let _ = sh.smr.needs_restart(tctx);
            sh.smr.quiescent_point(tctx);
            sh.smr.flush(tctx);
        }
    }

    /// Graceful shutdown: repeatedly cycles every shard through an
    /// (empty) operation, a quiescent point, and a flush — with a
    /// navigator tick per round so quarantined shards can recover —
    /// until the whole store's `retired_now` drains to 0 or
    /// `max_rounds` passes. Returns whether the drain completed; the
    /// only way it cannot is garbage pinned by a context outside this
    /// caller's control (a live stalled reader).
    pub fn drain(&self, ctx: &mut KvCtx<S>, max_rounds: usize) -> bool {
        for _ in 0..max_rounds.max(1) {
            for (si, sh) in self.shards.iter().enumerate() {
                let tctx = &mut ctx.ctxs[si];
                let _ = sh.smr.needs_restart(tctx);
                sh.smr.begin_op(tctx);
                sh.smr.end_op(tctx);
                sh.smr.quiescent_point(tctx);
                sh.smr.flush(tctx);
            }
            self.navigator_tick();
            if self.stats().retired_now == 0 {
                return true;
            }
        }
        self.stats().retired_now == 0
    }

    /// All entries with `lo <= key < hi`, sorted (quiescent use only,
    /// like the underlying maps' snapshots).
    pub fn scan(&self, lo: i64, hi: i64) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = self
            .shards
            .iter()
            .flat_map(|sh| sh.map.collect_entries())
            .filter(|&(k, _)| lo <= k && k < hi)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total entries across shards (quiescent use only).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|sh| sh.map.len()).sum()
    }

    /// Whether the store is empty (quiescent use only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Service-level footprint counters: per-shard snapshots folded
    /// with [`SmrStats::merge`] (sum-of-peaks, the conservative bound).
    pub fn stats(&self) -> SmrStats {
        let mut acc = SmrStats::default();
        for sh in &self.shards {
            acc.merge(&sh.smr.stats());
        }
        acc
    }

    /// Footprint counters of each shard domain, in shard order.
    pub fn shard_stats(&self) -> Vec<SmrStats> {
        self.shards.iter().map(|sh| sh.smr.stats()).collect()
    }

    /// Current health class of `shard`.
    pub fn health(&self, shard: usize) -> ShardHealth {
        ShardHealth::from_u8(self.shards[shard].health.load(Ordering::SeqCst))
    }

    /// The scheme instance backing `shard` — the hook the stall
    /// harness uses to pin a single shard's domain.
    pub fn scheme(&self, shard: usize) -> &'s S {
        self.shards[shard].smr
    }

    /// The recorder observing `shard` (metrics always live; event rings
    /// only with the `trace` feature).
    pub fn recorder(&self, shard: usize) -> &Recorder {
        &self.shards[shard].recorder
    }

    /// Navigator counters summed over shards:
    /// `(transitions, neutralizations, sheds)`.
    pub fn nav_counters(&self) -> (u64, u64, u64) {
        let mut t = 0;
        let mut n = 0;
        let mut s = 0;
        for sh in &self.shards {
            t += sh.transitions.load(Ordering::Relaxed);
            n += sh.neutralizations.load(Ordering::Relaxed);
            s += sh.sheds.load(Ordering::Relaxed);
        }
        (t, n, s)
    }

    /// Eagerly attempts reclamation on every shard with this thread's
    /// contexts (shutdown/test convenience).
    pub fn flush(&self, ctx: &mut KvCtx<S>) {
        for (sh, tctx) in self.shards.iter().zip(ctx.ctxs.iter_mut()) {
            sh.smr.flush(tctx);
        }
    }

    fn admit_write(&self, si: usize) -> Result<(), KvError> {
        let sh = &self.shards[si];
        let health = sh.health.load(Ordering::Relaxed);
        if health == ShardHealth::Robust as u8 {
            sh.inflight.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        if health == ShardHealth::Quarantined as u8 {
            // Quarantine refuses writes outright (no bounded queue):
            // the shard is recovering from a death, not from load.
            // SAFETY(ordering): Relaxed — shed tally is telemetry for
            // reports; admission is decided by the health word alone.
            let sheds = sh.sheds.fetch_add(1, Ordering::Relaxed) + 1;
            if let Ok(mut t) = sh.nav_tracer.try_lock() {
                t.emit(Hook::Shed, si as u64, sheds);
            }
            return Err(KvError::Overloaded { shard: si });
        }
        // Degraded: bounded admission. The health check above and the
        // increment below can race with a navigator transition — the
        // worst case is one extra admitted write, which the budget's
        // slack absorbs.
        let prev = sh.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.cfg.admission_depth {
            sh.inflight.fetch_sub(1, Ordering::SeqCst);
            // SAFETY(ordering): Relaxed — shed tally, as above.
            let sheds = sh.sheds.fetch_add(1, Ordering::Relaxed) + 1;
            if let Ok(mut t) = sh.nav_tracer.try_lock() {
                t.emit(Hook::Shed, si as u64, sheds);
            }
            return Err(KvError::Overloaded { shard: si });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_smr::ebr::Ebr;
    use era_smr::hp::Hp;
    use era_smr::qsbr::Qsbr;

    fn ebr_store(shards: usize) -> (Vec<Ebr>, KvConfig) {
        let schemes: Vec<Ebr> = (0..shards).map(|_| Ebr::new(8)).collect();
        (schemes, KvConfig::default())
    }

    #[test]
    fn basic_semantics_across_shards() {
        let (schemes, cfg) = ebr_store(4);
        let store = KvStore::new(&schemes, cfg);
        let mut ctx = store.register().unwrap();
        for k in -50..50 {
            assert_eq!(store.put(&mut ctx, k, k * 2), Ok(None));
        }
        for k in -50..50 {
            assert_eq!(store.get(&mut ctx, k), Some(k * 2));
        }
        assert_eq!(store.len(), 100);
        assert_eq!(store.put(&mut ctx, 0, 42), Ok(Some(0)));
        assert_eq!(store.incr(&mut ctx, 0, 8), Ok(Some(50)));
        assert_eq!(store.incr(&mut ctx, 9999, 1), Ok(None));
        let window = store.scan(-5, 5);
        assert_eq!(window.len(), 10);
        assert!(window.windows(2).all(|w| w[0].0 < w[1].0), "scan sorted");
        assert_eq!(window[5], (0, 50));
        for k in -50..50 {
            assert_eq!(
                store.remove(&mut ctx, k),
                Ok(Some(if k == 0 { 50 } else { k * 2 }))
            );
        }
        assert!(store.is_empty());
    }

    #[test]
    fn routing_is_stable_and_total() {
        let (schemes, cfg) = ebr_store(5);
        let store = KvStore::new(&schemes, cfg);
        let mut seen = vec![0usize; 5];
        for k in -1000..1000 {
            let s = store.shard_of(k);
            assert_eq!(s, store.shard_of(k), "routing must be deterministic");
            seen[s] += 1;
        }
        for (i, &n) in seen.iter().enumerate() {
            assert!(n > 100, "shard {i} starved: {seen:?}");
        }
    }

    #[test]
    fn works_generically_over_schemes() {
        let schemes: Vec<Hp> = (0..2).map(|_| Hp::new(4, 3)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        assert_eq!(store.put(&mut ctx, 1, 10), Ok(None));
        assert_eq!(store.get(&mut ctx, 1), Some(10));

        let schemes: Vec<Qsbr> = (0..2).map(|_| Qsbr::new(4)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        assert_eq!(store.put(&mut ctx, 1, 10), Ok(None));
        assert_eq!(store.remove(&mut ctx, 1), Ok(Some(10)));
        // The facade's quiescent_point calls keep QSBR draining without
        // the caller ever seeing the scheme-specific API.
        for _ in 0..4 {
            let _ = store.get(&mut ctx, 1);
        }
        assert_eq!(store.stats().retired_now, 0, "{}", store.stats());
    }

    #[test]
    fn admission_control_rejects_when_degraded() {
        let schemes: Vec<Ebr> = vec![Ebr::new(4)];
        let cfg = KvConfig {
            retired_soft: 0, // every tick classifies the shard Degrading
            admission_depth: 0,
            ..KvConfig::default()
        };
        let store = KvStore::new(&schemes, cfg);
        let mut ctx = store.register().unwrap();
        assert_eq!(store.put(&mut ctx, 1, 1), Ok(None), "robust: admitted");
        store.navigator_tick();
        assert_eq!(store.health(0), ShardHealth::Degrading);
        assert_eq!(
            store.put(&mut ctx, 1, 2),
            Err(KvError::Overloaded { shard: 0 })
        );
        assert_eq!(
            store.remove(&mut ctx, 1),
            Err(KvError::Overloaded { shard: 0 })
        );
        assert_eq!(store.get(&mut ctx, 1), Some(1), "reads are never shed");
        let (_, _, sheds) = store.nav_counters();
        assert_eq!(sheds, 2);
        assert_eq!(
            KvError::Overloaded { shard: 0 }.to_string(),
            "shard 0 is overloaded (admission control)"
        );
    }

    #[test]
    fn put_batch_matches_put_semantics_and_order() {
        let (schemes, cfg) = ebr_store(4);
        let store = KvStore::new(&schemes, cfg);
        let mut ctx = store.register().unwrap();
        // Duplicate keys in one batch must apply in batch order.
        let items: Vec<(i64, i64)> = (0..64)
            .map(|i| (i % 16, i * 10))
            .chain(std::iter::once((3, 777)))
            .collect();
        let results = store.put_batch(&mut ctx, &items);
        assert_eq!(results.len(), items.len());
        // First write of each key sees None; later ones the prior value.
        assert_eq!(results[0], Ok(None));
        assert_eq!(results[16], Ok(Some(0)), "second round sees first value");
        assert_eq!(store.get(&mut ctx, 3), Some(777), "last write wins");
        for k in 0..16 {
            assert!(store.get(&mut ctx, k).is_some());
        }
        assert!(store.put_batch(&mut ctx, &[]).is_empty());
    }

    #[test]
    fn put_batch_sheds_whole_group_when_quarantined() {
        let schemes: Vec<Ebr> = (0..2).map(|_| Ebr::new(4)).collect();
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        // Find one key per shard.
        let k0 = (0..).find(|&k| store.shard_of(k) == 0).unwrap();
        let k1 = (0..).find(|&k| store.shard_of(k) == 1).unwrap();
        store.quarantine(0);
        let results = store.put_batch(&mut ctx, &[(k0, 1), (k1, 2), (k0, 3)]);
        assert_eq!(results[0], Err(KvError::Overloaded { shard: 0 }));
        assert_eq!(results[2], Err(KvError::Overloaded { shard: 0 }));
        assert_eq!(results[1], Ok(None), "healthy shard still admits");
        assert_eq!(store.get(&mut ctx, k1), Some(2));
        assert_eq!(store.get(&mut ctx, k0), None);
    }

    #[test]
    fn register_releases_slots_on_failure() {
        // Shard 1 has capacity 1: the second register must fail and
        // release the slot it took on shard 0.
        let schemes = vec![Ebr::new(4), Ebr::new(1)];
        let store = KvStore::new(&schemes, KvConfig::default());
        let first = store.register().unwrap();
        assert!(store.register().is_err());
        drop(first);
        assert!(store.register().is_ok());
    }

    #[test]
    fn failed_registers_never_erode_shard_capacity() {
        // Each failed register acquires a shard-0 slot before failing at
        // shard 1; if any attempt leaked it, shard 0 would not have all
        // three of its slots free afterwards. (The single-failure test
        // above cannot see a leak of fewer slots than shard 0's spare
        // capacity — this one drains shard 0 to exactly its capacity.)
        let schemes = vec![Ebr::new(3), Ebr::new(1)];
        let store = KvStore::new(&schemes, KvConfig::default());
        let first = store.register().unwrap();
        for _ in 0..5 {
            assert!(store.register().is_err(), "shard 1 is full");
        }
        drop(first);
        // All shard-0 slots must be free again: claim every one of them
        // directly from the scheme.
        let direct: Vec<_> = (0..3).map(|_| schemes[0].register().unwrap()).collect();
        drop(direct);
        assert!(store.register().is_ok());
    }

    #[test]
    fn quarantine_blocks_writes_serves_reads_and_recovers() {
        let schemes: Vec<Ebr> = vec![Ebr::new(4)];
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        assert_eq!(store.put(&mut ctx, 1, 10), Ok(None));

        store.quarantine(0);
        assert_eq!(store.health(0), ShardHealth::Quarantined);
        assert_eq!(
            store.put(&mut ctx, 1, 11),
            Err(KvError::Overloaded { shard: 0 })
        );
        assert_eq!(store.get(&mut ctx, 1), Some(10), "reads still served");
        // Quarantining an already-quarantined shard is idempotent (no
        // double transition).
        let (transitions, _, _) = store.nav_counters();
        store.quarantine(0);
        assert_eq!(store.nav_counters().0, transitions);

        // Footprint is already below soft/2: the next tick re-opens.
        store.navigator_tick();
        assert_eq!(store.health(0), ShardHealth::Robust);
        assert_eq!(store.put(&mut ctx, 1, 11), Ok(Some(10)));
    }

    #[test]
    fn heal_swaps_context_and_adopts_orphans() {
        // Capacity 3: the store context, the doomed direct context, and
        // the spare slot heal() needs for its acquire-before-release.
        let schemes: Vec<Ebr> = vec![Ebr::with_threshold(3, 1)];
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();

        // A directly-registered context dies pinned with garbage.
        let smr = store.scheme(0);
        let mut doomed = smr.register().unwrap();
        era_smr::Smr::begin_op(smr, &mut doomed);
        for k in 0..8 {
            store.put(&mut ctx, k, k).unwrap();
            store.remove(&mut ctx, k).unwrap();
        }
        drop(doomed); // dies pinned: garbage orphaned, slot released

        store.quarantine(0);
        store.heal(&mut ctx, 0).expect("spare slot available");
        assert!(
            store.drain(&mut ctx, 32),
            "orphans must drain after heal: {}",
            store.stats()
        );
        assert_eq!(store.health(0), ShardHealth::Robust);
        assert_eq!(store.put(&mut ctx, 1, 1), Ok(None));
    }

    #[test]
    fn heal_without_spare_slot_fails_but_keeps_old_context() {
        let schemes: Vec<Ebr> = vec![Ebr::new(1)]; // no spare slot
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        assert!(store.heal(&mut ctx, 0).is_err());
        // The old context survived the failed heal and still works.
        assert_eq!(store.put(&mut ctx, 1, 1), Ok(None));
        assert_eq!(store.get(&mut ctx, 1), Some(1));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn put_with_retry_succeeds_once_pressure_drains() {
        let schemes: Vec<Ebr> = vec![Ebr::with_threshold(4, 1)];
        let cfg = KvConfig {
            retired_soft: 4,
            retired_hard: 1 << 20, // stay out of Violating
            admission_depth: 0,    // degraded shard rejects every write
            ..KvConfig::default()
        };
        let store = KvStore::new(&schemes, cfg);
        let mut ctx = store.register().unwrap();
        // A pinned reader holds the garbage up so the tick sees it.
        let smr = store.scheme(0);
        let mut pin = smr.register().unwrap();
        era_smr::Smr::begin_op(smr, &mut pin);
        for k in 0..16 {
            store.put(&mut ctx, k, k).unwrap();
            store.remove(&mut ctx, k).unwrap();
        }
        store.navigator_tick();
        assert_eq!(store.health(0), ShardHealth::Degrading);
        era_smr::Smr::end_op(smr, &mut pin);

        // Retrying flushes between attempts, draining the backlog; the
        // navigator tick here plays the watchdog that re-opens admission.
        let policy = RetryPolicy::default();
        let deadline = policy.deadline;
        let t0 = std::time::Instant::now();
        let mut out = store.put_with_retry(&mut ctx, 1, 99, policy);
        for _ in 0..4 {
            if out.is_ok() {
                break;
            }
            store.navigator_tick();
            out = store.put_with_retry(&mut ctx, 1, 99, RetryPolicy::default());
        }
        assert!(out.is_ok(), "write must land once pressure drains: {out:?}");
        assert!(
            t0.elapsed() < deadline * 16,
            "retry loop must stay within bounded deadlines"
        );
        assert_eq!(store.get(&mut ctx, 1), Some(99));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "spawns OS threads / reads wall-clock; run natively (EXPERIMENTS E11)"
    )]
    fn put_with_retry_times_out_with_typed_error() {
        let schemes: Vec<Ebr> = vec![Ebr::new(4)];
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        store.quarantine(0); // nothing retires, so quarantine is sticky
                             // until a navigator tick — which we never run.
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: std::time::Duration::from_micros(10),
            max_backoff: std::time::Duration::from_micros(80),
            deadline: std::time::Duration::from_millis(5),
            jitter: true,
        };
        let t0 = std::time::Instant::now();
        let out = store.put_with_retry(&mut ctx, 1, 1, policy);
        assert_eq!(out, Err(KvError::DeadlineExceeded { shard: 0 }));
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(1),
            "must fail fast, not hang"
        );
        assert_eq!(
            KvError::DeadlineExceeded { shard: 0 }.to_string(),
            "shard 0 stayed overloaded past the op deadline"
        );
    }

    #[test]
    fn jittered_backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy::default();
        let fixed = RetryPolicy {
            jitter: false,
            ..policy
        };
        let mut total = Duration::ZERO;
        let mut fixed_total = Duration::ZERO;
        for attempt in 0..policy.max_attempts {
            let nominal = fixed.backoff_for(attempt, 0);
            let jittered = policy.backoff_for(attempt, 0xDEAD_BEEF);
            // Equal-jitter: every step lives in [nominal/2, nominal], so
            // jitter can only shorten a schedule, never lengthen it.
            assert!(
                jittered <= nominal,
                "attempt {attempt}: {jittered:?} > {nominal:?}"
            );
            assert!(
                jittered >= nominal / 2,
                "attempt {attempt}: {jittered:?} < half of {nominal:?}"
            );
            assert_eq!(
                jittered,
                policy.backoff_for(attempt, 0xDEAD_BEEF),
                "same (attempt, salt) must give the same wait"
            );
            total += jittered;
            fixed_total += nominal;
        }
        // The total-deadline bound: the whole jittered schedule is no
        // longer than the fixed one, which is itself capped per step.
        assert!(total <= fixed_total);
        assert!(fixed_total <= policy.max_backoff * policy.max_attempts);
        // Different salts actually decorrelate (not a constant offset).
        let spread: std::collections::HashSet<Duration> =
            (0..64).map(|salt| policy.backoff_for(6, salt)).collect();
        assert!(
            spread.len() > 8,
            "jitter degenerated: {} values",
            spread.len()
        );
        // The exponential curve saturates at the ceiling, jitter or not.
        assert_eq!(
            fixed.backoff_for(63, 0),
            policy.max_backoff.max(policy.base_backoff)
        );
    }

    #[test]
    fn set_budgets_redirects_the_navigator_live() {
        let schemes: Vec<Ebr> = vec![Ebr::with_threshold(4, 1)];
        let store = KvStore::new(&schemes, KvConfig::default());
        assert_eq!(store.budgets(), (512, 2048));
        let mut ctx = store.register().unwrap();
        // Churn with a pinned reader: ~16 retired nodes held up.
        let smr = store.scheme(0);
        let mut pin = smr.register().unwrap();
        era_smr::Smr::begin_op(smr, &mut pin);
        for k in 0..16 {
            store.put(&mut ctx, k, k).unwrap();
            store.remove(&mut ctx, k).unwrap();
        }
        store.navigator_tick();
        assert_eq!(
            store.health(0),
            ShardHealth::Robust,
            "default budgets absorb it"
        );
        // Tighten mid-run: the very next tick reclassifies.
        store.set_budgets(4, 8);
        store.navigator_tick();
        assert_eq!(store.health(0), ShardHealth::Violating);
        // Relax again: footprint is now far below the new soft/2.
        era_smr::Smr::end_op(smr, &mut pin);
        store.set_budgets(1 << 20, 1 << 21);
        store.navigator_tick();
        assert_eq!(store.health(0), ShardHealth::Robust);
        // hard is clamped to stay ≥ soft.
        store.set_budgets(100, 10);
        assert_eq!(store.budgets(), (100, 100));
    }

    #[test]
    fn drain_reports_failure_while_pinned_then_success() {
        let schemes: Vec<Ebr> = vec![Ebr::with_threshold(4, 1)];
        let store = KvStore::new(&schemes, KvConfig::default());
        let mut ctx = store.register().unwrap();
        let smr = store.scheme(0);
        let mut pin = smr.register().unwrap();
        era_smr::Smr::begin_op(smr, &mut pin);
        for k in 0..8 {
            store.put(&mut ctx, k, k).unwrap();
            store.remove(&mut ctx, k).unwrap();
        }
        assert!(
            !store.drain(&mut ctx, 4),
            "a live pin must keep drain from completing"
        );
        era_smr::Smr::end_op(smr, &mut pin);
        assert!(store.drain(&mut ctx, 32), "unpinned store must drain");
        assert_eq!(store.stats().retired_now, 0);
    }
}
