//! `era-view`: inspect `.eraflt` flight-recorder dumps.
//!
//! ```text
//! era-view <dump.eraflt> [MODE] [FILTERS]
//!
//! Modes (default: --summary):
//!   --summary           per-source overview: counts, scheme counters,
//!                       blame, orphan chains, violations
//!   --timeline          merged per-source event timeline
//!   --chain <ADDR|auto> life-cycle chain for one node address (hex ok),
//!                       or every full retire→orphaned→adopt→reclaim
//!                       chain with `auto`
//!   --blame             per-thread blocked-reclamation attribution
//!   --verdicts          gate on a `scenarios --report` JSONL file
//!                       instead of a dump: print the verdict table,
//!                       exit non-zero when any run failed
//!
//! Filters / options:
//!   --source LABEL      only the source with this label
//!   --thread N          only events from thread slot N
//!   --hook NAME         only events from this hook (e.g. retire)
//!   --addr HEX          only events whose a/b payload equals this addr
//!   --limit N           cap timeline output at N events (default 200)
//!   --bound N           retired-footprint bound robust schemes are
//!                       held to (enables Def-4.2 footprint checks)
//! ```

use std::process::ExitCode;

use era_obs::dump::FlightDump;
use era_view::{find_violations, orphan_chain_addrs, render_event, Filter, NodeChain};

enum Mode {
    Summary,
    Timeline,
    Chain(ChainTarget),
    Blame,
    Verdicts,
}

enum ChainTarget {
    Addr(u64),
    Auto,
}

struct Options {
    path: String,
    mode: Mode,
    filter: Filter,
    source: Option<String>,
    limit: usize,
    bound: Option<u64>,
}

fn usage() -> &'static str {
    "usage: era-view <dump.eraflt|report.jsonl> \
     [--summary|--timeline|--chain <addr|auto>|--blame|--verdicts] \
     [--source LABEL] [--thread N] [--hook NAME] [--addr HEX] [--limit N] [--bound N]"
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("not a number: `{s}`"))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut mode = None;
    let mut filter = Filter::default();
    let mut source = None;
    let mut limit = 200usize;
    let mut bound = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--summary" => mode = Some(Mode::Summary),
            "--timeline" => mode = Some(Mode::Timeline),
            "--blame" => mode = Some(Mode::Blame),
            "--verdicts" => mode = Some(Mode::Verdicts),
            "--chain" => {
                let target = value("--chain")?;
                mode = Some(Mode::Chain(if target == "auto" {
                    ChainTarget::Auto
                } else {
                    ChainTarget::Addr(parse_u64(&target)?)
                }));
            }
            "--source" => source = Some(value("--source")?),
            "--thread" => {
                filter.thread = Some(
                    parse_u64(&value("--thread")?)?
                        .try_into()
                        .map_err(|_| "--thread out of u16 range".to_string())?,
                )
            }
            "--hook" => filter.hook = Some(value("--hook")?),
            "--addr" => filter.addr = Some(parse_u64(&value("--addr")?)?),
            "--limit" => limit = parse_u64(&value("--limit")?)? as usize,
            "--bound" => bound = Some(parse_u64(&value("--bound")?)?),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one dump path\n{}", usage()));
                }
            }
        }
    }
    Ok(Options {
        path: path.ok_or_else(|| usage().to_string())?,
        mode: mode.unwrap_or(Mode::Summary),
        filter,
        source,
        limit,
        bound,
    })
}

fn run(opts: &Options) -> Result<(), String> {
    // Verdict gating reads a scenarios report (JSON lines), not a
    // flight dump — branch before any .eraflt decoding.
    if let Mode::Verdicts = opts.mode {
        let text = std::fs::read_to_string(&opts.path)
            .map_err(|e| format!("cannot read `{}`: {e}", opts.path))?;
        let rows =
            era_view::scenario_verdicts(&text).map_err(|e| format!("`{}`: {e}", opts.path))?;
        print!("{}", era_view::render_verdicts(&rows));
        if rows.iter().any(|r| !r.pass) {
            return Err("scenario report records failing verdicts (see table above)".to_string());
        }
        return Ok(());
    }

    let bytes =
        std::fs::read(&opts.path).map_err(|e| format!("cannot read `{}`: {e}", opts.path))?;
    let dump = FlightDump::decode(&bytes)
        .map_err(|e| format!("`{}` is not a readable .eraflt dump: {e}", opts.path))?;

    let sources: Vec<_> = dump
        .sources
        .iter()
        .filter(|s| opts.source.as_ref().is_none_or(|want| &s.label == want))
        .collect();
    if sources.is_empty() {
        return Err(match &opts.source {
            Some(label) => format!(
                "no source labelled `{label}` (have: {})",
                dump.sources
                    .iter()
                    .map(|s| s.label.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            None => "dump contains no sources".to_string(),
        });
    }

    match &opts.mode {
        Mode::Summary => {
            if opts.source.is_some() {
                let mut scoped = FlightDump::new();
                scoped.version = dump.version;
                scoped.wall_unix_ms = dump.wall_unix_ms;
                scoped.window_ms = dump.window_ms;
                scoped.sources = sources.into_iter().cloned().collect();
                print!("{}", era_view::summarize(&scoped, opts.bound));
            } else {
                print!("{}", era_view::summarize(&dump, opts.bound));
            }
        }
        Mode::Timeline => {
            for source in sources {
                println!("== source `{}` ==", source.label);
                let mut shown = 0usize;
                let mut matched = 0usize;
                for e in opts.filter.apply(source) {
                    matched += 1;
                    if shown < opts.limit {
                        println!("{}", render_event(e));
                        shown += 1;
                    }
                }
                if matched > shown {
                    println!("… {} more event(s) (raise --limit)", matched - shown);
                }
                if matched == 0 {
                    println!("(no events match the filter)");
                }
                let health = era_view::render_health_timeline(source);
                if !health.is_empty() {
                    println!("-- shard health --");
                    print!("{health}");
                }
            }
        }
        Mode::Chain(target) => {
            for source in sources {
                println!("== source `{}` ==", source.label);
                let addrs = match target {
                    ChainTarget::Addr(a) => vec![*a],
                    ChainTarget::Auto => {
                        let found = orphan_chain_addrs(source);
                        if found.is_empty() {
                            println!("(no complete retire→orphaned→adopt→reclaim chains)");
                        }
                        found
                    }
                };
                for addr in addrs.iter().take(opts.limit.max(1)) {
                    print!("{}", NodeChain::for_addr(source, *addr).render());
                }
                if addrs.len() > opts.limit.max(1) {
                    println!(
                        "… {} more chain(s) (raise --limit)",
                        addrs.len() - opts.limit
                    );
                }
            }
        }
        Mode::Verdicts => unreachable!("handled before dump decoding"),
        Mode::Blame => {
            for source in sources {
                println!("== source `{}` ==", source.label);
                match &source.metrics {
                    Some(metrics) => {
                        let mut rows: Vec<(usize, u64)> = metrics
                            .blame
                            .iter()
                            .enumerate()
                            .filter(|(_, &c)| c > 0)
                            .map(|(t, &c)| (t, c))
                            .collect();
                        if rows.is_empty() {
                            println!("no blocked reclamation recorded");
                            continue;
                        }
                        rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
                        let total: u64 = rows.iter().map(|&(_, c)| c).sum();
                        for (t, c) in rows {
                            println!(
                                "thread {t:>3}: blamed for {c} blocked reclamation attempt(s) ({:.1}%)",
                                100.0 * c as f64 / total as f64
                            );
                        }
                    }
                    None => println!("dump carries no metrics for this source"),
                }
            }
        }
    }

    // Exit non-zero when the dump records genuine safety problems, so
    // CI can gate on `era-view`'s verdict (truncation alone does not
    // fail the run — lossy rings are expected under load).
    let hard_violation = sources_have_hard_violations(&dump, opts);
    if hard_violation {
        return Err("dump records Def-4.2 violations (see report above)".to_string());
    }
    Ok(())
}

fn sources_have_hard_violations(dump: &FlightDump, opts: &Options) -> bool {
    dump.sources
        .iter()
        .filter(|s| opts.source.as_ref().is_none_or(|want| &s.label == want))
        .flat_map(|s| find_violations(s, opts.bound))
        .any(|v| {
            matches!(
                v,
                era_view::Violation::OracleUnsafeAccess { .. }
                    | era_view::Violation::FootprintBoundExceeded { .. }
            )
        })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("era-view: {msg}");
            ExitCode::FAILURE
        }
    }
}
