//! # era-view: post-mortem analysis of `.eraflt` flight dumps
//!
//! The library behind the `era-view` CLI. Given a decoded
//! [`FlightDump`] (written by `era_obs::flight::FlightRecorder` on a
//! panic, an injected fault, or an explicit snapshot), it reconstructs
//! what a debugger of a reclamation bug actually needs:
//!
//! - the **merged cross-thread timeline** of each source, filterable
//!   by thread, hook, and payload address;
//! - the **per-node life-cycle chain** — retire→reclaim, or
//!   retire→*orphaned*→adopt→reclaim when the retiring context died
//!   mid-pin (the pointer-life-cycle view of Meyer & Wolff applied to
//!   trace data);
//! - a **summary** with honest truncation accounting (ring drops +
//!   window trims), per-hook counts, scheme counters, and blame
//!   attribution;
//! - **Definition-4.2-style violation flags**: oracle-recorded unsafe
//!   accesses, plus retired-footprint excursions beyond a per-scheme
//!   robustness bound for schemes the ERA matrix classifies as robust.
//!
//! Timestamps are logical and per-source (each recorder owns its own
//! clock), so all reconstruction is done within a source; sources are
//! presented side by side, never interleaved.

use era_obs::dump::{FlightDump, SourceDump};
use era_obs::{Event, Hook, SchemeId};

/// Renders one event as a human-readable timeline line (tolerating
/// hook/scheme bytes outside this build's vocabulary — dumps are
/// self-describing, old readers must not crash on new writers).
pub fn render_event(e: &Event) -> String {
    let hook = hook_label(e.hook);
    let scheme = SchemeId(e.scheme);
    match Hook::from_u8(e.hook) {
        Some(Hook::Retire) => format!(
            "[{:>8}] t{:<3} {:<5} retire   node={:#x} retired_now={}",
            e.ts,
            e.thread,
            scheme.name(),
            e.a,
            e.b
        ),
        Some(Hook::Reclaim) => format!(
            "[{:>8}] t{:<3} {:<5} reclaim  node={:#x} latency={}",
            e.ts,
            e.thread,
            scheme.name(),
            e.a,
            e.b
        ),
        Some(Hook::Adopt) => format!(
            "[{:>8}] t{:<3} {:<5} adopt    orphans={} retired_now={}",
            e.ts,
            e.thread,
            scheme.name(),
            e.a,
            e.b
        ),
        Some(Hook::Fault) => format!(
            "[{:>8}] t{:<3} {:<5} fault    kind={} at_op={}",
            e.ts,
            e.thread,
            scheme.name(),
            fault_kind_name(e.a),
            e.b
        ),
        Some(Hook::Navigate) => format!(
            "[{:>8}] t{:<3} {:<5} navigate shard={} {}→{}",
            e.ts,
            e.thread,
            scheme.name(),
            e.a,
            health_state_name(e.b >> 8),
            health_state_name(e.b & 0xff)
        ),
        Some(Hook::Shed) if e.a == u64::MAX => format!(
            "[{:>8}] t{:<3} {:<5} shed     conn={} (accept queue full, connection dropped)",
            e.ts,
            e.thread,
            scheme.name(),
            e.b
        ),
        Some(Hook::Shed) => format!(
            "[{:>8}] t{:<3} {:<5} shed     shard={} sheds_so_far={}",
            e.ts,
            e.thread,
            scheme.name(),
            e.a,
            e.b
        ),
        Some(Hook::Accept) => format!(
            "[{:>8}] t{:<3} {:<5} accept   conn={} queue={}",
            e.ts,
            e.thread,
            scheme.name(),
            e.a,
            e.b
        ),
        _ => format!(
            "[{:>8}] t{:<3} {:<5} {:<8} a={:#x} b={}",
            e.ts,
            e.thread,
            scheme.name(),
            hook,
            e.a,
            e.b
        ),
    }
}

fn hook_label(raw: u8) -> String {
    match Hook::from_u8(raw) {
        Some(h) => h.name().to_string(),
        None => format!("hook#{raw}"),
    }
}

/// Names the chaos fault-kind discriminant carried by `Hook::Fault`
/// events (mirrors `era_chaos::FaultAction::kind`, re-declared because
/// era-view depends only on era-obs).
pub fn fault_kind_name(kind: u64) -> &'static str {
    match kind {
        0 => "die-pinned",
        1 => "stall",
        2 => "delay-flush",
        3 => "fail-register",
        4 => "exhaust-slots",
        5 => "restart-storm",
        _ => "unknown",
    }
}

/// Names a `ShardHealth` discriminant carried by `Hook::Navigate`
/// payloads (re-declared because era-view depends only on era-obs).
pub fn health_state_name(raw: u64) -> &'static str {
    match raw {
        0 => "Robust",
        1 => "Degrading",
        2 => "Violating",
        3 => "Quarantined",
        _ => "?",
    }
}

/// A contiguous interval one shard spent in one health class,
/// reconstructed from the source's `Hook::Navigate` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSpan {
    /// Shard index (`Navigate`'s `a` payload).
    pub shard: u64,
    /// Health-class discriminant (see [`health_state_name`]).
    pub state: u64,
    /// Logical timestamp the shard entered this class. The first span
    /// of a shard starts at 0: navigator ticks only emit `Navigate` on
    /// a *transition*, so the pre-transition class ran from the start
    /// of the trace.
    pub from_ts: u64,
    /// Timestamp of the transition out, or `None` while still open at
    /// the end of the dump.
    pub to_ts: Option<u64>,
}

impl HealthSpan {
    /// Renders the span for the health timeline, e.g.
    /// `Violating [120..180)`.
    pub fn render(&self) -> String {
        match self.to_ts {
            Some(to) => format!(
                "{} [{}..{})",
                health_state_name(self.state),
                self.from_ts,
                to
            ),
            None => format!("{} [{}..end]", health_state_name(self.state), self.from_ts),
        }
    }
}

/// Reconstructs per-shard health history from `Hook::Navigate` events
/// (`a` = shard, `b` = `old << 8 | new`). Spans are returned grouped
/// by shard, each shard's spans in ascending time; the first span of a
/// shard is synthesized from the first transition's `old` state, and
/// the last span of each shard is open (`to_ts == None`).
pub fn health_spans(source: &SourceDump) -> Vec<HealthSpan> {
    // shard → index of its currently-open span in `spans`.
    let mut open: Vec<(u64, usize)> = Vec::new();
    let mut spans: Vec<HealthSpan> = Vec::new();
    for e in &source.events {
        if Hook::from_u8(e.hook) != Some(Hook::Navigate) {
            continue;
        }
        let (shard, old, new) = (e.a, e.b >> 8, e.b & 0xff);
        match open.iter_mut().find(|(s, _)| *s == shard) {
            Some((_, idx)) => {
                spans[*idx].to_ts = Some(e.ts);
                spans.push(HealthSpan {
                    shard,
                    state: new,
                    from_ts: e.ts,
                    to_ts: None,
                });
                *idx = spans.len() - 1;
            }
            None => {
                // First transition seen for this shard: the `old`
                // class was in force since the start of the trace.
                spans.push(HealthSpan {
                    shard,
                    state: old,
                    from_ts: 0,
                    to_ts: Some(e.ts),
                });
                spans.push(HealthSpan {
                    shard,
                    state: new,
                    from_ts: e.ts,
                    to_ts: None,
                });
                open.push((shard, spans.len() - 1));
            }
        }
    }
    spans.sort_by_key(|s| (s.shard, s.from_ts));
    spans
}

/// Renders the per-shard health timeline of a source — one line per
/// shard that ever transitioned, e.g.
/// `shard 0: Robust [0..40) → Violating [40..210) → Robust [210..end]`.
/// Returns an empty string when the source has no `Navigate` events.
pub fn render_health_timeline(source: &SourceDump) -> String {
    let spans = health_spans(source);
    let mut out = String::new();
    let mut shard = None;
    for span in &spans {
        if shard != Some(span.shard) {
            if shard.is_some() {
                out.push('\n');
            }
            out.push_str(&format!("shard {}: {}", span.shard, span.render()));
            shard = Some(span.shard);
        } else {
            out.push_str(&format!(" → {}", span.render()));
        }
    }
    if !spans.is_empty() {
        out.push('\n');
    }
    out
}

/// Timeline filter: all fields are conjunctive; `None` matches all.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    /// Keep only this producing thread slot.
    pub thread: Option<u16>,
    /// Keep only this hook (by stable name).
    pub hook: Option<String>,
    /// Keep only events whose `a` or `b` payload equals this address.
    pub addr: Option<u64>,
}

impl Filter {
    /// Whether `e` passes the filter.
    pub fn matches(&self, e: &Event) -> bool {
        if let Some(t) = self.thread {
            if e.thread != t {
                return false;
            }
        }
        if let Some(hook) = &self.hook {
            if hook_label(e.hook) != *hook {
                return false;
            }
        }
        if let Some(addr) = self.addr {
            if e.a != addr && e.b != addr {
                return false;
            }
        }
        true
    }

    /// Applies the filter to a source's events.
    pub fn apply<'a>(&'a self, source: &'a SourceDump) -> impl Iterator<Item = &'a Event> {
        source.events.iter().filter(move |e| self.matches(e))
    }
}

/// One link in a node's life-cycle chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainLink {
    /// The node entered the heap (simulator traces only).
    Allocated {
        /// Logical timestamp.
        ts: u64,
    },
    /// A protected load observed the node.
    Loaded {
        /// Logical timestamp.
        ts: u64,
        /// Loading thread slot.
        thread: u16,
    },
    /// The node was unlinked and handed to the scheme.
    Retired {
        /// Logical timestamp.
        ts: u64,
        /// Retiring thread slot.
        thread: u16,
        /// Retired population right after the call.
        retired_now: u64,
    },
    /// A die-pinned fault killed a context while the node was
    /// retired-but-unreclaimed: the node's custody was orphaned.
    Orphaned {
        /// Logical timestamp of the fault.
        ts: u64,
        /// Thread slot the fault event was attributed to.
        thread: u16,
    },
    /// A survivor adopted orphaned garbage (the node may be among the
    /// `orphans` adopted in this batch).
    Adopted {
        /// Logical timestamp.
        ts: u64,
        /// Adopting thread slot.
        thread: u16,
        /// Orphans absorbed in this adoption.
        orphans: u64,
    },
    /// The node was actually freed.
    Reclaimed {
        /// Logical timestamp.
        ts: u64,
        /// Reclaiming thread slot.
        thread: u16,
        /// Retire→reclaim latency in trace ticks.
        latency: u64,
    },
}

impl ChainLink {
    /// The link's logical timestamp.
    pub fn ts(&self) -> u64 {
        match *self {
            ChainLink::Allocated { ts }
            | ChainLink::Loaded { ts, .. }
            | ChainLink::Retired { ts, .. }
            | ChainLink::Orphaned { ts, .. }
            | ChainLink::Adopted { ts, .. }
            | ChainLink::Reclaimed { ts, .. } => ts,
        }
    }

    /// Renders the link for the chain report.
    pub fn render(&self) -> String {
        match *self {
            ChainLink::Allocated { ts } => format!("[{ts:>8}] allocated"),
            ChainLink::Loaded { ts, thread } => {
                format!("[{ts:>8}] loaded under protection by t{thread}")
            }
            ChainLink::Retired {
                ts,
                thread,
                retired_now,
            } => format!("[{ts:>8}] retired by t{thread} (retired_now={retired_now})"),
            ChainLink::Orphaned { ts, thread } => format!(
                "[{ts:>8}] ORPHANED: die-pinned fault killed a context (t{thread}) while the node was unreclaimed"
            ),
            ChainLink::Adopted {
                ts,
                thread,
                orphans,
            } => format!("[{ts:>8}] adopted by t{thread} (batch of {orphans} orphans)"),
            ChainLink::Reclaimed {
                ts,
                thread,
                latency,
            } => format!("[{ts:>8}] reclaimed by t{thread} (retire→reclaim latency {latency} ticks)"),
        }
    }
}

/// The reconstructed life cycle of one node address within a source.
#[derive(Debug, Clone)]
pub struct NodeChain {
    /// The node address the chain is about.
    pub addr: u64,
    /// Links in ascending timestamp order.
    pub links: Vec<ChainLink>,
}

impl NodeChain {
    /// Reconstructs the chain for `addr` from a source's events.
    ///
    /// Retire and Reclaim carry the address directly (`a` payload);
    /// Load carries it in `b`. Orphaning is inferred: a `Fault` event
    /// of the die-pinned kind, or an `Adopt` event, landing *between*
    /// the node's retire and its reclaim (or dump end) means the
    /// node's custody was in flight while a context died — exactly the
    /// retire→orphaned→adopt chain the adoption protocol (DESIGN
    /// §3.9) promises to close.
    pub fn for_addr(source: &SourceDump, addr: u64) -> NodeChain {
        let mut links = Vec::new();
        let mut retire_ts = None;
        let mut reclaim_ts = None;
        for e in &source.events {
            match Hook::from_u8(e.hook) {
                Some(Hook::Alloc) if e.a == addr => links.push(ChainLink::Allocated { ts: e.ts }),
                Some(Hook::Load) if e.b == addr => links.push(ChainLink::Loaded {
                    ts: e.ts,
                    thread: e.thread,
                }),
                Some(Hook::Retire) if e.a == addr => {
                    retire_ts.get_or_insert(e.ts);
                    links.push(ChainLink::Retired {
                        ts: e.ts,
                        thread: e.thread,
                        retired_now: e.b,
                    });
                }
                Some(Hook::Reclaim) if e.a == addr => {
                    reclaim_ts.get_or_insert(e.ts);
                    links.push(ChainLink::Reclaimed {
                        ts: e.ts,
                        thread: e.thread,
                        latency: e.b,
                    });
                }
                _ => {}
            }
        }
        if let Some(rt) = retire_ts {
            let window_end = reclaim_ts.unwrap_or(u64::MAX);
            for e in &source.events {
                if e.ts <= rt || e.ts >= window_end {
                    continue;
                }
                match Hook::from_u8(e.hook) {
                    Some(Hook::Fault) if e.a == 0 => links.push(ChainLink::Orphaned {
                        ts: e.ts,
                        thread: e.thread,
                    }),
                    Some(Hook::Adopt) => links.push(ChainLink::Adopted {
                        ts: e.ts,
                        thread: e.thread,
                        orphans: e.a,
                    }),
                    _ => {}
                }
            }
        }
        links.sort_by_key(|l| l.ts());
        NodeChain { addr, links }
    }

    /// Whether the chain shows the full orphan story:
    /// retire → die-pinned fault → adopt → reclaim.
    pub fn is_orphan_chain(&self) -> bool {
        let mut saw = (false, false, false, false);
        for link in &self.links {
            match link {
                ChainLink::Retired { .. } => saw.0 = true,
                ChainLink::Orphaned { .. } if saw.0 => saw.1 = true,
                ChainLink::Adopted { .. } if saw.1 => saw.2 = true,
                ChainLink::Reclaimed { .. } if saw.2 => saw.3 = true,
                _ => {}
            }
        }
        saw.3
    }

    /// Whether the node was retired but never reclaimed in the dump —
    /// either still pending at snapshot time or leaked.
    pub fn is_outstanding(&self) -> bool {
        let retired = self
            .links
            .iter()
            .any(|l| matches!(l, ChainLink::Retired { .. }));
        let reclaimed = self
            .links
            .iter()
            .any(|l| matches!(l, ChainLink::Reclaimed { .. }));
        retired && !reclaimed
    }

    /// Renders the chain as one line per link (plus a verdict).
    pub fn render(&self) -> String {
        let mut out = format!("node {:#x}:\n", self.addr);
        if self.links.is_empty() {
            out.push_str("  (no events mention this address)\n");
            return out;
        }
        for link in &self.links {
            out.push_str("  ");
            out.push_str(&link.render());
            out.push('\n');
        }
        if self.is_orphan_chain() {
            out.push_str(
                "  => full orphan chain: retired, orphaned by a context death, \
                 adopted by a survivor, reclaimed.\n",
            );
        } else if self.is_outstanding() {
            out.push_str("  => outstanding: retired but not reclaimed within the dump.\n");
        }
        out
    }
}

/// Addresses in `source` whose chains show the complete
/// retire→orphaned→adopt→reclaim story (candidates for `--chain auto`).
pub fn orphan_chain_addrs(source: &SourceDump) -> Vec<u64> {
    let mut addrs: Vec<u64> = source
        .events
        .iter()
        .filter(|e| Hook::from_u8(e.hook) == Some(Hook::Retire))
        .map(|e| e.a)
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    addrs
        .into_iter()
        .filter(|&a| NodeChain::for_addr(source, a).is_orphan_chain())
        .collect()
}

/// A flagged problem found in a source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The simulator oracle recorded a Definition-4.2 unsafe access.
    OracleUnsafeAccess {
        /// Logical timestamp.
        ts: u64,
        /// Accessed address.
        addr: u64,
    },
    /// A scheme the ERA matrix classifies as robust exceeded the given
    /// retired-footprint bound.
    FootprintBoundExceeded {
        /// The scheme.
        scheme: SchemeId,
        /// Observed retired-population high-water mark.
        observed: u64,
        /// The bound it was checked against.
        bound: u64,
    },
    /// Trace truncation: the dump is known incomplete (ring overwrite),
    /// so absence of evidence in it is not evidence of absence.
    TruncatedTrace {
        /// Events lost to ring overwrite.
        dropped: u64,
    },
}

impl Violation {
    /// Renders the violation for the summary report.
    pub fn render(&self) -> String {
        match self {
            Violation::OracleUnsafeAccess { ts, addr } => {
                format!("[{ts:>8}] Def-4.2 violation: unsafe access to {addr:#x} (oracle)")
            }
            Violation::FootprintBoundExceeded {
                scheme,
                observed,
                bound,
            } => format!(
                "footprint: {} is classified robust but retired_peak {observed} exceeds bound {bound}",
                scheme.name()
            ),
            Violation::TruncatedTrace { dropped } => format!(
                "truncated trace: {dropped} events lost to ring overwrite — this dump is incomplete"
            ),
        }
    }
}

/// Whether the ERA matrix classifies `scheme` as robust (bounded
/// retired footprint under stalled threads — DESIGN §6). EBR/QSBR are
/// the textbook non-robust schemes; Leak bounds nothing by design.
pub fn is_robust_scheme(scheme: SchemeId) -> bool {
    matches!(
        scheme,
        SchemeId::HP | SchemeId::HE | SchemeId::IBR | SchemeId::NBR | SchemeId::VBR
    )
}

/// Scans one source for violations.
///
/// `bound` is the retired-footprint budget robust schemes are held to
/// (`--bound` on the CLI); `None` skips the footprint check — the
/// bound depends on scheme parameters (slots × threads) the dump does
/// not carry, so it must come from the operator.
pub fn find_violations(source: &SourceDump, bound: Option<u64>) -> Vec<Violation> {
    let mut out = Vec::new();
    for e in &source.events {
        if Hook::from_u8(e.hook) == Some(Hook::OracleViolation) {
            out.push(Violation::OracleUnsafeAccess {
                ts: e.ts,
                addr: e.a,
            });
        }
    }
    if let Some(bound) = bound {
        // Observed peak: the scheme-reported high-water mark when the
        // dump carries stats, else the max retired-population payload
        // any Retire/Sample event recorded.
        let mut per_scheme_peak: Vec<(SchemeId, u64)> = Vec::new();
        for e in &source.events {
            let pop = match Hook::from_u8(e.hook) {
                Some(Hook::Retire) => e.b,
                Some(Hook::Sample) => e.a,
                _ => continue,
            };
            let scheme = SchemeId(e.scheme);
            match per_scheme_peak.iter_mut().find(|(s, _)| *s == scheme) {
                Some((_, peak)) => *peak = (*peak).max(pop),
                None => per_scheme_peak.push((scheme, pop)),
            }
        }
        if let Some(stats) = &source.stats {
            if let Some(scheme) = dominant_scheme(source) {
                match per_scheme_peak.iter_mut().find(|(s, _)| *s == scheme) {
                    Some((_, peak)) => *peak = (*peak).max(stats.retired_peak),
                    None => per_scheme_peak.push((scheme, stats.retired_peak)),
                }
            }
        }
        for (scheme, observed) in per_scheme_peak {
            if is_robust_scheme(scheme) && observed > bound {
                out.push(Violation::FootprintBoundExceeded {
                    scheme,
                    observed,
                    bound,
                });
            }
        }
    }
    if source.dropped > 0 {
        out.push(Violation::TruncatedTrace {
            dropped: source.dropped,
        });
    }
    out
}

/// The scheme that produced the most events in `source` (sources are
/// usually single-scheme; this resolves the label for stats checks).
pub fn dominant_scheme(source: &SourceDump) -> Option<SchemeId> {
    let mut counts: Vec<(u8, usize)> = Vec::new();
    for e in &source.events {
        match counts.iter_mut().find(|(s, _)| *s == e.scheme) {
            Some((_, n)) => *n += 1,
            None => counts.push((e.scheme, 1)),
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .map(|(s, _)| SchemeId(s))
}

/// Builds the plain-text summary of a whole dump.
pub fn summarize(dump: &FlightDump, bound: Option<u64>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "era-flight dump v{} — {} source(s), {} event(s), window {}\n",
        dump.version,
        dump.sources.len(),
        dump.event_count(),
        if dump.window_ms == 0 {
            "unbounded".to_string()
        } else {
            format!("{} ms", dump.window_ms)
        },
    ));
    if dump.wall_unix_ms > 0 {
        out.push_str(&format!(
            "captured at unix epoch +{}.{:03}s\n",
            dump.wall_unix_ms / 1000,
            dump.wall_unix_ms % 1000
        ));
    }
    let dropped = dump.total_dropped();
    let trimmed = dump.total_trimmed();
    if dropped > 0 || trimmed > 0 {
        out.push_str(&format!(
            "INCOMPLETE: {dropped} event(s) lost to ring overwrite, {trimmed} aged out of the window\n"
        ));
    } else {
        out.push_str("complete: no ring drops, no window trims\n");
    }
    for source in &dump.sources {
        out.push('\n');
        out.push_str(&summarize_source(source, bound));
    }
    out
}

fn summarize_source(source: &SourceDump, bound: Option<u64>) -> String {
    let mut out = format!(
        "source `{}`: {} event(s), {} dropped, {} trimmed\n",
        source.label,
        source.events.len(),
        source.dropped,
        source.trimmed
    );
    if let Some(stats) = &source.stats {
        out.push_str(&format!(
            "  scheme counters: retired_now={} retired_peak={} total_retired={} total_reclaimed={} era={}\n",
            stats.retired_now, stats.retired_peak, stats.total_retired, stats.total_reclaimed, stats.era
        ));
    }
    if let Some(metrics) = &source.metrics {
        let fired: Vec<String> = Hook::ALL
            .iter()
            .filter(|&&h| metrics.hook_count(h) > 0)
            .map(|&h| format!("{}={}", h.name(), metrics.hook_count(h)))
            .collect();
        if !fired.is_empty() {
            out.push_str(&format!("  hook counts: {}\n", fired.join(" ")));
        }
        let blamed: Vec<String> = metrics
            .blame
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(t, &c)| format!("t{t}×{c}"))
            .collect();
        if !blamed.is_empty() {
            out.push_str(&format!(
                "  blame (blocked reclamation): {}\n",
                blamed.join(" ")
            ));
        }
        if metrics.latency.total() > 0 {
            out.push_str(&format!(
                "  retire→reclaim latency: p50≤{} p99≤{} max≤{} ({} samples)\n",
                metrics.latency.quantile_upper_bound(0.5),
                metrics.latency.quantile_upper_bound(0.99),
                metrics.latency.quantile_upper_bound(1.0),
                metrics.latency.total()
            ));
        }
    }
    let orphans = orphan_chain_addrs(source);
    if !orphans.is_empty() {
        let shown: Vec<String> = orphans.iter().take(4).map(|a| format!("{a:#x}")).collect();
        out.push_str(&format!(
            "  orphan chains (retire→orphaned→adopt→reclaim): {} node(s), e.g. {}\n",
            orphans.len(),
            shown.join(" ")
        ));
    }
    let violations = find_violations(source, bound);
    if violations.is_empty() {
        out.push_str("  violations: none\n");
    } else {
        out.push_str(&format!("  violations ({}):\n", violations.len()));
        for v in violations.iter().take(8) {
            out.push_str(&format!("    {}\n", v.render()));
        }
        if violations.len() > 8 {
            out.push_str(&format!("    … and {} more\n", violations.len() - 8));
        }
    }
    out
}

/// One `(scenario, scheme)` row scanned out of an era-scenarios
/// campaign report (`scenarios --report out.jsonl`).
///
/// The report is JSON-lines with a top-level `"verdict":"pass"|"fail"`
/// per run; this is the record `era-view --verdicts` gates CI on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioVerdict {
    /// The scenario's name.
    pub scenario: String,
    /// `Smr::name()` of the scheme under test (e.g. `EBR`).
    pub scheme: String,
    /// Whether the run's verdict was `pass`.
    pub pass: bool,
    /// Names of the invariants that failed (empty on pass).
    pub failed: Vec<String>,
}

/// Extracts the string value of `"key":"…"` from a JSON line.
///
/// Values in scenario records are identifiers (scenario names, scheme
/// names, invariant names) which the writer never escapes, so scanning
/// to the closing quote is exact.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let at = line.find(&marker)? + marker.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Parses a campaign report into verdict rows, skipping blank lines
/// and records of other kinds.
///
/// # Errors
///
/// When no scenario record is found at all (the file is probably not a
/// `scenarios --report` output), or a scenario record is missing its
/// verdict fields.
pub fn scenario_verdicts(text: &str) -> Result<Vec<ScenarioVerdict>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() || !line.contains("\"record\":\"scenario\"") {
            continue;
        }
        let field = |key: &str| {
            json_str_field(line, key)
                .ok_or_else(|| format!("line {}: scenario record lacks \"{key}\"", i + 1))
        };
        let scenario = field("scenario")?;
        let scheme = field("scheme")?;
        let pass = match field("verdict")?.as_str() {
            "pass" => true,
            "fail" => false,
            other => return Err(format!("line {}: unknown verdict `{other}`", i + 1)),
        };
        // Failed invariants render as `{"name":"…","ok":false,…}`; walk
        // each `"ok":false` back to the `"name"` that opened its object.
        let mut failed = Vec::new();
        let mut from = 0usize;
        while let Some(rel) = line[from..].find("\"ok\":false") {
            let at = from + rel;
            if let Some(name_at) = line[..at].rfind("\"name\":\"") {
                if let Some(name) = json_str_field(&line[name_at..at], "name") {
                    failed.push(name);
                }
            }
            from = at + "\"ok\":false".len();
        }
        out.push(ScenarioVerdict {
            scenario,
            scheme,
            pass,
            failed,
        });
    }
    if out.is_empty() {
        return Err("no scenario records found (expected `scenarios --report` JSON lines)".into());
    }
    Ok(out)
}

/// Renders verdict rows as the table `era-view --verdicts` prints,
/// ending with a one-line tally.
pub fn render_verdicts(rows: &[ScenarioVerdict]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!(
            "{:4} {:24} {:5}  {}\n",
            if row.pass { "ok" } else { "FAIL" },
            row.scenario,
            row.scheme,
            if row.failed.is_empty() {
                "all invariants held".to_string()
            } else {
                format!("failed: {}", row.failed.join(", "))
            }
        ));
    }
    let failures = rows.iter().filter(|r| !r.pass).count();
    out.push_str(&format!("{} run(s), {} failure(s)\n", rows.len(), failures));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_obs::dump::DumpStats;

    fn ev(thread: u16, ts: u64, hook: Hook, a: u64, b: u64) -> Event {
        let mut e = Event::new(thread, SchemeId::EBR, hook, a, b);
        e.ts = ts;
        e
    }

    fn orphan_source() -> SourceDump {
        let mut src = SourceDump::new("EBR");
        src.events = vec![
            ev(0, 1, Hook::BeginOp, 0, 0),
            ev(0, 2, Hook::Retire, 0x1000, 1),
            ev(1, 3, Hook::Load, 0, 0x1000),
            ev(2, 4, Hook::Fault, 0, 9),
            ev(1, 5, Hook::Adopt, 3, 4),
            ev(1, 6, Hook::Reclaim, 0x1000, 4),
            ev(0, 7, Hook::Retire, 0x2000, 1),
        ];
        src
    }

    #[test]
    fn orphan_chain_is_reconstructed_in_order() {
        let src = orphan_source();
        let chain = NodeChain::for_addr(&src, 0x1000);
        assert!(chain.is_orphan_chain());
        assert!(!chain.is_outstanding());
        let kinds: Vec<&str> = chain
            .links
            .iter()
            .map(|l| match l {
                ChainLink::Allocated { .. } => "alloc",
                ChainLink::Loaded { .. } => "load",
                ChainLink::Retired { .. } => "retire",
                ChainLink::Orphaned { .. } => "orphan",
                ChainLink::Adopted { .. } => "adopt",
                ChainLink::Reclaimed { .. } => "reclaim",
            })
            .collect();
        assert_eq!(kinds, vec!["retire", "load", "orphan", "adopt", "reclaim"]);
        assert_eq!(orphan_chain_addrs(&src), vec![0x1000]);
        let rendered = chain.render();
        assert!(rendered.contains("ORPHANED"));
        assert!(rendered.contains("full orphan chain"));
    }

    #[test]
    fn outstanding_node_is_flagged() {
        let src = orphan_source();
        let chain = NodeChain::for_addr(&src, 0x2000);
        assert!(chain.is_outstanding());
        assert!(!chain.is_orphan_chain());
        assert!(chain.render().contains("outstanding"));
    }

    #[test]
    fn filters_compose() {
        let src = orphan_source();
        let f = Filter {
            thread: Some(1),
            ..Filter::default()
        };
        assert_eq!(f.apply(&src).count(), 3);
        let f = Filter {
            addr: Some(0x1000),
            ..Filter::default()
        };
        assert_eq!(f.apply(&src).count(), 3, "retire + load(b) + reclaim");
        let f = Filter {
            hook: Some("adopt".to_string()),
            thread: Some(1),
            ..Filter::default()
        };
        assert_eq!(f.apply(&src).count(), 1);
    }

    #[test]
    fn violations_flag_oracle_footprint_and_truncation() {
        let mut src = SourceDump::new("HP");
        let mk = |ts, hook, a, b| {
            let mut e = Event::new(0, SchemeId::HP, hook, a, b);
            e.ts = ts;
            e
        };
        src.events = vec![
            mk(1, Hook::Retire, 0x10, 500),
            mk(2, Hook::OracleViolation, 0xbad, 1),
        ];
        src.dropped = 3;
        src.stats = Some(DumpStats {
            retired_peak: 900,
            ..DumpStats::default()
        });
        let v = find_violations(&src, Some(256));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::OracleUnsafeAccess { addr: 0xbad, .. })));
        assert!(v.iter().any(|v| matches!(
            v,
            Violation::FootprintBoundExceeded {
                observed: 900,
                bound: 256,
                ..
            }
        )));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::TruncatedTrace { dropped: 3 })));

        // EBR (non-robust) exceeding the same bound is NOT a violation:
        // unbounded growth is the trade-off it declared.
        let mut ebr = SourceDump::new("EBR");
        ebr.events = vec![ev(0, 1, Hook::Retire, 0x10, 5000)];
        assert!(find_violations(&ebr, Some(256)).is_empty());
    }

    #[test]
    fn health_spans_reconstruct_per_shard_history() {
        let mut src = SourceDump::new("net");
        // shard 0: Robust→Degrading at 10, Degrading→Violating at 20,
        // Violating→Robust at 50; shard 1: Robust→Degrading at 30.
        src.events = vec![
            ev(9, 10, Hook::Navigate, 0, 1),
            ev(9, 20, Hook::Navigate, 0, (1 << 8) | 2),
            ev(9, 30, Hook::Navigate, 1, 1),
            ev(9, 50, Hook::Navigate, 0, 2 << 8),
        ];
        let spans = health_spans(&src);
        assert_eq!(
            spans,
            vec![
                HealthSpan {
                    shard: 0,
                    state: 0,
                    from_ts: 0,
                    to_ts: Some(10)
                },
                HealthSpan {
                    shard: 0,
                    state: 1,
                    from_ts: 10,
                    to_ts: Some(20)
                },
                HealthSpan {
                    shard: 0,
                    state: 2,
                    from_ts: 20,
                    to_ts: Some(50)
                },
                HealthSpan {
                    shard: 0,
                    state: 0,
                    from_ts: 50,
                    to_ts: None
                },
                HealthSpan {
                    shard: 1,
                    state: 0,
                    from_ts: 0,
                    to_ts: Some(30)
                },
                HealthSpan {
                    shard: 1,
                    state: 1,
                    from_ts: 30,
                    to_ts: None
                },
            ]
        );
        let text = render_health_timeline(&src);
        assert_eq!(
            text,
            "shard 0: Robust [0..10) → Degrading [10..20) → Violating [20..50) → Robust [50..end]\n\
             shard 1: Robust [0..30) → Degrading [30..end]\n"
        );
        // A source without Navigate events renders nothing.
        assert_eq!(render_health_timeline(&orphan_source()), "");
    }

    #[test]
    fn serving_events_render_with_dedicated_arms() {
        let shed = render_event(&ev(3, 7, Hook::Shed, 2, 41));
        assert!(shed.contains("shed"), "{shed}");
        assert!(shed.contains("shard=2"), "{shed}");
        assert!(shed.contains("sheds_so_far=41"), "{shed}");
        let dropped = render_event(&ev(3, 8, Hook::Shed, u64::MAX, 9));
        assert!(dropped.contains("accept queue full"), "{dropped}");
        assert!(dropped.contains("conn=9"), "{dropped}");
        let accept = render_event(&ev(3, 9, Hook::Accept, 12, 1));
        assert!(accept.contains("accept"), "{accept}");
        assert!(accept.contains("conn=12"), "{accept}");
        assert!(accept.contains("queue=1"), "{accept}");
    }

    #[test]
    fn summary_mentions_incompleteness_and_orphans() {
        let mut dump = FlightDump::new();
        let mut src = orphan_source();
        src.dropped = 2;
        dump.sources.push(src);
        let text = summarize(&dump, None);
        assert!(text.contains("INCOMPLETE"));
        assert!(text.contains("orphan chains"));
        assert!(text.contains("0x1000"));
        assert!(text.contains("truncated trace"));
    }

    #[test]
    fn scenario_verdicts_scans_pass_and_fail_lines() {
        // Shaped like `scenarios --report` output: top-level verdict
        // plus an invariants array; the embedded spec's own "name"
        // keys must not confuse the failed-invariant scan.
        let report = concat!(
            r#"{"record":"scenario","scenario":"phase-shift","scheme":"EBR","verdict":"pass","#,
            r#""invariants":[{"name":"recovers-after-drain","ok":true,"observed":0,"limit":256}],"#,
            r#""spec":{"name":"phase-shift","seed":1}}"#,
            "\n",
            r#"{"record":"scenario","scenario":"stalled-reader-blowout","scheme":"HP","verdict":"fail","#,
            r#""invariants":[{"name":"bounded-footprint","ok":false,"observed":4096,"limit":2000},"#,
            r#"{"name":"healthy-at-end","ok":false,"observed":2,"limit":0}],"#,
            r#""spec":{"name":"stalled-reader-blowout","seed":2}}"#,
            "\n",
            r#"{"record":"other-kind","x":1}"#,
            "\n",
        );
        let rows = scenario_verdicts(report).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scenario, "phase-shift");
        assert_eq!(rows[0].scheme, "EBR");
        assert!(rows[0].pass);
        assert!(rows[0].failed.is_empty());
        assert!(!rows[1].pass);
        assert_eq!(rows[1].failed, vec!["bounded-footprint", "healthy-at-end"]);

        let table = render_verdicts(&rows);
        assert!(table.contains("ok   phase-shift"), "{table}");
        assert!(table.contains("FAIL stalled-reader-blowout"), "{table}");
        assert!(table.contains("failed: bounded-footprint, healthy-at-end"));
        assert!(table.contains("2 run(s), 1 failure(s)"));
    }

    #[test]
    fn scenario_verdicts_rejects_non_report_input() {
        assert!(scenario_verdicts("").is_err());
        assert!(scenario_verdicts("not json at all\n").is_err());
        // A scenario record with a mangled verdict is an error, not a
        // silent pass.
        let bad = r#"{"record":"scenario","scenario":"x","scheme":"EBR","verdict":"maybe"}"#;
        assert!(scenario_verdicts(bad).unwrap_err().contains("verdict"));
    }
}
