//! End-to-end: a synthetic fault run encoded to `.eraflt` bytes,
//! decoded back, and replayed through the era-view reconstruction —
//! the same pipeline the CLI runs on a real chaos_bench dump.

use era_obs::dump::{DumpStats, FlightDump, SourceDump};
use era_obs::{Event, Hook, SchemeId};
use era_view::{find_violations, orphan_chain_addrs, render_event, Filter, NodeChain, Violation};

fn ev(thread: u16, ts: u64, scheme: SchemeId, hook: Hook, a: u64, b: u64) -> Event {
    let mut e = Event::new(thread, scheme, hook, a, b);
    e.ts = ts;
    e
}

/// A miniature chaos run: thread 0 retires two nodes then dies pinned;
/// thread 1 adopts the orphans and reclaims them; one node stays
/// outstanding.
fn chaos_dump() -> FlightDump {
    let s = SchemeId::HE;
    let mut src = SourceDump::new("he-chaos");
    src.events = vec![
        ev(0, 10, s, Hook::BeginOp, 0, 0),
        ev(0, 11, s, Hook::Retire, 0xa000, 1),
        ev(0, 12, s, Hook::Retire, 0xb000, 2),
        ev(1, 13, s, Hook::Load, 3, 0xa000),
        // die-pinned fault kills thread 0 mid-region (a = kind 0).
        ev(0, 14, s, Hook::Fault, 0, 42),
        // thread 1 adopts the two orphans…
        ev(1, 15, s, Hook::Adopt, 2, 3),
        // …and reclaims one of them; 0xb000 stays outstanding.
        ev(1, 16, s, Hook::Reclaim, 0xa000, 5),
        ev(1, 17, s, Hook::Retire, 0xc000, 2),
    ];
    src.dropped = 0;
    src.stats = Some(DumpStats {
        retired_now: 2,
        retired_peak: 3,
        total_retired: 3,
        total_reclaimed: 1,
        era: 4,
    });
    let mut dump = FlightDump::new();
    dump.window_ms = 5000;
    dump.sources.push(src);
    dump
}

#[test]
fn encoded_dump_replays_into_an_orphan_chain() {
    let dump = chaos_dump();
    let bytes = dump.encode(true);
    let decoded = FlightDump::decode(&bytes).expect("own bytes decode");
    let src = &decoded.sources[0];
    assert_eq!(src.label, "he-chaos");
    assert_eq!(src.events.len(), 8);

    // The adopted-and-reclaimed node shows the complete story.
    let chain = NodeChain::for_addr(src, 0xa000);
    assert!(chain.is_orphan_chain(), "chain: {}", chain.render());
    let rendered = chain.render();
    assert!(rendered.contains("retired by t0"));
    assert!(rendered.contains("ORPHANED"));
    assert!(rendered.contains("adopted by t1"));
    assert!(rendered.contains("reclaimed by t1"));

    // `--chain auto` discovery finds exactly that node: 0xb000 was
    // orphaned but never reclaimed, 0xc000 was never orphaned.
    assert_eq!(orphan_chain_addrs(src), vec![0xa000]);
    assert!(NodeChain::for_addr(src, 0xb000).is_outstanding());

    // Scheme counters survived the byte roundtrip.
    let stats = src.stats.as_ref().expect("stats present");
    assert_eq!(stats.retired_peak, 3);
    assert_eq!(stats.era, 4);
}

#[test]
fn timeline_filters_and_rendering_cover_the_fault_vocabulary() {
    let dump = chaos_dump();
    let src = &dump.sources[0];

    let t1 = Filter {
        thread: Some(1),
        ..Filter::default()
    };
    assert_eq!(t1.apply(src).count(), 4);

    let retires = Filter {
        hook: Some("retire".into()),
        ..Filter::default()
    };
    assert_eq!(retires.apply(src).count(), 3);

    let node = Filter {
        addr: Some(0xa000),
        ..Filter::default()
    };
    // retire(a) + load(b) + reclaim(a)
    assert_eq!(node.apply(src).count(), 3);

    let fault_line = render_event(&src.events[4]);
    assert!(fault_line.contains("die-pinned"), "{fault_line}");
    let reclaim_line = render_event(&src.events[6]);
    assert!(reclaim_line.contains("0xa000"), "{reclaim_line}");
    assert!(reclaim_line.contains("latency=5"), "{reclaim_line}");
}

#[test]
fn footprint_bound_applies_only_to_robust_schemes() {
    let dump = chaos_dump();
    let src = &dump.sources[0];
    // HE is robust; retired_peak 3 is fine under bound 8…
    assert!(find_violations(src, Some(8)).is_empty());
    // …but violates bound 2.
    let v = find_violations(src, Some(2));
    assert!(v.iter().any(|v| matches!(
        v,
        Violation::FootprintBoundExceeded {
            observed: 3,
            bound: 2,
            ..
        }
    )));
    // With no bound supplied there is no footprint check at all.
    assert!(find_violations(src, None).is_empty());
}
